"""Command-line interface for the FAST reproduction.

The CLI exposes the main entry points of the library without writing any
Python: listing and inspecting workloads, simulating a named design on a
workload, running the characterization analyses of Section 4, running a
(small) FAST search, computing ROI, and regenerating the paper's tables and
figures through the experiment registry.

Examples::

    python -m repro list-workloads
    python -m repro simulate --design fast-large --workload efficientnet-b0
    python -m repro characterize --workload efficientnet-b7
    python -m repro search --workload efficientnet-b0 --trials 50 --optimizer lcs
    python -m repro roi --speedup 3.9 --volume 4000
    python -m repro reproduce table1

Scaling searches
----------------
``repro search`` runs on the :mod:`repro.runtime` subsystem, which adds four
independent scaling knobs:

* ``--workers N`` evaluates trial batches on ``N`` worker processes.  Trial
  ordering is preserved, so the search history depends only on the seed and
  batch size — ``--workers 4`` finds the same designs as ``--workers 1``.
* ``--batch-size B`` (default 8) controls how many proposals are asked from
  the optimizer per step.  Larger batches expose more parallelism; smaller
  batches give the optimizer fresher feedback.
* ``--cache PATH`` memoizes trial metrics in a JSON-lines file keyed by the
  configuration and problem fingerprint.  Repeated configurations — across
  restarts, sweeps, and benchmarks — skip the simulator entirely.
* ``--checkpoint PATH`` saves the optimizer state and history every
  ``--checkpoint-every`` trials; ``--resume PATH`` continues an interrupted
  search from that file to the full trial budget.

``--progress`` streams live per-trial progress lines (trial outcomes, cache
hits, new best-so-far, checkpoint saves).  Example::

    python -m repro search --workload efficientnet-b0 --trials 200 \
        --workers 4 --batch-size 8 --cache trials.jsonl \
        --checkpoint search.ckpt --progress
    # interrupted? continue where it stopped:
    python -m repro search --workload efficientnet-b0 --trials 200 \
        --workers 4 --batch-size 8 --cache trials.jsonl --resume search.ckpt

Beyond one process, ``repro sweep`` shards a single search across ``N``
independent shards (decorrelated seed streams, or disjoint slices of one
parameter axis with ``--mode space --partition-axis <name>``) and merges
their Pareto fronts, trial histories, and runtime stats into one
deduplicated result.  Everything is deterministic for a fixed seed, so the
merged sweep equals the same shard searches run back-to-back in a single
process.  Run it all in one go::

    python -m repro sweep --workload efficientnet-b0 --trials 200 --shards 4 \
        --workers 4 --cache trials.jsonl --output sweep.json

or run shards on separate hosts and merge their files afterwards::

    # on host k (k = 0..3):
    python -m repro sweep --workload efficientnet-b0 --trials 200 --shards 4 \
        --shard-index $K --output shard-$K.json
    # anywhere, afterwards:
    python -m repro sweep --merge shard-0.json shard-1.json shard-2.json \
        shard-3.json --output sweep.json

Shards sharing one ``--cache`` path append to per-shard sidecar files, so
concurrent writers never corrupt the store.  ``repro cache compact`` folds
the sidecars back into the base file, keeps the best record per key, and
evicts the least-recently-written entries beyond ``--max-entries`` (compact
between sweeps, not while one is writing — merged sidecars are deleted)::

    python -m repro cache compact --cache trials.jsonl --max-entries 10000

A cache opened with a ``max_disk_entries`` cap also auto-compacts itself
once the store overshoots the cap by a slack margin, so long exclusive-writer
runs never grow the store unboundedly.  Sharded writers claim their sidecar
with a pid/host owner marker: compaction folds in sidecars orphaned by
crashed (or finished) writers while never touching one a live foreign
process still appends to, so ``repro cache compact`` is safe even when a
previous sweep died mid-write.

Remote evaluation
~~~~~~~~~~~~~~~~~
Beyond one machine, trial evaluation itself can move to a fleet of
evaluation services.  ``repro serve`` starts a stdlib-only HTTP service that
accepts batches of trial parameters plus a problem fingerprint and returns
the evaluated metrics (``--workers N`` parallelizes each batch server-side;
``--op-cache`` keeps a warm persistent op-cost cache across requests)::

    # on each evaluator host:
    python -m repro serve --port 8642 --workers 4

    # on the search host:
    python -m repro search --workload efficientnet-b0 --trials 200 \
        --executor remote --endpoints http://hostA:8642 \
        --endpoints http://hostB:8642 --progress

The remote executor fans each batch out to the endpoints concurrently with
a per-request ``--remote-timeout``, bounded retry with exponential backoff,
hedged re-dispatch of stragglers (after ``--hedge-after`` seconds without
progress the still-pending chunks are duplicated onto other endpoints;
first result wins), and graceful blacklisting of endpoints that keep
failing.  **Equivalence guarantee:** results are reassembled in proposal
order and evaluation is deterministic, so a remote search reproduces the
serial executor's trial history bit-for-bit for the same seed and batch
size — and injected faults (timeouts, errors, stragglers) can delay a
batch but never corrupt or reorder the merged history (a batch that cannot
be evaluated raises instead of returning partial results).  Per-endpoint
request/retry/hedge/latency counters land in the ``RuntimeStats`` of the
search summary and ``--output`` JSON.

The service also hosts the cross-shard scoreboard used by ``repro sweep
--exchange``: pass a file prefix (shared filesystem) or a service URL and
every shard publishes its best-so-far between batches while guided
optimizers (annealing incumbents, Bayesian EI) fold the best score found by
*other* shards into their proposals::

    python -m repro sweep --workload efficientnet-b0 --trials 200 --shards 4 \
        --exchange /tmp/scores.json        # or --exchange http://hostA:8642

``--exchange`` is off by default, excludes a shard's own records, and a
1-shard sweep is bit-for-bit identical with or without it — cross-shard
coupling is strictly opt-in.

Performance
-----------
Trial evaluation itself — the Figure-1 pipeline of mapper, VPU cost model,
and FAST fusion — runs on layered fast paths, and one flag names the whole
stack: ``--engine MAPPER[:key=value,...]`` on ``repro search``, ``sweep``,
``profile``, and ``serve``::

    --engine graph-batched                       # the default engine
    --engine scalar                              # pure-Python reference loop
    --engine trial-batched                       # batch-of-trials stacking
    --engine trial-batched:backend=torch         # ... on the torch backend
    --engine graph-batched:op_cache=off,region_cache=off

The mapper ladder (each level rides on the one below, and every NumPy
level is bit-for-bit equivalent to the scalar reference — same tilings,
cycles, and DRAM bytes):

* **scalar** — the op-by-op pure-Python loop; verification and profiling
  baseline.
* **vectorized** — each op's ``dataflows x (m, n, k)-tilings`` candidate
  sweep runs as one NumPy pass.
* **graph-batched** (default) — the whole trial is the unit of
  vectorization: every matrix op a trial needs mapped is gathered across
  all fusion regions and costed in ONE stacked pass, then scattered back.
* **trial-batched** — a whole proposal *batch* is the unit: the pending
  ops of all trials in the batch are deduplicated and costed in one pass
  before the trials finish individually.

Engine options: ``backend=numpy|cupy|torch`` picks the array library the
batched kernels run on (NumPy is the always-on, bit-exact default; cupy /
torch are optional GPU paths that are tolerance-checked, not bit-checked —
``repro profile --check-backends`` prints the per-backend verdict and
skips libraries that are not installed).  ``op_cache=on|off`` and
``region_cache=on|off`` toggle the two cross-trial memoization layers:
the region-level result cache (whole fusion-region evaluations keyed by
graph fingerprint, region index, and mapping-relevant datapath sub-config)
and the per-op cost cache.  The legacy spellings ``--scalar-mapper``,
``--per-op-mapper``, ``--no-op-cache``, and ``--no-region-cache`` still
work as deprecated aliases that fold onto an equivalent ``--engine`` spec.

**The shared cost-cache tier.**  Both memoization layers are the private
front of a three-tier cache; every tier serves bit-identical entries, so
enabling any of them can change only wall-clock time, never a search
history:

* **private** — the in-process memory LRU plus an optional persistent
  JSON-lines store: ``--op-cache PATH`` for op costs, ``--engine
  ...:region_store=PATH`` for whole evaluated regions.  Stores are
  digest-keyed, append-only (single-write appends make concurrent writers
  safe; duplicates are folded by compaction), and warm-loaded at startup —
  by searches, sweep shards, and ``repro serve`` alike.  Disk-served
  lookups are reported separately as ``op_cache_disk_hits`` /
  ``region_cache_disk_hits``.
* **shared-memory** — a parallel run (``--workers N``) publishes the
  parent's warm entries into one ``multiprocessing.shared_memory`` segment
  that every pool worker attaches zero-copy (no per-worker disk load, no
  duplicated cache RSS); respawned workers re-attach the republished
  segment and serve their first batch from cache with no re-warm compute.
  ``shared_cache_attached`` / ``*_cache_shared_hits`` in ``RuntimeStats``
  show the tier working; any publish or attach failure silently falls back
  to the private path.
* **cluster** — a ``repro serve`` endpoint doubles as a cache service via
  ``GET/PUT /cache/region`` (fingerprint-checked like ``/evaluate``), and
  ``--engine ...:cache_service=URL`` attaches any search to it: region
  lookups are prefetched in digest batches before the simulator walks a
  graph, freshly computed regions are pushed back, and every round trip
  lands in ``remote_cache_*`` counters and ``remote_cache`` trace spans.

Worked example — one host computes, every later run starts warm::

    # Host A: serve evaluations AND the shared region store
    python -m repro serve --port 8642 \
        --engine graph-batched:region_store=runs/regions.jsonl

    # Host B: search against the cache service; repeat runs (any host)
    # hit the service for every region already evaluated anywhere
    python -m repro search --workload resnet50 --trials 200 \
        --engine graph-batched:cache_service=http://hostA:8642

    # Same machine, later: warm-load the store directly, no network
    python -m repro search --workload resnet50 --trials 200 \
        --engine graph-batched:region_store=runs/regions.jsonl

Hit/miss counters for every tier appear in the search summary, progress
lines, and ``RuntimeStats``.

**Warm parallel workers** (``--workers N``) compose with every engine:
pool workers start warm (graphs, compiled regions, shared op/region
caches, persistent ``--op-cache`` store) and inherit the parent's engine
spec through the pool initializer — the resolved spec is echoed back as
``engine`` in ``RuntimeStats``, so a pool silently running a different
engine than you asked for is visible in ``repro profile``.

``repro profile`` measures the whole ladder on a fixed-seed search:
trials/sec, a per-stage time breakdown (mapper / vector / fusion / other),
and cache hit rates for the scalar, per-op vectorized, graph-batched,
region-cached, op-cached, trial-batched (plus cupy / torch rows, skipped
when not installed), and parallel modes, verifying along the way that
every NumPy mode reproduces the same trial history::

    python -m repro profile --workload efficientnet-b0 --trials 48 \
        --warm-op-cache --output profile.json

When to prefer which knob: the defaults (``--engine graph-batched``,
both caches on, serial) are the right starting point; try ``--engine
trial-batched`` for large ``--batch-size`` searches; add ``--workers``
when a profile shows the evaluator saturating one core — warm workers
compose with every cache layer — and add ``--op-cache PATH`` whenever you
run more than one search over the same workloads (sweeps, shards,
services, restarts).

Observability
-------------
Every run can explain where its time went.  ``--trace PATH`` on ``repro
search`` and ``repro sweep`` records spans across the whole pipeline —
search batches, trials, simulator stages (setup / mapping / regions /
fusion), process-pool workers (worker spans merge back into the parent
trace exactly once), and remote requests all the way into the evaluation
service (the trace context travels in an HTTP header, so server-side spans
appear in the client's trace) — and writes a Chrome-trace JSON (load it in
chrome://tracing or Perfetto) or, with a ``.jsonl`` extension, one span per
line.  ``--trace-sample RATE`` keeps that fraction of trial span trees.
Tracing is strictly observational: trial histories are bit-for-bit
identical with it on or off.  ``repro trace PATH`` digests a recorded file
into a per-stage timeline, the fraction of trial wall time the spans
explain, and the slowest individual spans::

    python -m repro search --workload efficientnet-b0 --trials 50 \
        --trace search-trace.json
    python -m repro trace search-trace.json --top 5

``repro serve`` exposes Prometheus text metrics at ``GET /metrics``
(per-route request counters and latency histograms, uptime, worker / trial
/ cache gauges) next to ``GET /health`` (which reports uptime and
per-route request counts); ``repro serve --verbose`` turns on per-request
access logging.

Fault tolerance
---------------
Partial failure never changes what a search computes.  The runtime's
recovery guarantees, from the inside out:

* **Supervised worker pools.**  A pool worker dying mid-batch (OOM kill,
  segfault) breaks the pool; the executor detects it, spawns a fresh pool —
  re-warming worker caches through the same initializer — and re-dispatches
  the in-flight batch, up to a restart budget.  Evaluation is
  deterministic, so the history is bit-for-bit what a fault-free run
  produces; ``worker_restarts`` in the summary reports what happened.
* **Remote escalation ladder with local fallback.**  Remote batches get
  per-request timeouts, bounded retry with backoff, hedged straggler
  re-dispatch, endpoint blacklisting, and whole-fleet forgiveness; if a
  batch *still* cannot be evaluated remotely, it is evaluated serially
  in-process instead of failing the search (``remote_fallbacks`` counts
  these, and a ``remote_fallback`` span records why).
* **Crash-safe stores.**  Checkpoint saves and cache/op-store compactions
  write a temp file, ``fsync`` it, then rename, so they survive power
  loss, not just process death; a torn JSONL tail from a killed append is
  quarantined (skipped + counted as ``corrupt_records``, dropped by the
  next compaction) instead of aborting the load, and stale temp files from
  crashed writers are swept on the next load or poll.  Killing a search
  and rerunning with ``--resume`` reproduces the uninterrupted history
  bit-for-bit.

All of it is testable on purpose: ``--inject-faults SPEC --fault-seed N``
(on ``repro search`` and ``repro sweep``) installs a seeded, deterministic
fault plan, so chaos runs are reproducible in CI.  A spec is a
comma-separated list of fault points, each with optional colon-separated
params — ``p=PROB`` (fire probability per opportunity, default 1),
``n=MAX`` (total fire budget), ``at=I|J|K`` (pin to exact opportunity
indices), ``delay=SECONDS`` (for the slow/delay points)::

    python -m repro search --workload efficientnet-b0 --trials 16 \
        --workers 2 --inject-faults "worker-crash:n=1,torn-write:n=1" \
        --fault-seed 7 --cache trials.jsonl

Fault points: ``worker-crash`` (SIGKILL a pool worker mid-batch),
``remote-drop`` / ``remote-timeout`` / ``remote-slow`` (client-side request
faults), ``service-error`` / ``service-drop`` / ``service-delay``
(service-side faults; also available on ``repro serve --inject-faults`` to
run a deliberately flaky endpoint), and ``torn-write`` (truncated cache
append / partial checkpoint temp file).  The injected-fault history must
equal the clean history bit-for-bit — CI's ``chaos`` smoke asserts exactly
that, plus a kill-and-``--resume`` round-trip.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis.footprint import storage_requirements
from repro.analysis.intensity import intensity_report
from repro.core.designs import NAMED_DESIGNS
from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.economics.roi import RoiModel
from repro.hardware.area_power import AreaPowerModel
from repro.reporting.experiments import list_experiments, run_experiment
from repro.reporting.serialization import save_config, save_search_result
from repro.reporting.tables import format_kv, format_table
from repro.simulator.engine import Simulator
from repro.workloads.registry import available_workloads, build_workload

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------------
# Subcommand implementations (each returns a process exit code)
# ---------------------------------------------------------------------------
def _configure_trace(path: Optional[str], sample_rate: float, seed: int) -> bool:
    """Enable span tracing for this process (and any pools it starts)."""
    if not path:
        return False
    from repro.runtime.telemetry import configure_tracer

    configure_tracer(enabled=True, sample_rate=sample_rate, seed=seed)
    return True


def _configure_faults(spec: Optional[str], seed: int) -> bool:
    """Install the ``--inject-faults`` plan for this process; True on error.

    Installed before the executor exists, like tracing, so every failure
    site — pool dispatch, remote attempts, cache and checkpoint writers —
    consults the same seeded plan.
    """
    from repro.runtime.faults import configure_faults

    try:
        configure_faults(spec, seed=seed)
    except ValueError as error:
        print(f"error: {error}")
        return True
    return False


def _write_trace(path: str) -> None:
    """Write the recorded spans as Chrome trace (.json) or JSONL (.jsonl)."""
    from repro.runtime.telemetry import get_tracer, write_chrome_trace, write_jsonl_trace

    tracer = get_tracer()
    records = tracer.snapshot()
    writer = write_jsonl_trace if path.endswith(".jsonl") else write_chrome_trace
    count = writer(records, path)
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(f"trace: {count} spans written to {path}{dropped}")


#: Legacy engine flags already warned about this process (warn once each).
_LEGACY_FLAG_WARNED: set = set()


def _warn_legacy_flag(flag: str, replacement: str) -> None:
    if flag in _LEGACY_FLAG_WARNED:
        return
    _LEGACY_FLAG_WARNED.add(flag)
    print(
        f"warning: {flag} is deprecated; use --engine {replacement}",
        file=sys.stderr,
    )


def _resolve_engine(args):
    """Fold ``--engine`` and the legacy engine flags into one EngineSpec.

    The legacy spellings (``--scalar-mapper`` / ``--per-op-mapper`` /
    ``--no-op-cache`` / ``--no-region-cache``) are deprecation aliases: each
    one overrides the corresponding spec field and warns once per process.
    Raises ``ValueError`` for a malformed spec.
    """
    from repro.simulator.enginespec import EngineSpec

    engine_text = getattr(args, "engine", None)
    spec = EngineSpec.parse(engine_text) if engine_text else EngineSpec()
    mapper = spec.mapper
    op_cache = spec.op_cache
    region_cache = spec.region_cache
    if getattr(args, "scalar_mapper", False):
        _warn_legacy_flag("--scalar-mapper", "scalar")
        mapper = "scalar"
    if getattr(args, "per_op_mapper", False):
        _warn_legacy_flag("--per-op-mapper", "vectorized")
        if mapper != "scalar":
            mapper = "vectorized"
    if getattr(args, "no_op_cache", False):
        _warn_legacy_flag("--no-op-cache", f"{mapper}:op_cache=off")
        op_cache = False
    if getattr(args, "no_region_cache", False):
        _warn_legacy_flag("--no-region-cache", f"{mapper}:region_cache=off")
        region_cache = False
    return EngineSpec(
        mapper=mapper,
        backend=spec.backend if mapper != "scalar" else "numpy",
        op_cache=op_cache,
        region_cache=region_cache,
        region_store=spec.region_store,
        cache_service=spec.cache_service,
    )


def _cmd_list_workloads(_args) -> int:
    rows = []
    for name in available_workloads():
        graph = build_workload(name, batch_size=1)
        rows.append(
            [
                name,
                len(graph),
                f"{graph.total_flops() / 1e9:.2f} GFLOPs",
                f"{graph.weight_bytes() / (1 << 20):.1f} MiB",
            ]
        )
    print(format_table(["Workload", "Ops", "FLOPs (batch 1)", "Weights"], rows))
    return 0


def _cmd_list_designs(_args) -> int:
    model = AreaPowerModel()
    rows = []
    for name, config in NAMED_DESIGNS.items():
        breakdown = model.evaluate(config)
        rows.append(
            [
                name,
                f"{config.peak_matrix_flops / 1e12:.0f} TFLOPS",
                f"{config.dram_bandwidth_bytes_per_s / 1e9:.0f} GB/s",
                f"{config.systolic_array_x}x{config.systolic_array_y}",
                config.l3_global_buffer_mib,
                f"{breakdown.total_area_mm2:.0f} mm2",
                f"{breakdown.total_tdp_w:.0f} W",
            ]
        )
    print(format_table(["Design", "Peak", "Bandwidth", "Systolic", "GM MiB", "Area", "TDP"], rows))
    return 0


def _cmd_simulate(args) -> int:
    config = _resolve_design(args.design)
    if config is None:
        return 1
    simulator = Simulator(config)
    result = simulator.simulate_workload(args.workload, batch_size=args.batch_size)
    if result.schedule_failed:
        print(f"schedule failure: {args.workload} cannot be mapped onto {args.design}")
        return 1
    tdp = AreaPowerModel().tdp_w(config)
    print(format_kv(
        {
            "workload": args.workload,
            "design": args.design,
            "batch size": result.batch_size,
            "latency (ms)": result.latency_ms,
            "throughput (QPS)": result.qps,
            "compute utilization": result.compute_utilization,
            "operational intensity (post-fusion)": result.operational_intensity(),
            "memory stall fraction": result.memory_stall_fraction(),
            "TDP (W)": tdp,
            "Perf/TDP (QPS/W)": result.qps / tdp if tdp else 0.0,
        },
        title=f"Simulation of {args.workload} on {args.design}",
    ))
    return 0


def _cmd_characterize(args) -> int:
    graph = build_workload(args.workload, batch_size=args.batch_size)
    storage = storage_requirements(graph)
    intensity = intensity_report(graph)
    print(format_kv(
        {
            "ops": len(graph),
            "total FLOPs": graph.total_flops(),
            "weights (MiB)": storage.weight_mib,
            "max working set (MiB)": storage.max_working_set_mib,
            "matrix-op FLOP fraction": graph.matrix_op_flop_fraction(),
            "op intensity (no fusion)": intensity["none"],
            "op intensity (XLA fusion)": intensity["xla"],
            "op intensity (block fusion)": intensity["block"],
            "op intensity (ideal)": intensity["ideal"],
        },
        title=f"{args.workload} at batch {args.batch_size}",
    ))
    return 0


def _cmd_search(args) -> int:
    from repro.core.trial import TrialEvaluator
    from repro.runtime import ProgressBus, ProgressPrinter, SearchCheckpoint, TrialCache, make_executor

    problem = SearchProblem(
        workloads=list(args.workload),
        objective=ObjectiveKind(args.objective),
    )
    try:
        engine = _resolve_engine(args)
    except ValueError as error:
        print(f"error: {error}")
        return 1
    evaluator = TrialEvaluator(
        problem,
        simulation_options=engine.to_simulation_options(
            fusion_solver="greedy",
            op_cache_path=args.op_cache,
        ),
    )
    cache = TrialCache(args.cache) if args.cache else None
    checkpoint_path = args.resume or args.checkpoint
    checkpoint = (
        SearchCheckpoint(checkpoint_path, interval=args.checkpoint_every)
        if checkpoint_path
        else None
    )
    progress = None
    if args.progress:
        progress = ProgressBus()
        progress.subscribe(ProgressPrinter())
    if args.executor == "remote" and not args.endpoints:
        print("error: --executor remote requires at least one --endpoints URL")
        return 1
    # Tracing must be configured before the executor exists: the process
    # pool ships the telemetry config to workers through its initializer.
    tracing = _configure_trace(args.trace, args.trace_sample, args.seed)
    if _configure_faults(args.inject_faults, args.fault_seed):
        return 1
    with make_executor(
        args.workers,
        kind=args.executor,
        endpoints=args.endpoints,
        timeout=args.remote_timeout,
        hedge_after=args.hedge_after,
    ) as executor:
        search = FASTSearch(
            problem,
            optimizer=args.optimizer,
            seed=args.seed,
            evaluator=evaluator,
            executor=executor,
            cache=cache,
            checkpoint=checkpoint,
            progress=progress,
        )
        try:
            result = search.run(
                num_trials=args.trials,
                batch_size=args.batch_size,
                resume=bool(args.resume),
            )
        except ValueError as error:  # e.g. checkpoint/problem mismatch
            print(f"error: {error}")
            return 1
    if tracing:
        _write_trace(args.trace)
    if result.best_metrics is None:
        print("search found no feasible design within the trial budget")
        return 1
    print(format_kv(result.best_config.describe(), title="Best design found"))
    print()
    summary = {
        "trials": result.num_trials,
        "feasible trials": result.num_feasible_trials,
        "best score": result.best_score,
        **{f"QPS ({w})": q for w, q in result.best_metrics.per_workload_qps.items()},
        "TDP (W)": result.best_metrics.tdp_w,
        "area (mm2)": result.best_metrics.area_mm2,
    }
    if result.runtime is not None:
        summary["trials/sec"] = result.runtime.trials_per_second
        if cache is not None:
            summary["cache hits"] = result.runtime.cache_hits
        if result.runtime.op_cache_hits or result.runtime.op_cache_misses:
            summary["op-cache hits"] = result.runtime.op_cache_hits
            summary["op-cache hit rate"] = result.runtime.op_cache_hit_rate
        if result.runtime.op_cache_disk_hits:
            summary["op-cache disk hits"] = result.runtime.op_cache_disk_hits
        if result.runtime.region_cache_hits or result.runtime.region_cache_misses:
            summary["region-cache hits"] = result.runtime.region_cache_hits
            summary["region-cache hit rate"] = result.runtime.region_cache_hit_rate
        if result.runtime.region_cache_disk_hits:
            summary["region-cache disk hits"] = result.runtime.region_cache_disk_hits
        if result.runtime.op_cache_shared_hits or result.runtime.region_cache_shared_hits:
            summary["shared-cache hits"] = (
                result.runtime.op_cache_shared_hits
                + result.runtime.region_cache_shared_hits
            )
        if result.runtime.shared_cache_attached:
            summary["shared-cache workers"] = result.runtime.shared_cache_attached
        if result.runtime.remote_cache_requests:
            summary["remote-cache hits"] = result.runtime.remote_cache_hits
            summary["remote-cache puts"] = result.runtime.remote_cache_puts
            summary["remote-cache requests"] = result.runtime.remote_cache_requests
            if result.runtime.remote_cache_failures:
                summary["remote-cache failures"] = result.runtime.remote_cache_failures
        if result.runtime.eval_seconds:
            summary["mapper seconds"] = result.runtime.mapper_seconds
            summary["fusion seconds"] = result.runtime.fusion_seconds
        if result.runtime.resumed_trials:
            summary["resumed trials"] = result.runtime.resumed_trials
        if result.runtime.worker_restarts:
            summary["worker restarts"] = result.runtime.worker_restarts
        if result.runtime.remote_fallbacks:
            summary["remote fallbacks"] = result.runtime.remote_fallbacks
        if result.runtime.corrupt_records:
            summary["quarantined records"] = result.runtime.corrupt_records
        if result.runtime.faults_injected:
            summary["faults injected"] = result.runtime.faults_injected
        if result.runtime.remote_requests:
            summary["remote requests"] = result.runtime.remote_requests
            summary["remote retries"] = result.runtime.remote_retries
            summary["remote hedges"] = result.runtime.remote_hedges
            for url, counters in sorted(result.runtime.endpoint_stats.items()):
                successes = counters.get("successes", 0)
                mean_ms = (
                    1e3 * counters.get("latency_seconds", 0.0) / successes
                    if successes
                    else 0.0
                )
                summary[f"endpoint {url}"] = (
                    f"{int(counters.get('requests', 0))} req, "
                    f"{int(counters.get('retries', 0))} retries, "
                    f"{mean_ms:.0f} ms mean"
                )
    print(format_kv(summary, title="Search summary"))
    if args.output:
        save_search_result(result, args.output, include_history=args.history)
        print(f"\nsearch result written to {args.output}")
    if args.save_config:
        save_config(result.best_config, args.save_config)
        print(f"best design written to {args.save_config}")
    return 0


def _cmd_sweep(args) -> int:
    import json

    from repro.runtime import make_executor
    from repro.runtime.sharding import (
        load_shard_result,
        merge_shard_results,
        plan_shards,
        run_shard,
        save_shard_result,
        sweep_result_to_dict,
    )

    if args.merge:
        try:
            shard_results = [load_shard_result(path) for path in args.merge]
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"error: cannot load shard file: {error}")
            return 1
    else:
        if not args.workload:
            print("error: --workload is required unless --merge is given")
            return 1
        problem = SearchProblem(
            workloads=list(args.workload),
            objective=ObjectiveKind(args.objective),
        )
        try:
            specs = plan_shards(
                args.trials,
                args.shards,
                seed=args.seed,
                mode=args.mode,
                partition_axis=args.partition_axis,
            )
            if args.mode == "space":
                from repro.hardware.search_space import DatapathSearchSpace
                from repro.runtime.sharding import shard_space

                space = DatapathSearchSpace()
                if args.partition_axis not in space.parameter_names:
                    known = ", ".join(space.parameter_names)
                    raise ValueError(
                        f"unknown partition axis {args.partition_axis!r}; "
                        f"available: {known}"
                    )
                for spec in specs:
                    shard_space(space, spec)  # validates the shard count fits
        except (KeyError, ValueError) as error:
            print(f"error: {error}")
            return 1
        try:
            engine = _resolve_engine(args)
        except ValueError as error:
            print(f"error: {error}")
            return 1
        tracing = _configure_trace(args.trace, args.trace_sample, args.seed)
        if _configure_faults(args.inject_faults, args.fault_seed):
            return 1
        with make_executor(args.workers) as executor:
            if args.shard_index is not None:
                if not 0 <= args.shard_index < args.shards:
                    print(f"error: --shard-index must be in [0, {args.shards})")
                    return 1
                spec = specs[args.shard_index]
                result = run_shard(
                    problem, spec, optimizer=args.optimizer, batch_size=args.batch_size,
                    executor=executor, cache_path=args.cache, exchange=args.exchange,
                    op_cache_path=args.op_cache,
                    engine=engine,
                )
                out = args.output or f"shard-{spec.shard_id}.json"
                save_shard_result(result, out)
                print(format_kv(
                    {
                        "shard": f"{spec.shard_id} of {spec.num_shards}",
                        "seed": spec.seed,
                        "trials": result.num_trials,
                        "written to": out,
                    },
                    title="Shard complete (merge with `repro sweep --merge`)",
                ))
                if tracing:
                    _write_trace(args.trace)
                return 0
            shard_results = [
                run_shard(
                    problem, spec, optimizer=args.optimizer, batch_size=args.batch_size,
                    executor=executor, cache_path=args.cache, exchange=args.exchange,
                    op_cache_path=args.op_cache,
                    engine=engine,
                )
                for spec in specs
            ]
        if tracing:
            _write_trace(args.trace)
        if args.shard_dir:
            for shard in shard_results:
                save_shard_result(
                    shard, f"{args.shard_dir}/shard-{shard.spec.shard_id}.json"
                )

    sweep = merge_shard_results(shard_results)
    rows = []
    for spec in sweep.shards:
        best = sweep.shard_best_scores.get(spec.shard_id, float("nan"))
        rows.append([
            spec.shard_id,
            spec.seed,
            spec.num_trials,
            "-" if best != best else f"{best:.3f}",
        ])
    print(format_table(["Shard", "Seed", "Trials", "Best score"], rows))
    print()
    summary = {
        "shards": len(sweep.shards),
        "unique trials": sweep.num_trials,
        "duplicates removed": sweep.duplicates_removed,
        "Pareto-front size": len(sweep.pareto_front),
        "best score": sweep.best_score,
    }
    if sweep.best_trial is not None:
        summary["best shard"] = sweep.best_trial.shard_id
    if sweep.runtime is not None and sweep.runtime.cache_hits:
        summary["cache hits"] = sweep.runtime.cache_hits
    if sweep.runtime is not None and sweep.runtime.op_cache_hits:
        summary["op-cache hits"] = sweep.runtime.op_cache_hits
    if sweep.runtime is not None and sweep.runtime.region_cache_hits:
        summary["region-cache hits"] = sweep.runtime.region_cache_hits
    if sweep.runtime is not None and sweep.runtime.exchange_published:
        summary["exchange publishes"] = sweep.runtime.exchange_published
        summary["exchange adoptions"] = sweep.runtime.exchange_adopted
    print(format_kv(summary, title="Merged sweep"))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(sweep_result_to_dict(sweep), handle, indent=2)
        print(f"\nmerged sweep written to {args.output}")
    if sweep.best_trial is None:
        print("sweep found no feasible design within the trial budget")
        return 1
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro.runtime.profiling import PROFILE_MODES, ProfileMode, profile_search

    if args.check_backends:
        from repro.mapping.backend import BACKEND_NAMES, check_backend

        rows = []
        any_failed = False
        for name in BACKEND_NAMES:
            verdict = check_backend(name)
            status = verdict["status"]
            any_failed = any_failed or status == "failed"
            detail = (
                f"max rel err {verdict['max_rel_err']:.2e} "
                f"over {verdict['candidates']} candidates"
                if status == "ok"
                else str(verdict.get("reason", ""))
            )
            rows.append([name, status, detail])
        print(format_table(["Backend", "Status", "Detail"], rows))
        if any_failed:
            print("\nbackend equivalence FAILED: see the rows above")
            return 1
        print("\nbackend equivalence: every installed backend matches NumPy "
              "within tolerance")
        return 0

    if not args.workload:
        print("error: --workload is required unless --check-backends is given")
        return 1

    modes = PROFILE_MODES
    if args.engine:
        # Profile just the requested engine against the scalar reference.
        try:
            spec = _resolve_engine(args)
        except ValueError as error:
            print(f"error: {error}")
            return 1
        requested = ProfileMode(
            str(spec),
            vectorized_mapper=spec.mapper != "scalar",
            op_cache=spec.op_cache,
            graph_batched=spec.mapper in ("graph-batched", "trial-batched"),
            region_cache=spec.region_cache,
            trial_batched=spec.mapper == "trial-batched",
            backend=spec.backend,
        )
        modes = (PROFILE_MODES[0],)
        if requested != PROFILE_MODES[0]:
            modes = modes + (requested,)

    report = profile_search(
        list(args.workload),
        trials=args.trials,
        optimizer=args.optimizer,
        seed=args.seed,
        batch_size=args.batch_size,
        objective=ObjectiveKind(args.objective),
        modes=modes,
        warm_op_cache=args.warm_op_cache,
    )
    rows = []
    for record in report.records:
        if record.skipped:
            rows.append([
                record.mode, "skipped", "-", "-", "-", "-", "-", "-", "-", "-",
            ])
            continue
        stages = record.stage_seconds
        disk_hits = record.op_cache_disk_hits + record.region_cache_disk_hits
        rows.append([
            record.mode,
            f"{record.trials_per_second:.1f}",
            f"{report.speedup(record.mode):.2f}x",
            f"{stages.get('mapper', 0.0) * 1e3:.0f}",
            f"{stages.get('vector', 0.0) * 1e3:.0f}",
            f"{stages.get('fusion', 0.0) * 1e3:.0f}",
            f"{stages.get('other', 0.0) * 1e3:.0f}",
            f"{record.op_cache_hit_rate:.2f}" if record.op_cache_hits else "-",
            f"{record.region_cache_hit_rate:.2f}" if record.region_cache_hits else "-",
            str(disk_hits) if disk_hits else "-",
        ])
    print(format_table(
        ["Mode", "Trials/s", "vs scalar", "Mapper ms", "Vector ms",
         "Fusion ms", "Other ms", "Op-cache hit rate", "Region-cache hit rate",
         "Disk hits"],
        rows,
    ))
    print(
        f"\n{report.trials} trials, batch={report.batch_size}, "
        f"optimizer={report.optimizer}, seed={report.seed}, "
        f"workloads={','.join(report.workloads)}"
    )
    if report.histories_match:
        print("equivalence: all NumPy modes reproduced the reference trial "
              "history bit-for-bit")
    else:
        print("equivalence FAILED: some mode diverged from the reference trial history")
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"profile written to {args.output}")
    return 0 if report.histories_match else 1


def _cmd_serve(args) -> int:
    from repro.runtime.service import serve

    if args.verbose:
        import logging

        logging.basicConfig(
            level=logging.DEBUG,
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )
    try:
        engine = _resolve_engine(args) if getattr(args, "engine", None) else None
        service = serve(
            host=args.host,
            port=args.port,
            workers=args.workers,
            op_cache_path=args.op_cache,
            fault_spec=args.inject_faults,
            fault_seed=args.fault_seed,
            engine=engine,
        )
    except ValueError as error:  # e.g. a typo'd spec (--engine/--inject-faults)
        print(f"error: {error}")
        return 1
    host, port = service.address
    print(
        f"serving trial evaluation on http://{host}:{port} "
        f"(workers={args.workers}) — Ctrl-C to stop",
        flush=True,
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.close()
    return 0


def _cmd_trace(args) -> int:
    from repro.runtime.profiling import summarize_trace
    from repro.runtime.telemetry import load_trace

    try:
        records = load_trace(args.path)
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"error: cannot load trace {args.path!r}: {error}")
        return 1
    if not records:
        print(f"error: no spans in {args.path}")
        return 1
    summary = summarize_trace(records, top_k=args.top)
    rows = [
        [
            stage.name,
            stage.category,
            stage.count,
            f"{stage.total_seconds * 1e3:.1f}",
            f"{stage.mean_seconds * 1e3:.2f}",
        ]
        for stage in summary.stages
    ]
    print(format_table(["Stage", "Category", "Spans", "Total ms", "Mean ms"], rows))
    print()
    overview = {
        "spans": summary.num_spans,
        "trials": summary.num_trials,
        "trial wall time (s)": f"{summary.trial_seconds:.3f}",
    }
    if summary.num_trials:
        overview["trial time covered by stage spans"] = f"{100 * summary.coverage:.1f}%"
    print(format_kv(overview, title=f"Trace {args.path}"))
    if summary.slowest:
        print()
        rows = [
            [
                span.name,
                f"{span.duration * 1e3:.2f}",
                span.pid,
                ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items())) or "-",
            ]
            for span in summary.slowest
        ]
        print(format_table(["Slowest spans", "ms", "PID", "Attributes"], rows))
    return 0


def _cmd_cache_compact(args) -> int:
    from pathlib import Path

    from repro.runtime import TrialCache

    cache = TrialCache(args.cache)
    if not cache.disk_files():
        print(f"error: no cache store at {args.cache}")
        return 1
    stats = cache.compact(args.max_entries)
    summary = {
        "files merged": stats.files_merged,
        "entries kept": stats.kept,
        "duplicates dropped": stats.duplicates_dropped,
        "entries evicted": stats.evicted,
        "store": str(Path(args.cache)),
    }
    if stats.live_writers_skipped:
        summary["live writers skipped"] = stats.live_writers_skipped
    print(format_kv(summary, title="Cache compaction"))
    return 0


def _cmd_roi(args) -> int:
    model = RoiModel()
    value = model.roi(args.volume, args.speedup)
    print(format_kv(
        {
            "Perf/TCO speedup": f"{args.speedup}x",
            "deployment volume": args.volume,
            "ROI": value,
            "break-even volume": model.breakeven_volume(args.speedup),
            "volume for 2x ROI": model.deployment_volume_for_roi(2.0, args.speedup),
            "volume for 4x ROI": model.deployment_volume_for_roi(4.0, args.speedup),
        },
        title="Return-on-investment estimate",
    ))
    return 0


def _cmd_reproduce(args) -> int:
    if args.list or not args.experiment:
        rows = [
            [spec.name, "yes" if spec.expensive else "no", spec.title]
            for spec in list_experiments()
        ]
        print(format_table(["Experiment", "Slow", "Title"], rows))
        return 0
    options = _parse_options(args.option or [])
    report = run_experiment(args.experiment, **options)
    print(report)
    return 0


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
def _resolve_design(name: str):
    key = name.lower()
    if key not in NAMED_DESIGNS:
        known = ", ".join(sorted(NAMED_DESIGNS))
        print(f"unknown design {name!r}; available: {known}")
        return None
    return NAMED_DESIGNS[key]


def _parse_options(pairs: Sequence[str]) -> Dict[str, object]:
    """Parse ``key=value`` experiment options, casting numerics."""
    options: Dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"invalid --option {pair!r}; expected key=value")
        key, value = pair.split("=", 1)
        try:
            options[key] = int(value)
        except ValueError:
            try:
                options[key] = float(value)
            except ValueError:
                options[key] = value
    return options


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FAST (ASPLOS 2022) reproduction: full-stack accelerator search.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="List registered workloads").set_defaults(
        func=_cmd_list_workloads
    )
    sub.add_parser("list-designs", help="List named accelerator designs").set_defaults(
        func=_cmd_list_designs
    )

    simulate = sub.add_parser("simulate", help="Simulate a workload on a named design")
    simulate.add_argument("--design", default="tpu-v3", help="tpu-v3 / fast-large / fast-small")
    simulate.add_argument("--workload", required=True)
    simulate.add_argument("--batch-size", type=int, default=None)
    simulate.set_defaults(func=_cmd_simulate)

    characterize = sub.add_parser(
        "characterize", help="Footprint and operational-intensity analysis of a workload"
    )
    characterize.add_argument("--workload", required=True)
    characterize.add_argument("--batch-size", type=int, default=1)
    characterize.set_defaults(func=_cmd_characterize)

    search = sub.add_parser("search", help="Run a (small) FAST search")
    search.add_argument("--workload", action="append", required=True,
                        help="Repeat for multi-workload search")
    search.add_argument("--trials", type=int, default=50)
    search.add_argument("--optimizer", default="lcs",
                        help="random / bayesian / lcs / annealing / coordinate / safe:<name>")
    search.add_argument("--objective", default="perf_per_tdp",
                        choices=[kind.value for kind in ObjectiveKind])
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--workers", type=int, default=1,
                        help="Worker processes for trial evaluation (1 = serial)")
    search.add_argument("--executor", default=None,
                        choices=["serial", "process", "remote"],
                        help="Trial executor kind (default: serial, or process "
                             "when --workers > 1)")
    search.add_argument("--endpoints", action="append", default=None, metavar="URL",
                        help="Evaluation-service URL for --executor remote "
                             "(repeat for a fleet)")
    search.add_argument("--remote-timeout", type=float, default=60.0,
                        help="Per-request timeout (seconds) of the remote executor")
    search.add_argument("--hedge-after", type=float, default=10.0,
                        help="Seconds without progress before straggling remote "
                             "chunks are hedged onto other endpoints")
    search.add_argument("--batch-size", type=int, default=8,
                        help="Proposals per ask/tell batch; fixes the search "
                             "trajectory independently of --workers")
    search.add_argument("--cache", default=None, metavar="PATH",
                        help="Persistent trial cache (JSON-lines file)")
    search.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="Write periodic checkpoints to this file")
    search.add_argument("--checkpoint-every", type=int, default=25,
                        help="Trials between checkpoint saves")
    search.add_argument("--resume", default=None, metavar="PATH",
                        help="Resume from this checkpoint file (implies --checkpoint PATH)")
    search.add_argument("--progress", action="store_true",
                        help="Stream live per-trial progress lines")
    search.add_argument("--op-cache", default=None, metavar="PATH",
                        help="Persist the cross-trial per-op cost cache to this "
                             "JSON-lines file (shared across processes and restarts)")
    search.add_argument("--engine", default=None, metavar="SPEC",
                        help="Evaluation engine spec: "
                             "MAPPER[:key=value,...] with MAPPER one of "
                             "scalar / vectorized / graph-batched / "
                             "trial-batched and keys backend=numpy|cupy|torch, "
                             "op_cache=on|off, region_cache=on|off, "
                             "region_store=PATH (persistent JSONL region "
                             "store), cache_service=URL (cluster cache tier "
                             "on a `repro serve` endpoint) "
                             "(default: graph-batched with both caches on; "
                             "all NumPy engines give identical results)")
    search.add_argument("--no-op-cache", action="store_true",
                        help="Deprecated alias for --engine ...:op_cache=off")
    search.add_argument("--scalar-mapper", action="store_true",
                        help="Deprecated alias for --engine scalar")
    search.add_argument("--per-op-mapper", action="store_true",
                        help="Deprecated alias for --engine vectorized")
    search.add_argument("--no-region-cache", action="store_true",
                        help="Deprecated alias for --engine ...:region_cache=off")
    search.add_argument("--inject-faults", default=None, metavar="SPEC",
        help="Deterministic chaos testing: comma-separated fault points with "
             "colon-separated params, e.g. 'worker-crash:n=1,remote-drop:p=0.25:n=4' "
             "(see the Fault tolerance section of `python -m repro --help`'s module docs)")
    search.add_argument("--fault-seed", type=int, default=0, metavar="N",
        help="Seed of the fault plan's random streams (default 0); same spec + "
             "seed fires the same faults")
    search.add_argument("--trace", default=None, metavar="PATH",
                        help="Record spans across search/executor/workers/remote "
                             "and write a Chrome trace (.json; chrome://tracing "
                             "or Perfetto) or JSONL (.jsonl) file here")
    search.add_argument("--trace-sample", type=float, default=1.0, metavar="RATE",
                        help="Fraction of trial span trees to record (default "
                             "1.0; sampling never changes search results)")
    search.add_argument("--output", default=None, help="Write the search result JSON here")
    search.add_argument("--history", action="store_true",
                        help="Include the full trial history and proposals in --output "
                             "(used by the CI equivalence check)")
    search.add_argument("--save-config", default=None, help="Write the best design JSON here")
    search.set_defaults(func=_cmd_search)

    serve = sub.add_parser(
        "serve",
        help="Run a trial-evaluation service other hosts can target with "
             "`repro search --executor remote --endpoints`",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="Bind address (use 0.0.0.0 to accept remote searches)")
    serve.add_argument("--port", type=int, default=8642, help="TCP port (0 = pick free)")
    serve.add_argument("--workers", type=int, default=1,
                       help="Worker processes evaluating each request batch")
    serve.add_argument("--op-cache", default=None, metavar="PATH",
                       help="Persist the service's cross-trial op-cost cache here "
                            "(warm across requests and clients)")
    serve.add_argument("--engine", default=None, metavar="SPEC",
                       help="Pin the service's evaluation engine (same grammar "
                            "as `repro search --engine`); merged over every "
                            "request's simulation options.  With "
                            "region_store=PATH the /cache/region routes "
                            "persist and warm-load the shared region store")
    serve.add_argument("--inject-faults", default=None, metavar="SPEC",
        help="Serve as a deliberately flaky endpoint: seeded service-side "
             "faults, e.g. 'service-error:p=0.2,service-drop:n=3'")
    serve.add_argument("--fault-seed", type=int, default=0, metavar="N",
        help="Seed of the service fault plan (default 0)")
    serve.add_argument("--verbose", action="store_true",
                       help="Log per-request access lines (DEBUG) to stderr")
    serve.set_defaults(func=_cmd_serve)

    profile = sub.add_parser(
        "profile",
        help="Profile trial evaluation: per-stage times and trials/sec for the "
             "scalar, vectorized, and op-cached modes (verifies equivalence)",
    )
    profile.add_argument("--workload", action="append",
                         help="Repeat for multi-workload profiles (required "
                              "unless --check-backends)")
    profile.add_argument("--trials", type=int, default=48)
    profile.add_argument("--optimizer", default="lcs",
                         help="random / bayesian / lcs / annealing / coordinate / safe:<name>")
    profile.add_argument("--objective", default="perf_per_tdp",
                         choices=[kind.value for kind in ObjectiveKind])
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--batch-size", type=int, default=8)
    profile.add_argument("--warm-op-cache", action="store_true",
                         help="Also warm the op cache and time its steady state "
                              "(the sweep / repeated-search regime)")
    profile.add_argument("--engine", default=None, metavar="SPEC",
                         help="Profile just this engine spec against the scalar "
                              "reference instead of the whole mode ladder "
                              "(same grammar as `repro search --engine`)")
    profile.add_argument("--check-backends", action="store_true",
                         help="Instead of profiling, verify every array backend "
                              "against the NumPy kernels on a synthetic "
                              "candidate grid and print the per-backend "
                              "verdict (ok / skipped / failed)")
    profile.add_argument("--output", default=None, metavar="PATH",
                         help="Write the profile report JSON here")
    profile.set_defaults(func=_cmd_profile)

    sweep = sub.add_parser(
        "sweep", help="Sharded sweep: run N independent search shards and merge them"
    )
    sweep.add_argument("--workload", action="append",
                       help="Repeat for multi-workload sweeps (required unless --merge)")
    sweep.add_argument("--trials", type=int, default=48,
                       help="Total trial budget split across all shards")
    sweep.add_argument("--shards", type=int, default=4, help="Number of shards")
    sweep.add_argument("--shard-index", type=int, default=None, metavar="K",
                       help="Run only shard K and write its JSON (multi-host workflow)")
    sweep.add_argument("--merge", nargs="+", default=None, metavar="SHARD_JSON",
                       help="Merge previously written shard files instead of searching")
    sweep.add_argument("--mode", choices=["seed", "space"], default="seed",
                       help="Shard by decorrelated seed streams or by a space partition")
    sweep.add_argument("--partition-axis", default=None, metavar="PARAM",
                       help="Search-space axis split across shards (mode=space)")
    sweep.add_argument("--optimizer", default="lcs",
                       help="random / bayesian / lcs / annealing / coordinate / safe:<name>")
    sweep.add_argument("--objective", default="perf_per_tdp",
                       choices=[kind.value for kind in ObjectiveKind])
    sweep.add_argument("--seed", type=int, default=0, help="Base seed of the sweep")
    sweep.add_argument("--workers", type=int, default=1,
                       help="Worker processes for trial evaluation within each shard")
    sweep.add_argument("--batch-size", type=int, default=8,
                       help="Proposals per ask/tell batch within each shard")
    sweep.add_argument("--cache", default=None, metavar="PATH",
                       help="Shared trial cache; shards append to per-shard sidecars")
    sweep.add_argument("--op-cache", default=None, metavar="PATH",
                       help="Persistent per-op cost store shared by every shard "
                            "(and their pool workers); later shards reuse op "
                            "costs earlier shards mapped")
    sweep.add_argument("--engine", default=None, metavar="SPEC",
                       help="Evaluation engine spec for every shard (same "
                            "grammar as `repro search --engine`)")
    sweep.add_argument("--no-op-cache", action="store_true",
                       help="Deprecated alias for --engine ...:op_cache=off")
    sweep.add_argument("--exchange", default=None, metavar="PATH_OR_URL",
                       help="Live cross-shard best-score exchange: scoreboard file "
                            "prefix or evaluation-service URL (off by default; "
                            "guided optimizers fold in other shards' bests)")
    sweep.add_argument("--shard-dir", default=None, metavar="DIR",
                       help="Also write each shard's JSON into this directory")
    sweep.add_argument("--inject-faults", default=None, metavar="SPEC",
        help="Deterministic chaos testing, as in `repro search --inject-faults`")
    sweep.add_argument("--fault-seed", type=int, default=0, metavar="N",
        help="Seed of the fault plan's random streams (default 0)")
    sweep.add_argument("--trace", default=None, metavar="PATH",
                       help="Record spans across all shards run in this process "
                            "and write a Chrome trace (.json) or JSONL (.jsonl) "
                            "file here")
    sweep.add_argument("--trace-sample", type=float, default=1.0, metavar="RATE",
                       help="Fraction of trial span trees to record (default 1.0)")
    sweep.add_argument("--output", default=None, metavar="PATH",
                       help="Write the merged sweep JSON (or the shard JSON with "
                            "--shard-index) here")
    sweep.set_defaults(func=_cmd_sweep)

    cache = sub.add_parser("cache", help="Trial-cache maintenance")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    compact = cache_sub.add_parser(
        "compact",
        help="Merge shard sidecars, keep the best record per key, cap the store "
             "size (run only while no sweep is writing to the store)",
    )
    compact.add_argument("--cache", required=True, metavar="PATH",
                         help="Cache store to compact")
    compact.add_argument("--max-entries", type=int, default=None,
                         help="Evict least-recently-written entries beyond this count")
    compact.set_defaults(func=_cmd_cache_compact)

    trace = sub.add_parser(
        "trace",
        help="Summarize a trace recorded with `repro search --trace`: per-stage "
             "timeline, trial coverage, and the slowest spans",
    )
    trace.add_argument("path", help="Chrome-trace .json or .jsonl span file")
    trace.add_argument("--top", type=int, default=10,
                       help="Number of slowest spans to list")
    trace.set_defaults(func=_cmd_trace)

    roi = sub.add_parser("roi", help="Return-on-investment estimate (Eq. 1-2)")
    roi.add_argument("--speedup", type=float, required=True, help="Perf/TCO speedup vs baseline")
    roi.add_argument("--volume", type=int, default=4000, help="Deployed accelerator count")
    roi.set_defaults(func=_cmd_roi)

    reproduce = sub.add_parser("reproduce", help="Regenerate a paper table/figure by name")
    reproduce.add_argument("experiment", nargs="?", default=None, help="e.g. table1, fig13")
    reproduce.add_argument("--list", action="store_true", help="List available experiments")
    reproduce.add_argument("--option", action="append", metavar="KEY=VALUE",
                           help="Experiment option, e.g. workload=resnet50 or trials=100")
    reproduce.set_defaults(func=_cmd_reproduce)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed early (e.g. `repro trace ... | head`): not an
        # error worth a traceback.  Detach stdout so interpreter shutdown
        # does not retry the flush and print to stderr.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
