"""On-chip storage requirement analysis (Table 1).

For each workload this reports the maximum per-op working set (input
activations plus outputs of the op with the largest footprint) and the total
weight bytes, both in bfloat16 — the quantities that determine how much
Global Memory aggressive fusion and weight pinning need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.workloads.graph import Graph
from repro.workloads.registry import build_workload

__all__ = ["StorageRequirements", "storage_requirements", "storage_requirements_table"]


@dataclass(frozen=True)
class StorageRequirements:
    """Storage requirements of one workload at a given batch size."""

    workload: str
    batch_size: int
    max_working_set_bytes: int
    weight_bytes: int
    total_activation_bytes: int

    @property
    def max_working_set_mib(self) -> float:
        """Largest per-op working set in MiB."""
        return self.max_working_set_bytes / (1 << 20)

    @property
    def weight_mib(self) -> float:
        """Total weight footprint in MiB."""
        return self.weight_bytes / (1 << 20)


def storage_requirements(graph: Graph) -> StorageRequirements:
    """Compute storage requirements for an already-built graph."""
    return StorageRequirements(
        workload=graph.name,
        batch_size=graph.batch_size,
        max_working_set_bytes=graph.max_working_set_bytes(),
        weight_bytes=graph.weight_bytes(),
        total_activation_bytes=graph.activation_bytes_total(),
    )


def storage_requirements_table(
    workloads: List[str], batch_size: int = 1
) -> Dict[str, StorageRequirements]:
    """Build Table 1 for a list of registered workloads."""
    return {
        name: storage_requirements(build_workload(name, batch_size=batch_size))
        for name in workloads
    }
