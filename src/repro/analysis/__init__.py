"""Workload analysis: storage footprints, operational intensity, bottlenecks."""

from repro.analysis.bottleneck import (
    OpTypeBreakdown,
    bert_component_breakdown,
    characterize_op_types,
    per_layer_utilization,
)
from repro.analysis.footprint import (
    StorageRequirements,
    storage_requirements,
    storage_requirements_table,
)
from repro.analysis.intensity import IntensityReport, intensity_report, operational_intensity
from repro.analysis.sensitivity import (
    SensitivityEntry,
    SensitivityReport,
    sensitivity_analysis,
)

__all__ = [
    "IntensityReport",
    "OpTypeBreakdown",
    "SensitivityEntry",
    "SensitivityReport",
    "StorageRequirements",
    "bert_component_breakdown",
    "characterize_op_types",
    "intensity_report",
    "operational_intensity",
    "per_layer_utilization",
    "sensitivity_analysis",
    "storage_requirements",
    "storage_requirements_table",
]
