"""Design-sensitivity analysis: how much does each datapath knob matter?

Table 6 of the paper ablates FAST-Large one component at a time; this module
generalizes that study into a reusable analysis.  Given a base design, a
workload, and a set of parameters to perturb, it evaluates the design with
each parameter swept across its neighbouring values and reports the Perf/TDP
impact.  The result ranks the datapath decisions by how much the workload
cares about them — useful both to sanity-check a search result and to decide
which parameters to freeze when re-searching for a related workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.hardware.area_power import AreaPowerModel
from repro.hardware.datapath import DatapathConfig
from repro.hardware.search_space import DatapathSearchSpace
from repro.simulator.engine import Simulator

__all__ = ["SensitivityEntry", "SensitivityReport", "sensitivity_analysis"]

#: Parameters swept by default: the ones Table 5 / Table 6 call out as the
#: load-bearing differences between TPU-v3 and the FAST designs.
DEFAULT_PARAMETERS = (
    "systolic_array_x",
    "systolic_array_y",
    "l3_global_buffer_mib",
    "native_batch_size",
    "gddr6_channels",
    "l1_input_buffer_kib",
)


@dataclass(frozen=True)
class SensitivityEntry:
    """Perf/TDP impact of perturbing one parameter of the base design."""

    parameter: str
    base_value: object
    best_value: object
    worst_value: object
    base_perf_per_tdp: float
    best_perf_per_tdp: float
    worst_perf_per_tdp: float

    @property
    def swing(self) -> float:
        """Ratio between the best and worst Perf/TDP across the sweep."""
        if self.worst_perf_per_tdp <= 0:
            return float("inf")
        return self.best_perf_per_tdp / self.worst_perf_per_tdp

    @property
    def headroom(self) -> float:
        """Best swept Perf/TDP relative to the base value (1.0 = base is optimal)."""
        if self.base_perf_per_tdp <= 0:
            return float("inf")
        return self.best_perf_per_tdp / self.base_perf_per_tdp


@dataclass
class SensitivityReport:
    """All sensitivity entries for one (design, workload) pair."""

    workload: str
    base_config: DatapathConfig
    base_perf_per_tdp: float
    entries: List[SensitivityEntry]

    def ranked(self) -> List[SensitivityEntry]:
        """Entries sorted by decreasing swing (most influential first)."""
        return sorted(self.entries, key=lambda e: e.swing, reverse=True)

    def most_sensitive(self) -> Optional[SensitivityEntry]:
        """The parameter with the largest Perf/TDP swing."""
        ranked = self.ranked()
        return ranked[0] if ranked else None


def sensitivity_analysis(
    config: DatapathConfig,
    workload: str,
    parameters: Sequence[str] = DEFAULT_PARAMETERS,
    neighbourhood: int = 1,
    space: Optional[DatapathSearchSpace] = None,
    area_power_model: Optional[AreaPowerModel] = None,
) -> SensitivityReport:
    """Sweep each parameter around its base value and measure Perf/TDP.

    Args:
        config: Base design to perturb.
        workload: Registered workload name.
        parameters: Table 3 parameter names to sweep.
        neighbourhood: How many choices on each side of the base value to
            evaluate (1 sweeps the adjacent power-of-two values).
        space: Search space providing the per-parameter choice lists.
        area_power_model: Area/power model used for the TDP denominator.

    Returns:
        A :class:`SensitivityReport` with one entry per swept parameter.
    """
    space = space or DatapathSearchSpace(
        memory_technology=config.memory_technology, clock_ghz=config.clock_ghz
    )
    area_power_model = area_power_model or AreaPowerModel()
    base_score = _perf_per_tdp(config, workload, area_power_model)

    entries: List[SensitivityEntry] = []
    for parameter in parameters:
        spec = space.spec(parameter)
        base_value = getattr(config, parameter)
        try:
            base_index = spec.index_of(base_value)
        except ValueError:
            continue  # base design uses a value outside the search space
        scores: Dict[object, float] = {base_value: base_score}
        lo = max(0, base_index - neighbourhood)
        hi = min(spec.cardinality - 1, base_index + neighbourhood)
        for index in range(lo, hi + 1):
            value = spec.choices[index]
            if value in scores:
                continue
            try:
                candidate = config.evolve(**{parameter: value})
            except Exception:
                continue  # invalid combination; skip this neighbour
            scores[value] = _perf_per_tdp(candidate, workload, area_power_model)
        best_value = max(scores, key=scores.get)
        worst_value = min(scores, key=scores.get)
        entries.append(
            SensitivityEntry(
                parameter=parameter,
                base_value=base_value,
                best_value=best_value,
                worst_value=worst_value,
                base_perf_per_tdp=base_score,
                best_perf_per_tdp=scores[best_value],
                worst_perf_per_tdp=scores[worst_value],
            )
        )
    return SensitivityReport(
        workload=workload,
        base_config=config,
        base_perf_per_tdp=base_score,
        entries=entries,
    )


def _perf_per_tdp(config: DatapathConfig, workload: str, model: AreaPowerModel) -> float:
    result = Simulator(config).simulate_workload(workload)
    if result.schedule_failed:
        return 0.0
    tdp = model.tdp_w(config)
    return result.qps / tdp if tdp > 0 else 0.0
