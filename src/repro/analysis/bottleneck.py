"""Workload bottleneck characterization (Section 4 of the paper).

These helpers wrap the simulator to answer the questions the paper's workload
analysis asks: which op types dominate execution time (Table 2), how does
per-layer utilization evolve through a network (Figure 4), and how does the
runtime breakdown of a BERT layer change with sequence length (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hardware.datapath import DatapathConfig
from repro.simulator.engine import Simulator
from repro.simulator.result import SimulationResult
from repro.workloads.bert import op_component
from repro.workloads.ops import OpType
from repro.workloads.registry import build_workload

__all__ = [
    "OpTypeBreakdown",
    "characterize_op_types",
    "per_layer_utilization",
    "bert_component_breakdown",
]


@dataclass(frozen=True)
class OpTypeBreakdown:
    """FLOP share vs runtime share of one op type (a Table 2 row)."""

    op_type: OpType
    flop_fraction: float
    runtime_fraction: float


def characterize_op_types(
    workload: str, config: DatapathConfig, batch_size: int = None
) -> List[OpTypeBreakdown]:
    """Table 2: per-op-type FLOP and runtime fractions on a datapath."""
    result = Simulator(config).simulate_workload(workload, batch_size=batch_size)
    runtime = result.runtime_fraction_by_op_type()
    flops = result.flop_fraction_by_op_type()
    op_types = sorted(set(runtime) | set(flops), key=lambda t: -runtime.get(t, 0.0))
    return [
        OpTypeBreakdown(
            op_type=op_type,
            flop_fraction=flops.get(op_type, 0.0),
            runtime_fraction=runtime.get(op_type, 0.0),
        )
        for op_type in op_types
    ]


def per_layer_utilization(
    workload: str, config: DatapathConfig, batch_size: int = None
) -> List[float]:
    """Figures 4 / 14: per-layer achieved fraction of peak FLOPs."""
    result = Simulator(config).simulate_workload(workload, batch_size=batch_size)
    return result.per_layer_utilization()


def bert_component_breakdown(
    config: DatapathConfig, sequence_lengths: List[int], batch_size: int = None
) -> Dict[int, Dict[str, float]]:
    """Figure 5: BERT runtime share per component across sequence lengths."""
    from repro.workloads.bert import build_bert

    breakdown: Dict[int, Dict[str, float]] = {}
    simulator = Simulator(config)
    batch = batch_size or config.native_batch_size
    for seq_len in sequence_lengths:
        graph = build_bert(seq_len=seq_len, batch_size=batch)
        result = simulator.simulate(graph)
        breakdown[seq_len] = result.runtime_fraction_by(op_component)
    return breakdown
