"""Operational intensity analysis under different fusion strategies (Figure 3).

A model's operational intensity — FLOPs per byte of DRAM traffic — determines
whether it is compute- or bandwidth-bound on a given accelerator.  Figure 3
compares four points on the fusion spectrum:

* ``none``      — every op round-trips its inputs and outputs through DRAM.
* ``xla``       — XLA-style fusion regions; tensors internal to a region stay
                  on chip (at most one matrix op per region).
* ``block``     — hypothetical hand-written block templates (fusing an entire
                  depthwise-separable / MBConv block, or a whole transformer
                  sublayer); approximated by merging all fusion regions that
                  belong to the same named block.
* ``ideal``     — all weights pinned on chip and every intermediate fused:
                  only the model input and final output touch DRAM.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List

from repro.compiler.xla_fusion import build_fusion_regions
from repro.workloads.graph import Graph, TensorKind

__all__ = ["FusionStrategy", "IntensityReport", "operational_intensity", "intensity_report"]

FusionStrategy = str
_STRATEGIES = ("none", "xla", "block", "ideal")

# Ops belong to the same "block template" when their names share this prefix
# (e.g. ``block4_2`` for EfficientNet MBConv blocks, ``layer7.ffn`` for BERT
# feed-forward sublayers, ``stage3.block1`` for ResNet bottlenecks).
_BLOCK_PREFIX = re.compile(
    r"^(block\d+_\d+|layer\d+\.(?:attention|ffn)|stage\d+\.block\d+|stem|head|cnn|lstm\d+|"
    r"backbone\.c\d+\.block\d+|fpn|rpn|embeddings|classifier)"
)


@dataclass(frozen=True)
class IntensityReport:
    """Operational intensity of one workload under every fusion strategy."""

    workload: str
    batch_size: int
    total_flops: int
    intensity: Dict[FusionStrategy, float]

    def __getitem__(self, strategy: FusionStrategy) -> float:
        return self.intensity[strategy]


def _block_key(op_name: str) -> str:
    match = _BLOCK_PREFIX.match(op_name)
    return match.group(1) if match else op_name


def operational_intensity(graph: Graph, strategy: FusionStrategy = "xla") -> float:
    """Model-level FLOPs per DRAM byte under a fusion strategy."""
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown fusion strategy {strategy!r}; choose from {_STRATEGIES}")
    flops = graph.total_flops()
    traffic = _dram_traffic_bytes(graph, strategy)
    if traffic <= 0:
        return float("inf")
    return flops / traffic


def intensity_report(graph: Graph) -> IntensityReport:
    """Operational intensity under every strategy (one Figure 3 group)."""
    return IntensityReport(
        workload=graph.name,
        batch_size=graph.batch_size,
        total_flops=graph.total_flops(),
        intensity={s: operational_intensity(graph, s) for s in _STRATEGIES},
    )


# ----------------------------------------------------------------------
def _dram_traffic_bytes(graph: Graph, strategy: FusionStrategy) -> float:
    if strategy == "none":
        return _unfused_traffic(graph)
    if strategy == "ideal":
        return _ideal_traffic(graph)
    regions = build_fusion_regions(graph)
    if strategy == "xla":
        groups = [[region] for region in regions]
    else:  # block templates: merge regions sharing a block prefix
        by_block: Dict[str, List] = {}
        order: List[str] = []
        for region in regions:
            anchor = region.ops[0].name
            key = _block_key(anchor)
            if key not in by_block:
                by_block[key] = []
                order.append(key)
            by_block[key].append(region)
        groups = [by_block[key] for key in order]
    return _grouped_traffic(graph, groups)


def _unfused_traffic(graph: Graph) -> float:
    total = 0
    for op in graph.ops:
        for tname in list(op.inputs) + list(op.outputs):
            total += graph.tensor(tname).size_bytes
    return float(total)


def _ideal_traffic(graph: Graph) -> float:
    inputs = sum(graph.tensor(t).size_bytes for t in graph.input_names)
    outputs = sum(graph.tensor(t).size_bytes for t in graph.output_names)
    return float(inputs + outputs)


def _grouped_traffic(graph: Graph, groups) -> float:
    total = 0
    for group in groups:
        member_ops = {op.name for region in group for op in region.ops}
        produced = set()
        for region in group:
            for op in region.ops:
                produced.update(op.outputs)
        # External inputs and weights are read once per group.
        seen_inputs = set()
        for region in group:
            for op in region.ops:
                for tname in op.inputs:
                    tensor = graph.tensor(tname)
                    if tname in produced or tname in seen_inputs:
                        continue
                    seen_inputs.add(tname)
                    total += tensor.size_bytes
        # Outputs escaping the group are written once.
        for tname in produced:
            escapes = tname in graph.output_names or any(
                consumer.name not in member_ops for consumer in graph.consumers(tname)
            )
            if escapes:
                total += graph.tensor(tname).size_bytes
    return float(total)
