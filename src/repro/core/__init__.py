"""FAST core: search problem definition, trial evaluation, search driver, designs."""

from repro.core.designs import FAST_LARGE, FAST_SMALL, NAMED_DESIGNS, TPU_V3, TPU_V3_SINGLE_CORE
from repro.core.fast import FASTSearch, FASTSearchResult
from repro.core.problem import ObjectiveKind, SearchProblem, geometric_mean
from repro.core.trial import TrialEvaluator, TrialMetrics

__all__ = [
    "FAST_LARGE",
    "FAST_SMALL",
    "FASTSearch",
    "FASTSearchResult",
    "NAMED_DESIGNS",
    "ObjectiveKind",
    "SearchProblem",
    "TPU_V3",
    "TPU_V3_SINGLE_CORE",
    "TrialEvaluator",
    "TrialMetrics",
    "geometric_mean",
]
