"""Trial evaluation: datapath -> schedule -> fusion -> objective.

A *trial* evaluates one candidate datapath configuration against a search
problem: it checks the area/TDP constraints, simulates every workload at the
design's native batch size (running the mapper and FAST fusion inside the
simulator), and produces the objective value the black-box optimizer
minimizes — the three-phase flow of Figure 1.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.problem import ObjectiveKind, SearchProblem
from repro.hardware.area_power import AreaPowerModel
from repro.hardware.datapath import DatapathConfig
from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.simulator.engine import SimulationOptions, Simulator
from repro.simulator.result import SimulationResult
from repro.workloads.graph import Graph
from repro.workloads.registry import build_workload

__all__ = ["TrialMetrics", "TrialEvaluator", "clear_graph_cache"]

# The telemetry tracer is resolved lazily: this module is imported during
# ``repro.runtime``'s own package init (via runtime.cache), so a module-level
# ``from repro.runtime.telemetry import ...`` would be circular.  The accessor
# is cached after the first call, leaving one function call + attribute check
# on the hot path when tracing is disabled.
_get_tracer = None


def _tracer():
    global _get_tracer
    if _get_tracer is None:
        from repro.runtime.telemetry import get_tracer

        _get_tracer = get_tracer
    return _get_tracer()

# Workload graphs are immutable and expensive-ish to build, so they are cached
# per (workload, batch) across all evaluators in the process.  Graphs are
# never pickled to executor workers (only cache *settings* travel); workers
# either inherit the parent's warm entries through fork — graphs are
# immutable data, so inherited entries are exactly what the worker would
# rebuild — or, under spawn, rebuild lazily on first use / via
# :meth:`TrialEvaluator.warm_caches` in the pool initializer.
_GRAPH_CACHE: Dict[tuple, Graph] = {}


def _cached_graph(workload: str, batch_size: int) -> Graph:
    key = (workload, batch_size)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = build_workload(workload, batch_size=batch_size)
    return _GRAPH_CACHE[key]


def clear_graph_cache() -> None:
    """Drop all cached workload graphs (for tests and memory-sensitive runs)."""
    _GRAPH_CACHE.clear()


@dataclass
class TrialMetrics:
    """Everything measured for one candidate design."""

    config: DatapathConfig
    area_mm2: float
    tdp_w: float
    feasible: bool
    failure_reason: Optional[str]
    per_workload_qps: Dict[str, float] = field(default_factory=dict)
    per_workload_latency_ms: Dict[str, float] = field(default_factory=dict)
    per_workload_utilization: Dict[str, float] = field(default_factory=dict)
    aggregate_score: float = 0.0
    objective_value: float = math.inf

    @property
    def qps(self) -> float:
        """Single-workload convenience accessor."""
        if len(self.per_workload_qps) == 1:
            return next(iter(self.per_workload_qps.values()))
        return self.aggregate_score

    def perf_per_tdp(self, workload: str) -> float:
        """QPS per TDP watt for one workload."""
        if self.tdp_w <= 0:
            return 0.0
        return self.per_workload_qps.get(workload, 0.0) / self.tdp_w


class TrialEvaluator:
    """Evaluates candidate datapaths for a search problem.

    ``stage_seconds`` accumulates wall-clock seconds per pipeline stage
    (``mapper`` / ``vector`` / ``fusion`` from the simulator, plus the
    all-inclusive ``evaluate``) across every trial this instance evaluates in
    this process; the search loop and ``repro profile`` report deltas of it.
    Parallel executors evaluate on worker-process copies, so the parent's
    counters stay at zero there.
    """

    def __init__(
        self,
        problem: SearchProblem,
        area_power_model: Optional[AreaPowerModel] = None,
        simulation_options: Optional[SimulationOptions] = None,
        num_cores: int = 1,
    ) -> None:
        self.problem = problem
        self.area_power_model = area_power_model or AreaPowerModel()
        self.simulation_options = simulation_options or SimulationOptions(fusion_solver="greedy")
        self.num_cores = num_cores
        self.stage_seconds: Dict[str, float] = {
            "mapper": 0.0,
            "vector": 0.0,
            "fusion": 0.0,
            "evaluate": 0.0,
        }

    # ------------------------------------------------------------------
    def warm_caches(self, batch_sizes: Optional[tuple] = None) -> None:
        """Pre-warm this process's evaluation caches (best effort).

        Builds and pre-compiles the problem's workload graphs (default: at
        the stock native batch size) and attaches the shared op / region
        caches — loading the persistent op store from disk when one is
        configured, so the first trial already runs warm.  Used by the
        process-pool worker initializer and ``repro serve``; every step is a
        pure cache fill, results are unaffected.
        """
        options = self.simulation_options
        if getattr(options, "op_cache_enabled", False):
            from repro.runtime.opcache import get_op_cache

            get_op_cache(getattr(options, "op_cache_path", None))
        self.attach_region_tiers()
        from repro.simulator.engine import precompile_graph

        sizes = tuple(batch_sizes) if batch_sizes else (DatapathConfig().native_batch_size,)
        for workload in self.problem.workloads:
            for batch_size in sizes:
                try:
                    graph = _cached_graph(workload, batch_size)
                    precompile_graph(graph)
                except Exception:
                    continue  # warm-up must never break evaluation

    # ------------------------------------------------------------------
    def attach_region_tiers(self):
        """The process-local region cache with every configured tier wired.

        Resolves the region cache for this evaluator's store path
        (warm-loading the persistent region store on first touch) and, when
        ``region_cache_service`` names a ``repro serve`` endpoint, attaches
        a :class:`~repro.runtime.remote.RemoteCostCache` cluster client
        keyed by this problem's fingerprint.  Idempotent and cheap after the
        first call; used by the worker initializer, ``repro serve``, and the
        per-trial setup path (so even a cold serial run gets its tiers).
        Returns the cache, or None when region caching is disabled.
        """
        options = self.simulation_options
        if not getattr(options, "region_cache_enabled", False):
            return None
        from repro.runtime.opcache import get_region_cache

        cache = get_region_cache(getattr(options, "region_store_path", None))
        url = getattr(options, "region_cache_service", None)
        if url:
            url = url.rstrip("/")
            if getattr(cache.remote, "base_url", None) != url:
                try:
                    from repro.runtime.cache import problem_fingerprint
                    from repro.runtime.remote import RemoteCostCache

                    cache.attach_remote(
                        RemoteCostCache(
                            url,
                            fingerprint=problem_fingerprint(
                                self.problem, evaluator=self
                            ),
                        )
                    )
                except Exception:
                    pass  # the cluster tier is additive; local tiers still work
        return cache

    # ------------------------------------------------------------------
    def evaluate_params(
        self, params: ParameterValues, space: DatapathSearchSpace
    ) -> TrialMetrics:
        """Evaluate a search-space parameter assignment."""
        with _tracer().span(
            "trial", category="search", workloads=len(self.problem.workloads)
        ) as span:
            try:
                config = space.to_config(params, num_cores=self.num_cores)
            except Exception as error:  # invalid combinations are infeasible trials
                span.set_attr("feasible", False)
                return TrialMetrics(
                    config=None,
                    area_mm2=math.inf,
                    tdp_w=math.inf,
                    feasible=False,
                    failure_reason=f"invalid configuration: {error}",
                )
            metrics = self.evaluate_config(config)
            span.set_attr("feasible", metrics.feasible)
            span.set_attr("score", metrics.aggregate_score)
            return metrics

    def evaluate_config(self, config: DatapathConfig) -> TrialMetrics:
        """Evaluate a concrete datapath configuration."""
        started = time.perf_counter()
        try:
            return self._evaluate_config(config)
        finally:
            self.stage_seconds["evaluate"] += time.perf_counter() - started

    def _evaluate_config(self, config: DatapathConfig) -> TrialMetrics:
        metrics, simulator = self._begin_config(config)
        if simulator is None:
            return metrics
        return self._finish_config(metrics, simulator)

    def _begin_config(self, config: DatapathConfig):
        """First half of a trial: area/TDP constraints + simulator setup.

        Returns ``(metrics, simulator)``; ``simulator`` is ``None`` when the
        constraints already decided the trial.  Split out so the batched
        path can stage every trial before the shared mapping pass.
        """
        # Region-tier wiring is idempotent; doing it here (not just in
        # warm_caches) means serial runs and cold workers also see the
        # persistent store and the cluster tier from their first trial.
        self.attach_region_tiers()
        with _tracer().span("area_power", category="simulate"):
            breakdown = self.area_power_model.evaluate(config)
        area = breakdown.total_area_mm2
        tdp = breakdown.total_tdp_w
        constraints = self.problem.constraints

        metrics = TrialMetrics(
            config=config,
            area_mm2=area,
            tdp_w=tdp,
            feasible=True,
            failure_reason=None,
        )
        if not constraints.is_feasible(area, tdp):
            metrics.feasible = False
            metrics.failure_reason = (
                f"cost constraints violated: area {area:.0f} mm^2 (max "
                f"{constraints.max_area_mm2:.0f}), TDP {tdp:.0f} W (max "
                f"{constraints.max_tdp_w:.0f})"
            )
            return metrics, None

        with _tracer().span("setup", category="simulate"):
            simulator = Simulator(config, self.simulation_options)
        return metrics, simulator

    def _finish_config(self, metrics: TrialMetrics, simulator: Simulator) -> TrialMetrics:
        """Second half of a trial: simulate every workload and score."""
        config = metrics.config
        area = metrics.area_mm2
        tdp = metrics.tdp_w
        per_workload_scores: Dict[str, float] = {}
        try:
            for workload in self.problem.workloads:
                with _tracer().span("simulate", category="simulate", workload=workload):
                    graph = _cached_graph(workload, config.native_batch_size)
                    result = simulator.simulate(graph)
                if result.schedule_failed:
                    metrics.feasible = False
                    metrics.failure_reason = f"schedule failure on {workload}"
                    return metrics
                metrics.per_workload_qps[workload] = result.qps
                metrics.per_workload_latency_ms[workload] = result.latency_ms
                metrics.per_workload_utilization[workload] = result.compute_utilization
                per_workload_scores[workload] = self.problem.workload_score(
                    workload, result.qps, tdp, area
                )
        finally:
            for stage, seconds in simulator.stage_seconds.items():
                self.stage_seconds[stage] += seconds

        metrics.aggregate_score = self.problem.aggregate(per_workload_scores)
        metrics.objective_value = self.problem.minimized_value(metrics.aggregate_score)
        return metrics

    # ------------------------------------------------------------------
    def evaluate_params_batch(
        self, params_list, space: DatapathSearchSpace
    ) -> "list[TrialMetrics]":
        """Evaluate a batch of trials with one cross-trial mapping pass.

        The trial-batched twin of calling :meth:`evaluate_params` per
        element: every trial is staged (constraints + simulator setup), the
        pending matrix-op problems of ALL trials x workloads are gathered
        and priced in ONE stacked
        :meth:`~repro.mapping.mapper.Mapper.map_trials_batch` sweep, and
        each trial then finishes against its pre-warmed mapper cache.
        Bit-for-bit equal to the per-trial path (the shared pass computes
        the identical candidate arithmetic and lands in the same caches).
        Falls back to the per-trial loop whenever
        ``simulation_options.trial_batched_mapper`` is off.
        """
        if not getattr(self.simulation_options, "trial_batched_mapper", None):
            return [self.evaluate_params(params, space) for params in params_list]
        started = time.perf_counter()
        try:
            return self._evaluate_params_batch(params_list, space)
        finally:
            self.stage_seconds["evaluate"] += time.perf_counter() - started

    def _evaluate_params_batch(self, params_list, space: DatapathSearchSpace):
        from repro.mapping.mapper import Mapper

        staged = []
        entries = []
        for params in params_list:
            try:
                config = space.to_config(params, num_cores=self.num_cores)
            except Exception as error:
                staged.append(
                    (
                        TrialMetrics(
                            config=None,
                            area_mm2=math.inf,
                            tdp_w=math.inf,
                            feasible=False,
                            failure_reason=f"invalid configuration: {error}",
                        ),
                        None,
                    )
                )
                continue
            metrics, simulator = self._begin_config(config)
            if simulator is not None:
                for workload in self.problem.workloads:
                    graph = _cached_graph(workload, config.native_batch_size)
                    entry = simulator.gather_map_entry(graph)
                    if entry is not None:
                        entries.append(entry)
            staged.append((metrics, simulator))
        if entries:
            with _tracer().span(
                "trial_batch_map", category="search", trials=len(params_list)
            ):
                map_started = time.perf_counter()
                Mapper.map_trials_batch(entries)
                self.stage_seconds["mapper"] += time.perf_counter() - map_started
        results = []
        for metrics, simulator in staged:
            with _tracer().span(
                "trial", category="search", workloads=len(self.problem.workloads)
            ) as span:
                if simulator is not None:
                    metrics = self._finish_config(metrics, simulator)
                span.set_attr("feasible", metrics.feasible)
                span.set_attr("score", metrics.aggregate_score)
            results.append(metrics)
        return results

    # ------------------------------------------------------------------
    def simulate_design(self, config: DatapathConfig, workload: str) -> SimulationResult:
        """Full simulation result for one workload (for detailed reporting)."""
        simulator = Simulator(config, self.simulation_options)
        graph = _cached_graph(workload, config.native_batch_size)
        return simulator.simulate(graph)
