"""Search problem definition: workloads, objective, and constraints (Eq. 3-5).

A :class:`SearchProblem` bundles everything FAST needs to score one candidate
datapath: the workload set (one workload for a specialized design, several
for a general-purpose design), the objective function (throughput, Perf/TDP,
Perf/Area, or latency), and the cost constraints (maximum area and TDP).
Multi-workload objectives are aggregated with the geometric mean, matching
the GeoMean-5 treatment in Figure 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.hardware.tpu import EvaluationConstraints, default_constraints

__all__ = ["ObjectiveKind", "SearchProblem", "geometric_mean"]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; zero if any value is non-positive."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


class ObjectiveKind(Enum):
    """Objective functions supported by the search (all maximized except latency)."""

    THROUGHPUT = "qps"
    PERF_PER_TDP = "perf_per_tdp"
    PERF_PER_AREA = "perf_per_area"
    LATENCY = "latency"

    @property
    def higher_is_better(self) -> bool:
        """Whether larger objective values are better."""
        return self is not ObjectiveKind.LATENCY


@dataclass
class SearchProblem:
    """One FAST search instance.

    Attributes:
        workloads: Names of registered workloads to optimize for.
        objective: Objective function.
        constraints: Maximum area / TDP budget; defaults to the paper's
            TPU-v3-relative budget when omitted.
        baseline_qps: Optional per-workload baseline throughputs.  When given,
            the multi-workload aggregation uses relative speedups instead of
            raw QPS, which keeps workloads with very different absolute
            throughputs comparable (as in Figures 9-10).
    """

    workloads: List[str]
    objective: ObjectiveKind = ObjectiveKind.PERF_PER_TDP
    constraints: Optional[EvaluationConstraints] = None
    baseline_qps: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("a search problem needs at least one workload")
        if self.constraints is None:
            self.constraints = default_constraints()

    @property
    def is_multi_workload(self) -> bool:
        """Whether the search optimizes a design across several workloads."""
        return len(self.workloads) > 1

    # ------------------------------------------------------------------
    def workload_score(self, workload: str, qps: float, tdp_w: float, area_mm2: float) -> float:
        """Objective value for a single workload (higher is better)."""
        if qps <= 0:
            return 0.0
        if self.objective is ObjectiveKind.THROUGHPUT:
            score = qps
        elif self.objective is ObjectiveKind.PERF_PER_TDP:
            score = qps / tdp_w if tdp_w > 0 else 0.0
        elif self.objective is ObjectiveKind.PERF_PER_AREA:
            score = qps / area_mm2 if area_mm2 > 0 else 0.0
        else:  # LATENCY: score is inverse latency so that higher is better.
            score = qps
        baseline = self.baseline_qps.get(workload)
        if baseline:
            score /= baseline
        return score

    def aggregate(self, per_workload_scores: Dict[str, float]) -> float:
        """Combine per-workload scores into one objective (geometric mean)."""
        scores = [per_workload_scores[w] for w in self.workloads]
        return geometric_mean(scores)

    def minimized_value(self, aggregate_score: float) -> float:
        """Convert an aggregate score into the value the optimizer minimizes."""
        if aggregate_score <= 0:
            return math.inf
        return -aggregate_score
