"""Named accelerator designs from the paper (Table 5).

``FAST_LARGE`` and ``FAST_SMALL`` are the two example designs FAST found when
optimizing Perf/TDP for EfficientNet-B7; ``TPU_V3`` is the die-shrunk
baseline.  They are used directly by the Table 5 / Figure 13-15 / Table 6
benchmarks and serve as convenient starting points for users of the library.
"""

from __future__ import annotations

from typing import Dict

from repro.hardware.datapath import BufferConfig, DatapathConfig, L2Config, MemoryTechnology
from repro.hardware.tpu import TPU_V3, TPU_V3_SINGLE_CORE

__all__ = ["TPU_V3", "TPU_V3_SINGLE_CORE", "FAST_LARGE", "FAST_SMALL", "NAMED_DESIGNS"]


#: FAST-Large (Table 5): 64 PEs with 32x32 systolic arrays, a 32-wide VPU per
#: PE, 8 KiB shared L1 scratchpads, no L2, a 128 MiB Global Memory, 8 GDDR6
#: channels (448 GB/s) and native batch size 8.  Relies on FAST fusion to
#: overcome its 2x lower memory bandwidth.
FAST_LARGE = DatapathConfig(
    pes_x_dim=8,
    pes_y_dim=8,
    systolic_array_x=32,
    systolic_array_y=32,
    vector_unit_multiplier=1,
    l1_buffer_config=BufferConfig.SHARED,
    l1_input_buffer_kib=4,
    l1_weight_buffer_kib=2,
    l1_output_buffer_kib=2,
    l2_buffer_config=L2Config.DISABLED,
    l3_global_buffer_mib=128,
    gddr6_channels=8,
    native_batch_size=8,
    memory_technology=MemoryTechnology.GDDR6,
    clock_ghz=0.94,
    num_cores=1,
    enable_fast_fusion=True,
)

#: FAST-Small (Table 5): 8 PEs with 64x32 systolic arrays, a 64-wide VPU per
#: PE, 8 KiB shared L1, an 8 MiB Global Memory, 8 GDDR6 channels and native
#: batch size 64.  Avoids fusion entirely and instead relies on a low
#: compute-to-bandwidth ratio.
FAST_SMALL = DatapathConfig(
    pes_x_dim=4,
    pes_y_dim=2,
    systolic_array_x=64,
    systolic_array_y=32,
    vector_unit_multiplier=1,
    l1_buffer_config=BufferConfig.SHARED,
    l1_input_buffer_kib=4,
    l1_weight_buffer_kib=2,
    l1_output_buffer_kib=2,
    l2_buffer_config=L2Config.DISABLED,
    l3_global_buffer_mib=8,
    gddr6_channels=8,
    native_batch_size=64,
    memory_technology=MemoryTechnology.GDDR6,
    clock_ghz=0.94,
    num_cores=1,
    enable_fast_fusion=False,
)

#: All named designs by their paper name.
NAMED_DESIGNS: Dict[str, DatapathConfig] = {
    "tpu-v3": TPU_V3,
    "fast-large": FAST_LARGE,
    "fast-small": FAST_SMALL,
}
