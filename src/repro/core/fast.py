"""FAST: the full-stack accelerator search driver.

:class:`FASTSearch` ties together the datapath search space, a black-box
optimizer (random / Bayesian / LCS), and the trial evaluator.  Each trial
proposes a datapath, the simulator schedules the target workloads onto it
(tensor padding + Timeloop-style mapping), the FAST fusion ILP assigns
tensors to the Global Memory, and the resulting performance/TDP feeds back
into the optimizer — the loop of Figure 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.core.problem import SearchProblem
from repro.core.trial import TrialEvaluator, TrialMetrics
from repro.hardware.datapath import DatapathConfig
from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.search import Optimizer, make_optimizer
from repro.search.pareto import ParetoFront

__all__ = ["FASTSearchResult", "FASTSearch"]


@dataclass
class FASTSearchResult:
    """Outcome of one FAST search run."""

    problem: SearchProblem
    best_params: Optional[ParameterValues]
    best_config: Optional[DatapathConfig]
    best_metrics: Optional[TrialMetrics]
    history: List[TrialMetrics] = field(default_factory=list)
    best_score_curve: List[float] = field(default_factory=list)
    pareto_front: Optional[ParetoFront] = None

    @property
    def num_trials(self) -> int:
        """Number of evaluated trials."""
        return len(self.history)

    @property
    def num_feasible_trials(self) -> int:
        """Number of trials satisfying all constraints."""
        return sum(1 for m in self.history if m.feasible)

    @property
    def best_score(self) -> float:
        """Best aggregate objective score found (higher is better)."""
        if self.best_metrics is None:
            return 0.0
        return self.best_metrics.aggregate_score


class FASTSearch:
    """Runs the FAST joint datapath / schedule / fusion search."""

    def __init__(
        self,
        problem: SearchProblem,
        optimizer: Union[str, Optimizer] = "lcs",
        space: Optional[DatapathSearchSpace] = None,
        evaluator: Optional[TrialEvaluator] = None,
        seed: int = 0,
        seed_configs: Optional[List[DatapathConfig]] = None,
    ) -> None:
        """Create a search instance.

        Args:
            problem: Workloads, objective, and constraints.
            optimizer: Optimizer name (``random``/``bayesian``/``lcs``) or instance.
            space: Datapath search space (defaults to the Table 3 space).
            evaluator: Trial evaluator (defaults to one built from ``problem``).
            seed: Random seed for the optimizer.
            seed_configs: Optional known designs (e.g. the baseline datapath)
                evaluated as the first trials to warm-start the optimizer.
                The paper runs 5000 Vizier trials per experiment; warm
                starting lets much smaller budgets reach representative
                designs.
        """
        self.problem = problem
        self.space = space or DatapathSearchSpace()
        self.evaluator = evaluator or TrialEvaluator(problem)
        self.seed_configs = list(seed_configs or [])
        if isinstance(optimizer, str):
            self.optimizer = make_optimizer(optimizer, self.space, seed=seed)
        else:
            self.optimizer = optimizer

    # ------------------------------------------------------------------
    def run(
        self,
        num_trials: int,
        callback: Optional[Callable[[int, TrialMetrics], None]] = None,
    ) -> FASTSearchResult:
        """Run the search for a fixed trial budget.

        Args:
            num_trials: Number of candidate designs to evaluate.
            callback: Optional per-trial hook ``callback(trial_index, metrics)``.

        Returns:
            The search result with the best design, full history, the
            best-so-far score curve, and the (latency, TDP, area) Pareto
            frontier across all feasible trials.
        """
        history: List[TrialMetrics] = []
        best_metrics: Optional[TrialMetrics] = None
        best_params: Optional[ParameterValues] = None
        best_curve: List[float] = []
        pareto = ParetoFront()

        seed_params = [self.space.from_config(config) for config in self.seed_configs]

        for trial_index in range(num_trials):
            if trial_index < len(seed_params):
                params = seed_params[trial_index]
            else:
                params = self.optimizer.ask()
            metrics = self.evaluator.evaluate_params(params, self.space)
            self.optimizer.tell(
                params,
                metrics.objective_value,
                feasible=metrics.feasible and math.isfinite(metrics.objective_value),
            )
            history.append(metrics)

            if metrics.feasible and math.isfinite(metrics.objective_value):
                if best_metrics is None or metrics.aggregate_score > best_metrics.aggregate_score:
                    best_metrics = metrics
                    best_params = dict(params)
                mean_latency = _mean(metrics.per_workload_latency_ms.values())
                pareto.add(
                    (mean_latency, metrics.tdp_w, metrics.area_mm2),
                    payload={"params": dict(params), "score": metrics.aggregate_score},
                )
            best_curve.append(best_metrics.aggregate_score if best_metrics else 0.0)

            if callback is not None:
                callback(trial_index, metrics)

        return FASTSearchResult(
            problem=self.problem,
            best_params=best_params,
            best_config=best_metrics.config if best_metrics else None,
            best_metrics=best_metrics,
            history=history,
            best_score_curve=best_curve,
            pareto_front=pareto,
        )


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
