"""FAST: the full-stack accelerator search driver.

:class:`FASTSearch` ties together the datapath search space, a black-box
optimizer (random / Bayesian / LCS), and the trial evaluator.  Each trial
proposes a datapath, the simulator schedules the target workloads onto it
(tensor padding + Timeloop-style mapping), the FAST fusion ILP assigns
tensors to the Global Memory, and the resulting performance/TDP feeds back
into the optimizer — the loop of Figure 1.

The search runs on top of the :mod:`repro.runtime` subsystem: proposals are
asked in batches, evaluated through a pluggable :class:`TrialExecutor`
(serial or process-pool parallel), memoized in an optional persistent
:class:`TrialCache`, and periodically checkpointed for ``--resume``.  Results
are told back to the optimizer in proposal order, so for a fixed seed and
batch size the history is identical no matter how many workers evaluate it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from repro.core.problem import SearchProblem
from repro.core.trial import TrialEvaluator, TrialMetrics
from repro.hardware.datapath import DatapathConfig
from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.search import Optimizer, make_optimizer
from repro.search.pareto import ParetoFront

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.runtime.cache import TrialCache
    from repro.runtime.checkpoint import SearchCheckpoint
    from repro.runtime.exchange import ExchangeClient
    from repro.runtime.executor import TrialExecutor
    from repro.runtime.progress import ProgressBus

__all__ = ["RuntimeStats", "FASTSearchResult", "FASTSearch"]


@dataclass
class RuntimeStats:
    """Execution statistics of one search run.

    ``op_cache_hits``/``op_cache_misses`` count per-op cost lookups served by
    the cross-trial :mod:`repro.runtime.opcache`, and
    ``region_cache_hits``/``region_cache_misses`` count whole fusion-region
    evaluations served by the region-level result cache layered above it.
    The shared-tier breakdown rides alongside: ``*_disk_hits`` are the
    subset of hits served from a persistent store's raw index
    (``--op-cache`` / ``--engine region_store=``), ``*_shared_hits`` the
    subset served from an attached parent-published shared-memory segment,
    ``shared_cache_attached`` counts workers that attached one (and
    ``shared_cache_entries`` how many entries the parent published), and
    the ``remote_cache_*`` counters cover the cluster tier — batched
    ``/cache/region`` prefetch hits/misses, entries pushed back, HTTP round
    trips, and failed round trips.
    The ``*_seconds`` fields break evaluation wall-clock time down by
    pipeline stage (mapper / VPU cost model / fusion ILP / whole-trial
    evaluation).  Under a serial executor they are collected from this
    process's evaluator and caches; a
    :class:`~repro.runtime.executor.ParallelExecutor` aggregates the same
    counters inside its workers and reports them through
    ``runtime_counters()``, so parallel runs no longer show zeros here.

    The ``remote_*`` counters and per-endpoint ``endpoint_stats`` map are
    filled in when the run used an
    :class:`~repro.runtime.remote.AsyncRemoteExecutor` (requests dispatched,
    retries, hedged re-dispatches, failures, and per-endpoint latency sums);
    ``exchange_published``/``exchange_adopted`` count cross-shard scoreboard
    publications and adopted external bests when a sweep ran with
    ``--exchange``.  ``spans_recorded`` counts telemetry spans captured by
    the run (zero unless tracing was enabled, e.g. via ``--trace``); tracing
    is strictly observational, so histories are identical either way.

    The fault-survival counters report what the run lived through without
    its history changing: ``worker_restarts`` (process pools rebuilt after a
    worker died mid-batch), ``remote_fallbacks`` (batches a remote executor
    evaluated locally after the whole fleet failed), ``corrupt_records``
    (torn JSONL records quarantined while loading the attached trial / op
    stores), and ``faults_injected`` (faults fired by an ``--inject-faults``
    plan during the run; zero in production runs).

    ``engine`` is a configuration echo, not a counter: the canonical
    :class:`~repro.simulator.enginespec.EngineSpec` string the evaluating
    process(es) actually resolved.  For parallel runs it is reported by the
    workers themselves, so a pool silently falling back to a different
    engine than the parent configured would be visible here.
    """

    trials_evaluated: int = 0
    cache_hits: int = 0
    batches: int = 0
    duplicates_avoided: int = 0
    resumed_trials: int = 0
    elapsed_seconds: float = 0.0
    op_cache_hits: int = 0
    op_cache_misses: int = 0
    op_cache_disk_hits: int = 0
    op_cache_shared_hits: int = 0
    region_cache_hits: int = 0
    region_cache_misses: int = 0
    region_cache_disk_hits: int = 0
    region_cache_shared_hits: int = 0
    shared_cache_attached: int = 0
    shared_cache_entries: int = 0
    remote_cache_hits: int = 0
    remote_cache_misses: int = 0
    remote_cache_puts: int = 0
    remote_cache_requests: int = 0
    remote_cache_failures: int = 0
    mapper_seconds: float = 0.0
    vector_seconds: float = 0.0
    fusion_seconds: float = 0.0
    eval_seconds: float = 0.0
    remote_batches: int = 0
    remote_requests: int = 0
    remote_retries: int = 0
    remote_hedges: int = 0
    remote_failures: int = 0
    remote_blacklist_resets: int = 0
    remote_fallbacks: int = 0
    endpoint_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    exchange_published: int = 0
    exchange_adopted: int = 0
    spans_recorded: int = 0
    worker_restarts: int = 0
    corrupt_records: int = 0
    faults_injected: int = 0
    engine: str = ""

    @property
    def trials_per_second(self) -> float:
        """Completed trials (evaluated + cached) per wall-clock second."""
        total = self.trials_evaluated + self.cache_hits
        return total / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def op_cache_hit_rate(self) -> float:
        """Fraction of per-op cost lookups served by the op cache."""
        total = self.op_cache_hits + self.op_cache_misses
        return self.op_cache_hits / total if total else 0.0

    @property
    def region_cache_hit_rate(self) -> float:
        """Fraction of region evaluations served by the region cache."""
        total = self.region_cache_hits + self.region_cache_misses
        return self.region_cache_hits / total if total else 0.0


@dataclass
class FASTSearchResult:
    """Outcome of one FAST search run."""

    problem: SearchProblem
    best_params: Optional[ParameterValues]
    best_config: Optional[DatapathConfig]
    best_metrics: Optional[TrialMetrics]
    history: List[TrialMetrics] = field(default_factory=list)
    proposals: List[ParameterValues] = field(default_factory=list)
    best_score_curve: List[float] = field(default_factory=list)
    pareto_front: Optional[ParetoFront] = None
    runtime: Optional[RuntimeStats] = None

    @property
    def num_trials(self) -> int:
        """Number of evaluated trials."""
        return len(self.history)

    @property
    def num_feasible_trials(self) -> int:
        """Number of trials satisfying all constraints."""
        return sum(1 for m in self.history if m.feasible)

    @property
    def best_score(self) -> float:
        """Best aggregate objective score found (higher is better).

        ``nan`` when no feasible trial exists — distinguishable from a true
        zero score; use :attr:`best_metrics` (``None``-safe) to branch.
        """
        if self.best_metrics is None:
            return float("nan")
        return self.best_metrics.aggregate_score


class FASTSearch:
    """Runs the FAST joint datapath / schedule / fusion search."""

    def __init__(
        self,
        problem: SearchProblem,
        optimizer: Union[str, Optimizer] = "lcs",
        space: Optional[DatapathSearchSpace] = None,
        evaluator: Optional[TrialEvaluator] = None,
        seed: int = 0,
        seed_configs: Optional[List[DatapathConfig]] = None,
        executor: Optional["TrialExecutor"] = None,
        cache: Optional["TrialCache"] = None,
        checkpoint: Optional["SearchCheckpoint"] = None,
        progress: Optional["ProgressBus"] = None,
        exchange: Optional["ExchangeClient"] = None,
    ) -> None:
        """Create a search instance.

        Args:
            problem: Workloads, objective, and constraints.
            optimizer: Optimizer name (``random``/``bayesian``/``lcs``) or instance.
            space: Datapath search space (defaults to the Table 3 space).
            evaluator: Trial evaluator (defaults to one built from ``problem``).
            seed: Random seed for the optimizer.
            seed_configs: Optional known designs (e.g. the baseline datapath)
                evaluated as the first trials to warm-start the optimizer.
                The paper runs 5000 Vizier trials per experiment; warm
                starting lets much smaller budgets reach representative
                designs.
            executor: Trial executor; defaults to in-process serial
                evaluation.  Pass a :class:`~repro.runtime.executor.ParallelExecutor`
                to fan batches out to worker processes.
            cache: Optional persistent trial cache; repeated configurations
                (within a run or across restarts) skip simulation entirely.
            checkpoint: Optional checkpoint manager; the run saves
                periodically and :meth:`run` can resume from the saved state.
            progress: Optional event bus receiving trial/cache/best events.
            exchange: Optional cross-shard exchange client
                (:class:`~repro.runtime.exchange.ExchangeClient`).  When
                set, the run publishes its best-so-far to the shared
                scoreboard after every batch and, before asking the next
                batch, feeds any better score published by *other* shards to
                the optimizer via
                :meth:`~repro.search.optimizer.Optimizer.observe_external_best`.
                A run that never receives an external best is bit-for-bit
                identical to one without an exchange.
        """
        self.problem = problem
        self.space = space or DatapathSearchSpace()
        self.evaluator = evaluator or TrialEvaluator(problem)
        self.seed_configs = list(seed_configs or [])
        self.executor = executor
        self.cache = cache
        self.checkpoint = checkpoint
        self.progress = progress
        self.exchange = exchange
        if isinstance(optimizer, str):
            self.optimizer = make_optimizer(optimizer, self.space, seed=seed)
        else:
            self.optimizer = optimizer

    # ------------------------------------------------------------------
    def run(
        self,
        num_trials: int,
        callback: Optional[Callable[[int, TrialMetrics], None]] = None,
        batch_size: int = 1,
        resume: bool = False,
    ) -> FASTSearchResult:
        """Run the search for a fixed trial budget.

        Args:
            num_trials: Total number of candidate designs to evaluate
                (including any trials restored by ``resume``).
            callback: Optional per-trial hook ``callback(trial_index, metrics)``.
            batch_size: Proposals asked (and evaluated) per inner-loop step.
                The optimizer trajectory depends on the batch size but *not*
                on the executor, so serial and parallel runs with the same
                batch size produce identical histories for a fixed seed.
            resume: Continue from the checkpoint file if one exists
                (requires a ``checkpoint=`` manager).  Resuming an
                interrupted run reproduces the uninterrupted trajectory
                bit-for-bit; extending a *completed* run whose budget was
                not a multiple of ``batch_size`` continues validly but may
                diverge from a single larger-budget run (see
                :mod:`repro.runtime.checkpoint`).

        Returns:
            The search result with the best design, full history, the
            best-so-far score curve, the (latency, TDP, area) Pareto
            frontier across all feasible trials, and runtime statistics.
        """
        from repro.runtime.batching import BatchedOptimizer
        from repro.runtime.cache import problem_fingerprint
        from repro.runtime.checkpoint import (
            CheckpointState,
            optimizer_state_to_dict,
            restore_optimizer,
        )
        from repro.runtime.executor import SerialExecutor
        from repro.runtime.progress import (
            BATCH_STARTED,
            BEST_IMPROVED,
            CACHE_HIT,
            CHECKPOINT_SAVED,
            EXTERNAL_BEST,
            SEARCH_FINISHED,
            SEARCH_RESUMED,
            SEARCH_STARTED,
            ProgressBus,
            TRIAL_FINISHED,
        )

        from repro.runtime.telemetry import get_tracer

        batch_size = max(1, int(batch_size))
        executor = self.executor or SerialExecutor()
        bus = self.progress or ProgressBus()
        tracer = get_tracer()
        spans_start = tracer.total_recorded
        started_unix = time.time()
        started_at = time.monotonic()
        stats = RuntimeStats()
        stage_start = dict(getattr(self.evaluator, "stage_seconds", None) or {})
        # Op-cache counters only move in this process, i.e. under a serial
        # executor; with a parallel executor the cache lives in the workers,
        # so don't force-load a possibly large persistent store here.
        from repro.runtime.executor import cache_counter_snapshot

        op_cache = self._op_cache() if isinstance(executor, SerialExecutor) else None
        region_cache = (
            self._region_cache() if isinstance(executor, SerialExecutor) else None
        )
        cache_start = cache_counter_snapshot(op_cache, region_cache)
        # Remote executors expose lifetime counters; snapshot them so a run
        # on a reused executor (e.g. across sweep shards) reports deltas.
        collect_remote = getattr(executor, "runtime_counters", None)
        remote_start = collect_remote() if callable(collect_remote) else None
        # Fault injection (chaos runs): snapshot the plan's fired total so
        # the stats report only faults injected during *this* run.
        from repro.runtime.faults import get_fault_plan

        fault_plan = get_fault_plan()
        faults_start = fault_plan.total_fired if fault_plan is not None else 0

        def _live_cache_rates() -> Dict[str, float]:
            """Cumulative op/region cache hit rates so far this run.

            Serial runs read the in-process caches; parallel/remote runs fall
            back to the executor's ``runtime_counters()`` worker totals.
            Keys are omitted while a cache has seen no lookups yet, so
            progress lines only show rates that mean something.
            """
            rates: Dict[str, float] = {}
            if op_cache is not None:
                hits, misses = op_cache.snapshot_counters()
                hits -= cache_start.get("op_cache_hits", 0)
                misses -= cache_start.get("op_cache_misses", 0)
                if hits + misses:
                    rates["op_cache_hit_rate"] = hits / (hits + misses)
            if region_cache is not None:
                hits, misses = region_cache.snapshot_counters()
                hits -= cache_start.get("region_cache_hits", 0)
                misses -= cache_start.get("region_cache_misses", 0)
                if hits + misses:
                    rates["region_cache_hit_rate"] = hits / (hits + misses)
            if not rates and remote_start is not None:
                now = collect_remote()
                for prefix in ("op_cache", "region_cache"):
                    hits = now.get(f"{prefix}_hits", 0) - remote_start.get(
                        f"{prefix}_hits", 0
                    )
                    misses = now.get(f"{prefix}_misses", 0) - remote_start.get(
                        f"{prefix}_misses", 0
                    )
                    if hits + misses:
                        rates[f"{prefix}_hit_rate"] = hits / (hits + misses)
            return rates

        history: List[TrialMetrics] = []
        proposals_log: List[ParameterValues] = []
        best_metrics: Optional[TrialMetrics] = None
        best_params: Optional[ParameterValues] = None
        best_curve: List[float] = []
        pareto = ParetoFront()

        batched = BatchedOptimizer(self.optimizer, self.space)
        fingerprint = problem_fingerprint(self.problem, self.evaluator, self.space)

        def _absorb(
            trial_index: int,
            params: ParameterValues,
            metrics: TrialMetrics,
            replay: bool = False,
        ) -> None:
            """Fold one completed trial into history/best/Pareto state."""
            nonlocal best_metrics, best_params
            history.append(metrics)
            proposals_log.append(dict(params))
            if metrics.feasible and math.isfinite(metrics.objective_value):
                if best_metrics is None or metrics.aggregate_score > best_metrics.aggregate_score:
                    best_metrics = metrics
                    best_params = dict(params)
                    if not replay:
                        bus.emit(BEST_IMPROVED, trial_index, score=metrics.aggregate_score)
                mean_latency = _mean(metrics.per_workload_latency_ms.values())
                pareto.add(
                    (mean_latency, metrics.tdp_w, metrics.area_mm2),
                    payload={"params": dict(params), "score": metrics.aggregate_score},
                )
            best_curve.append(best_metrics.aggregate_score if best_metrics else 0.0)

        # -------------------------------------------------- resume
        if resume:
            if self.checkpoint is None:
                raise ValueError("resume=True requires a checkpoint manager")
            if self.checkpoint.exists():
                state = self.checkpoint.load(self.space)
                if state.fingerprint != fingerprint:
                    raise ValueError(
                        "checkpoint was written for a different problem/space "
                        f"(fingerprint {state.fingerprint} != {fingerprint})"
                    )
                restore_optimizer(self.optimizer, self.space, state.optimizer_state)
                for trial_index, (params, metrics) in enumerate(
                    zip(state.proposals, state.history)
                ):
                    batched.note_proposed(params)
                    _absorb(trial_index, params, metrics, replay=True)
                stats.resumed_trials = len(state.history)
                bus.emit(SEARCH_RESUMED, num_completed=stats.resumed_trials)

        seed_params = [self.space.from_config(config) for config in self.seed_configs]
        bus.emit(
            SEARCH_STARTED,
            num_trials=num_trials,
            batch_size=batch_size,
            executor=executor.name,
        )

        # -------------------------------------------------- batched loop
        completed = len(history)
        while completed < num_trials:
            if self.exchange is not None:
                external = self.exchange.poll_external_best()
                if external is not None:
                    params = None
                    if external.params:
                        try:
                            from repro.reporting.serialization import params_from_jsonable

                            params = params_from_jsonable(external.params, self.space)
                        except (KeyError, TypeError, ValueError):
                            params = None  # foreign space: use the score alone
                    hook = getattr(self.optimizer, "observe_external_best", None)
                    if callable(hook):
                        hook(external.objective, params)
                    bus.emit(
                        EXTERNAL_BEST,
                        completed,
                        shard=external.shard_id,
                        score=external.score,
                    )
            want = min(batch_size, num_trials - completed)
            batch: List[ParameterValues] = []
            while len(batch) < want and completed + len(batch) < len(seed_params):
                seed = seed_params[completed + len(batch)]
                batched.note_proposed(seed)
                batch.append(seed)
            if len(batch) < want:
                with tracer.span("ask_batch", category="search", size=want - len(batch)):
                    batch.extend(batched.ask_batch(want - len(batch)))
            bus.emit(BATCH_STARTED, size=len(batch), completed=completed)

            results: List[Optional[TrialMetrics]] = [None] * len(batch)
            keys: List[Optional[str]] = [None] * len(batch)
            miss_indices: List[int] = []
            if self.cache is not None:
                for i, params in enumerate(batch):
                    keys[i] = self.cache.key_for(params, fingerprint)
                    cached = self.cache.get(keys[i])
                    if cached is not None:
                        results[i] = cached
                        stats.cache_hits += 1
                        bus.emit(CACHE_HIT, completed + i)
                    else:
                        miss_indices.append(i)
            else:
                miss_indices = list(range(len(batch)))

            if miss_indices:
                with tracer.span(
                    "evaluate_batch",
                    category="search",
                    size=len(miss_indices),
                    executor=executor.name,
                ):
                    evaluated = executor.evaluate_batch(
                        self.evaluator, self.space, [batch[i] for i in miss_indices]
                    )
                for i, metrics in zip(miss_indices, evaluated):
                    results[i] = metrics
                    if self.cache is not None:
                        self.cache.put(keys[i], metrics)
                stats.trials_evaluated += len(miss_indices)
            stats.batches += 1

            # Tell + bookkeeping strictly in proposal order.
            cache_rates = _live_cache_rates()
            for offset, (params, metrics) in enumerate(zip(batch, results)):
                trial_index = completed + offset
                self.optimizer.tell(
                    params,
                    metrics.objective_value,
                    feasible=metrics.feasible and math.isfinite(metrics.objective_value),
                )
                _absorb(trial_index, params, metrics)
                bus.emit(
                    TRIAL_FINISHED,
                    trial_index,
                    score=metrics.aggregate_score,
                    best_score=best_curve[-1],
                    feasible=metrics.feasible,
                    **cache_rates,
                )
                if callback is not None:
                    callback(trial_index, metrics)
            completed += len(batch)

            if self.exchange is not None and best_metrics is not None:
                from repro.reporting.serialization import params_to_jsonable

                self.exchange.publish_best(
                    objective=best_metrics.objective_value,
                    score=best_metrics.aggregate_score,
                    params_jsonable=(
                        params_to_jsonable(best_params) if best_params is not None else None
                    ),
                    trials=completed,
                )

            if self.checkpoint is not None:
                saved = self.checkpoint.maybe_save(
                    CheckpointState(
                        fingerprint=fingerprint,
                        proposals=proposals_log,
                        history=history,
                        optimizer_state=optimizer_state_to_dict(self.optimizer),
                    )
                )
                if saved is not None:
                    bus.emit(CHECKPOINT_SAVED, num_completed=completed, path=str(saved))

        if self.checkpoint is not None and completed:
            saved = self.checkpoint.save(
                CheckpointState(
                    fingerprint=fingerprint,
                    proposals=proposals_log,
                    history=history,
                    optimizer_state=optimizer_state_to_dict(self.optimizer),
                )
            )
            bus.emit(CHECKPOINT_SAVED, num_completed=completed, path=str(saved))

        stats.elapsed_seconds = time.monotonic() - started_at
        stats.duplicates_avoided = batched.num_duplicates_avoided
        stage_now = getattr(self.evaluator, "stage_seconds", None) or {}
        stats.mapper_seconds = stage_now.get("mapper", 0.0) - stage_start.get("mapper", 0.0)
        stats.vector_seconds = stage_now.get("vector", 0.0) - stage_start.get("vector", 0.0)
        stats.fusion_seconds = stage_now.get("fusion", 0.0) - stage_start.get("fusion", 0.0)
        stats.eval_seconds = stage_now.get("evaluate", 0.0) - stage_start.get("evaluate", 0.0)
        # Engine echo: serial runs resolve it from this process's evaluator;
        # a parallel/remote executor's worker-reported echo overwrites it
        # below, so mismatched pools can't hide behind the parent's config.
        options = getattr(self.evaluator, "simulation_options", None)
        if options is not None:
            try:
                from repro.simulator.enginespec import EngineSpec

                stats.engine = str(EngineSpec.from_simulation_options(options))
            except Exception:
                pass  # informational only
        if region_cache is not None and region_cache.remote is not None:
            # Drain buffered cluster puts before the counter snapshot so the
            # run's last computed regions reach the service (and are counted).
            region_cache.flush_remote()
        for key, value in cache_counter_snapshot(op_cache, region_cache).items():
            setattr(stats, key, value - cache_start.get(key, 0))
        if remote_start is not None:
            remote_now = collect_remote()
            for key, value in remote_now.items():
                if key == "endpoint_stats":
                    stats.endpoint_stats = _endpoint_stats_delta(
                        value, remote_start.get(key) or {}
                    )
                elif key == "engine":
                    stats.engine = value  # config echo from the workers
                elif hasattr(stats, key):
                    setattr(stats, key, value - remote_start.get(key, 0))
        if self.exchange is not None:
            stats.exchange_published = self.exchange.published
            stats.exchange_adopted = self.exchange.adopted
        if fault_plan is not None:
            stats.faults_injected = fault_plan.total_fired - faults_start
        # Torn records quarantined while the attached stores loaded — the
        # crash-survival receipt of a resume-after-kill run.
        if self.cache is not None:
            stats.corrupt_records += self.cache.stats.corrupt_records
        if op_cache is not None:
            stats.corrupt_records += op_cache.stats.corrupt_records
        # Root span for the whole run, synthesized from the measured elapsed
        # time (no-op when tracing is off).  Recorded last so every child
        # span is already in the buffer when the trace file is written.
        tracer.record_span(
            "search",
            start_unix=started_unix,
            duration=stats.elapsed_seconds,
            category="search",
            num_trials=completed,
            batch_size=batch_size,
            executor=executor.name,
        )
        stats.spans_recorded = tracer.total_recorded - spans_start
        bus.emit(
            SEARCH_FINISHED,
            num_trials=completed,
            cache_hits=stats.cache_hits,
            op_cache_hits=stats.op_cache_hits,
            remote_retries=stats.remote_retries,
            remote_hedges=stats.remote_hedges,
            best_score=(
                best_metrics.aggregate_score if best_metrics is not None else float("nan")
            ),
        )

        return FASTSearchResult(
            problem=self.problem,
            best_params=best_params,
            best_config=best_metrics.config if best_metrics else None,
            best_metrics=best_metrics,
            history=history,
            proposals=proposals_log,
            best_score_curve=best_curve,
            pareto_front=pareto,
            runtime=stats,
        )

    # ------------------------------------------------------------------
    def _op_cache(self):
        """This process's shared op-cost cache, when the evaluator uses one."""
        options = getattr(self.evaluator, "simulation_options", None)
        if options is None or not getattr(options, "op_cache_enabled", False):
            return None
        from repro.runtime.opcache import get_op_cache

        return get_op_cache(getattr(options, "op_cache_path", None))

    def _region_cache(self):
        """This process's shared region-cost cache, when the evaluator uses one."""
        options = getattr(self.evaluator, "simulation_options", None)
        if options is None or not getattr(options, "region_cache_enabled", False):
            return None
        from repro.runtime.opcache import get_region_cache

        return get_region_cache(getattr(options, "region_store_path", None))


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _endpoint_stats_delta(
    now: Dict[str, Dict[str, float]], before: Dict[str, Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Per-endpoint counter deltas (state flags keep their current value)."""
    delta: Dict[str, Dict[str, float]] = {}
    for url, counters in now.items():
        prior = before.get(url) or {}
        delta[url] = {
            key: value if key == "blacklisted" else value - prior.get(key, 0)
            for key, value in counters.items()
        }
    return delta
