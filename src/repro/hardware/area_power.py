"""Analytical area and power models for datapath configurations.

The paper uses analytical models correlated to production designs on an
industry sub-10nm process.  We use the same modelling structure with
technology coefficients chosen so a modeled TPU-v3 (123 TFLOPS bf16, 900 GB/s
HBM, 32 MiB of Global Memory) lands at a realistic area and TDP; because
every comparison in the evaluation is *relative* to the modeled TPU-v3 on the
same process (Figures 10, 12, Tables 4-6), only the scaling behaviour of the
model matters:

* MAC and VPU area/energy scale linearly with unit count.
* SRAM access energy grows with macro capacity (~capacity**0.25), which is
  what makes large L1 scratchpads TDP-expensive, one of the effects the
  paper's ablation (Table 6, 32 KiB vs 8 KiB L1) relies on.
* TDP is computed as "power virus" power: every component accessed at 100%
  utilization every cycle (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hardware.datapath import DatapathConfig, KIB, L2Config, MIB

__all__ = ["TechnologyModel", "AreaPowerBreakdown", "AreaPowerModel", "DEFAULT_TECHNOLOGY"]


@dataclass(frozen=True)
class TechnologyModel:
    """Process-technology coefficients for the analytical model.

    All energies are in picojoules, areas in mm^2, powers in watts.
    """

    # Compute units.
    mac_area_mm2: float = 800e-6
    mac_energy_pj: float = 0.55
    vpu_lane_area_mm2: float = 3500e-6
    vpu_lane_energy_pj: float = 1.2

    # SRAM.  Access energy per byte scales with macro capacity as
    # ``base * (capacity_kib / 32) ** exponent``.
    sram_area_mm2_per_mib: float = 0.45
    sram_access_energy_pj_per_byte: float = 0.30
    sram_energy_capacity_exponent: float = 0.30
    sram_leakage_w_per_mib: float = 0.02

    # Network-on-chip and per-PE control overhead.
    pe_overhead_area_mm2: float = 0.05
    noc_energy_pj_per_byte: float = 0.1

    # Fixed chip overhead: host interface, PCIe, clocking, misc control.
    fixed_area_mm2: float = 55.0
    fixed_power_w: float = 18.0

    def sram_energy_per_byte(self, macro_kib: float) -> float:
        """Access energy per byte for an SRAM macro of ``macro_kib`` KiB."""
        macro_kib = max(macro_kib, 1.0)
        return self.sram_access_energy_pj_per_byte * (macro_kib / 32.0) ** (
            self.sram_energy_capacity_exponent
        )


DEFAULT_TECHNOLOGY = TechnologyModel()


@dataclass(frozen=True)
class AreaPowerBreakdown:
    """Per-component area (mm^2) and TDP (W) of a datapath configuration."""

    mac_area_mm2: float
    vpu_area_mm2: float
    sram_area_mm2: float
    dram_phy_area_mm2: float
    other_area_mm2: float
    mac_power_w: float
    vpu_power_w: float
    l1_power_w: float
    l2_power_w: float
    global_buffer_power_w: float
    dram_power_w: float
    leakage_power_w: float
    other_power_w: float

    @property
    def total_area_mm2(self) -> float:
        """Total die area."""
        return (
            self.mac_area_mm2
            + self.vpu_area_mm2
            + self.sram_area_mm2
            + self.dram_phy_area_mm2
            + self.other_area_mm2
        )

    @property
    def total_tdp_w(self) -> float:
        """Thermal design power (power-virus power)."""
        return (
            self.mac_power_w
            + self.vpu_power_w
            + self.l1_power_w
            + self.l2_power_w
            + self.global_buffer_power_w
            + self.dram_power_w
            + self.leakage_power_w
            + self.other_power_w
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary including totals."""
        result = {
            "mac_area_mm2": self.mac_area_mm2,
            "vpu_area_mm2": self.vpu_area_mm2,
            "sram_area_mm2": self.sram_area_mm2,
            "dram_phy_area_mm2": self.dram_phy_area_mm2,
            "other_area_mm2": self.other_area_mm2,
            "total_area_mm2": self.total_area_mm2,
            "mac_power_w": self.mac_power_w,
            "vpu_power_w": self.vpu_power_w,
            "l1_power_w": self.l1_power_w,
            "l2_power_w": self.l2_power_w,
            "global_buffer_power_w": self.global_buffer_power_w,
            "dram_power_w": self.dram_power_w,
            "leakage_power_w": self.leakage_power_w,
            "other_power_w": self.other_power_w,
            "total_tdp_w": self.total_tdp_w,
        }
        return result


class AreaPowerModel:
    """Computes area and TDP for a :class:`DatapathConfig`."""

    def __init__(self, technology: TechnologyModel = DEFAULT_TECHNOLOGY) -> None:
        self.technology = technology

    # ------------------------------------------------------------------
    def evaluate(self, config: DatapathConfig) -> AreaPowerBreakdown:
        """Compute the full area/power breakdown for ``config``."""
        tech = self.technology
        clock_hz = config.clock_ghz * 1e9

        # ----- Area -----------------------------------------------------
        mac_area = config.total_macs * tech.mac_area_mm2
        vpu_area = config.total_vpu_lanes * tech.vpu_lane_area_mm2
        sram_area = (config.total_sram_bytes / MIB) * tech.sram_area_mm2_per_mib
        dram_phy_area = (
            config.gddr6_channels * config.memory_technology.phy_area_mm2_per_channel
        )
        other_area = tech.fixed_area_mm2 + config.total_pes * tech.pe_overhead_area_mm2

        # ----- Power (power virus: 100% utilization of every component) --
        mac_power = config.total_macs * clock_hz * tech.mac_energy_pj * 1e-12
        vpu_power = config.total_vpu_lanes * clock_hz * tech.vpu_lane_energy_pj * 1e-12

        # L1: the power-virus assumption is that every L1 buffer is accessed
        # at its full port bandwidth every cycle.  Ports are provisioned for
        # the worst-case dataflow, in which every MAC in the systolic array
        # can demand fresh input and weight operands each cycle and the
        # output edge drains one vector per cycle — this is what makes large
        # L1 scratchpads (and very large systolic arrays) TDP-expensive.
        l1_macro_kib = (
            config.l1_input_buffer_kib
            + config.l1_weight_buffer_kib
            + config.l1_output_buffer_kib
        )
        l1_energy = tech.sram_energy_per_byte(l1_macro_kib)
        l1_bytes_per_cycle_per_pe = 2.0 * (
            2.0 * config.systolic_array_x * config.systolic_array_y
            + config.systolic_array_y
        )
        l1_power = (
            config.total_pes
            * l1_bytes_per_cycle_per_pe
            * clock_hz
            * l1_energy
            * 1e-12
        )

        # L2 (when enabled) is charged at the same worst-case rate with its
        # (larger) macro energy — this is why enabling L2 raises TDP.
        if config.l2_buffer_config is L2Config.DISABLED:
            l2_power = 0.0
        else:
            l2_macro_kib = config.l2_bytes_per_pe / KIB
            l2_energy = tech.sram_energy_per_byte(l2_macro_kib)
            l2_power = (
                config.total_pes
                * l1_bytes_per_cycle_per_pe
                * clock_hz
                * l2_energy
                * 1e-12
            )

        # Global Memory: worst case it simultaneously absorbs the full DRAM
        # bandwidth and feeds the PE array.
        if config.l3_global_buffer_mib > 0:
            gm_energy = tech.sram_energy_per_byte(config.l3_global_buffer_mib * 1024.0)
            pe_side_bytes_per_cycle = min(
                config.num_pes * 2.0 * config.systolic_array_x, 8192.0
            )
            gm_bytes_per_s = (
                config.dram_bandwidth_bytes_per_s + pe_side_bytes_per_cycle * clock_hz
            ) * config.num_cores
            gm_power = gm_bytes_per_s * gm_energy * 1e-12
            noc_power = gm_bytes_per_s * tech.noc_energy_pj_per_byte * 1e-12
        else:
            gm_power = 0.0
            noc_power = (
                config.dram_bandwidth_bytes_per_s * tech.noc_energy_pj_per_byte * 1e-12
            )

        dram_power = (
            config.dram_bandwidth_bytes_per_s
            * config.memory_technology.energy_per_byte_pj
            * 1e-12
            + config.gddr6_channels * config.memory_technology.static_power_w_per_channel
        )

        leakage_power = (config.total_sram_bytes / MIB) * tech.sram_leakage_w_per_mib
        other_power = tech.fixed_power_w + noc_power

        return AreaPowerBreakdown(
            mac_area_mm2=mac_area,
            vpu_area_mm2=vpu_area,
            sram_area_mm2=sram_area,
            dram_phy_area_mm2=dram_phy_area,
            other_area_mm2=other_area,
            mac_power_w=mac_power,
            vpu_power_w=vpu_power,
            l1_power_w=l1_power,
            l2_power_w=l2_power,
            global_buffer_power_w=gm_power,
            dram_power_w=dram_power,
            leakage_power_w=leakage_power,
            other_power_w=other_power,
        )

    def area_mm2(self, config: DatapathConfig) -> float:
        """Total die area for ``config``."""
        return self.evaluate(config).total_area_mm2

    def tdp_w(self, config: DatapathConfig) -> float:
        """Thermal design power for ``config``."""
        return self.evaluate(config).total_tdp_w
