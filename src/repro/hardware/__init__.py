"""Hardware datapath configurations, cost models, and the search space."""

from repro.hardware.area_power import (
    DEFAULT_TECHNOLOGY,
    AreaPowerBreakdown,
    AreaPowerModel,
    TechnologyModel,
)
from repro.hardware.datapath import (
    KIB,
    MIB,
    BufferConfig,
    DatapathConfig,
    DatapathValidationError,
    L2Config,
    MemoryTechnology,
)
from repro.hardware.memory import MemoryHierarchy, MemoryLevel, MemoryLevelName
from repro.hardware.search_space import DatapathSearchSpace, ParameterSpec, ParameterValues
from repro.hardware.tpu import (
    TPU_V3,
    TPU_V3_SINGLE_CORE,
    EvaluationConstraints,
    default_constraints,
)

__all__ = [
    "AreaPowerBreakdown",
    "AreaPowerModel",
    "BufferConfig",
    "DEFAULT_TECHNOLOGY",
    "DatapathConfig",
    "DatapathSearchSpace",
    "DatapathValidationError",
    "EvaluationConstraints",
    "KIB",
    "L2Config",
    "MIB",
    "MemoryHierarchy",
    "MemoryLevel",
    "MemoryLevelName",
    "MemoryTechnology",
    "ParameterSpec",
    "ParameterValues",
    "TPU_V3",
    "TPU_V3_SINGLE_CORE",
    "TechnologyModel",
    "default_constraints",
]
