"""The FAST datapath search space (Table 3) and its encodings.

Each hyperparameter is modeled as a categorical choice over an explicit list
of values (power-of-two integer ranges or enums).  The space provides the
three operations the optimizers need: uniform sampling, mutation of a single
parameter, and encoding of a configuration into a normalized numeric vector
for surrogate models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.datapath import BufferConfig, DatapathConfig, L2Config, MemoryTechnology

__all__ = ["ParameterSpec", "DatapathSearchSpace", "ParameterValues"]

ParameterValues = Dict[str, object]


@dataclass(frozen=True)
class ParameterSpec:
    """A single categorical search parameter."""

    name: str
    choices: Tuple[object, ...]

    @property
    def cardinality(self) -> int:
        """Number of possible values."""
        return len(self.choices)

    def index_of(self, value: object) -> int:
        """Index of a value within the choice list."""
        return self.choices.index(value)


def _pow2_range(lo: int, hi: int) -> Tuple[int, ...]:
    values = []
    v = lo
    while v <= hi:
        values.append(v)
        v *= 2
    return tuple(values)


class DatapathSearchSpace:
    """The joint datapath + compiler-flag search space of Table 3.

    The scheduling mapspace (loop orders and tile sizes explored per op by
    the mapper) and the fusion decision space (explored by the ILP) are not
    enumerated here — they are resolved downstream per trial, exactly as in
    the paper where Vizier proposes the datapath and constrains the schedule
    mapspace while Timeloop and the fusion ILP resolve the rest.
    """

    def __init__(
        self,
        memory_technology: MemoryTechnology = MemoryTechnology.GDDR6,
        clock_ghz: float = 0.94,
        allow_two_pass_softmax: bool = True,
        max_pes: int = 256,
        max_systolic_dim: int = 256,
    ) -> None:
        self.memory_technology = memory_technology
        self.clock_ghz = clock_ghz
        self._specs: List[ParameterSpec] = [
            ParameterSpec("pes_x_dim", _pow2_range(1, max_pes)),
            ParameterSpec("pes_y_dim", _pow2_range(1, max_pes)),
            ParameterSpec("systolic_array_x", _pow2_range(1, max_systolic_dim)),
            ParameterSpec("systolic_array_y", _pow2_range(1, max_systolic_dim)),
            ParameterSpec("vector_unit_multiplier", _pow2_range(1, 16)),
            ParameterSpec("l1_buffer_config", (BufferConfig.PRIVATE, BufferConfig.SHARED)),
            ParameterSpec("l1_input_buffer_kib", _pow2_range(1, 1024)),
            ParameterSpec("l1_weight_buffer_kib", _pow2_range(1, 1024)),
            ParameterSpec("l1_output_buffer_kib", _pow2_range(1, 1024)),
            ParameterSpec(
                "l2_buffer_config", (L2Config.DISABLED, L2Config.PRIVATE, L2Config.SHARED)
            ),
            ParameterSpec("l2_input_buffer_multiplier", _pow2_range(1, 128)),
            ParameterSpec("l2_weight_buffer_multiplier", _pow2_range(1, 128)),
            ParameterSpec("l2_output_buffer_multiplier", _pow2_range(1, 128)),
            ParameterSpec("l3_global_buffer_mib", (0,) + _pow2_range(1, 256)),
            ParameterSpec("gddr6_channels", _pow2_range(1, 8)),
            ParameterSpec("native_batch_size", _pow2_range(1, 256)),
        ]
        if allow_two_pass_softmax:
            self._specs.append(ParameterSpec("use_two_pass_softmax", (False, True)))

    # ------------------------------------------------------------------
    @property
    def specs(self) -> List[ParameterSpec]:
        """Parameter specifications, in a stable order."""
        return list(self._specs)

    @property
    def parameter_names(self) -> List[str]:
        """Names of all search parameters."""
        return [spec.name for spec in self._specs]

    def spec(self, name: str) -> ParameterSpec:
        """Look up a parameter spec by name."""
        for spec in self._specs:
            if spec.name == name:
                return spec
        raise KeyError(name)

    @property
    def log10_size(self) -> float:
        """log10 of the number of datapath configurations in the space."""
        return sum(math.log10(spec.cardinality) for spec in self._specs)

    # ------------------------------------------------------------------
    # Sampling and perturbation
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> ParameterValues:
        """Draw a uniform random configuration."""
        return {
            spec.name: spec.choices[int(rng.integers(spec.cardinality))]
            for spec in self._specs
        }

    def mutate(
        self,
        params: ParameterValues,
        rng: np.random.Generator,
        num_mutations: int = 1,
    ) -> ParameterValues:
        """Return a copy with ``num_mutations`` parameters re-sampled.

        Integer parameters move to an adjacent choice with high probability
        (local move) and to a uniform random choice otherwise, which is the
        behaviour evolutionary optimizers rely on for fine-tuning.
        """
        mutated = dict(params)
        indices = rng.choice(len(self._specs), size=min(num_mutations, len(self._specs)), replace=False)
        for idx in indices:
            spec = self._specs[int(idx)]
            current = spec.index_of(mutated[spec.name])
            if spec.cardinality == 1:
                continue
            if rng.random() < 0.7 and spec.cardinality > 2:
                step = int(rng.choice([-1, 1]))
                new_index = int(np.clip(current + step, 0, spec.cardinality - 1))
                if new_index == current:
                    new_index = int(np.clip(current - step, 0, spec.cardinality - 1))
            else:
                new_index = int(rng.integers(spec.cardinality))
            mutated[spec.name] = spec.choices[new_index]
        return mutated

    # ------------------------------------------------------------------
    # Encodings
    # ------------------------------------------------------------------
    def encode(self, params: ParameterValues) -> np.ndarray:
        """Encode a configuration as a vector in [0, 1]^d for surrogates."""
        encoded = np.empty(len(self._specs), dtype=float)
        for i, spec in enumerate(self._specs):
            index = spec.index_of(params[spec.name])
            encoded[i] = index / max(spec.cardinality - 1, 1)
        return encoded

    def decode(self, vector: Sequence[float]) -> ParameterValues:
        """Inverse of :meth:`encode` (rounds to the nearest choice)."""
        params: ParameterValues = {}
        for i, spec in enumerate(self._specs):
            index = int(round(float(vector[i]) * max(spec.cardinality - 1, 1)))
            index = int(np.clip(index, 0, spec.cardinality - 1))
            params[spec.name] = spec.choices[index]
        return params

    # ------------------------------------------------------------------
    # Conversion to a datapath configuration
    # ------------------------------------------------------------------
    def to_config(self, params: ParameterValues, num_cores: int = 1) -> DatapathConfig:
        """Build a :class:`DatapathConfig` from a parameter assignment."""
        return DatapathConfig(
            pes_x_dim=params["pes_x_dim"],
            pes_y_dim=params["pes_y_dim"],
            systolic_array_x=params["systolic_array_x"],
            systolic_array_y=params["systolic_array_y"],
            vector_unit_multiplier=params["vector_unit_multiplier"],
            l1_buffer_config=params["l1_buffer_config"],
            l1_input_buffer_kib=params["l1_input_buffer_kib"],
            l1_weight_buffer_kib=params["l1_weight_buffer_kib"],
            l1_output_buffer_kib=params["l1_output_buffer_kib"],
            l2_buffer_config=params["l2_buffer_config"],
            l2_input_buffer_multiplier=params["l2_input_buffer_multiplier"],
            l2_weight_buffer_multiplier=params["l2_weight_buffer_multiplier"],
            l2_output_buffer_multiplier=params["l2_output_buffer_multiplier"],
            l3_global_buffer_mib=params["l3_global_buffer_mib"],
            gddr6_channels=params["gddr6_channels"],
            native_batch_size=params["native_batch_size"],
            memory_technology=self.memory_technology,
            clock_ghz=self.clock_ghz,
            num_cores=num_cores,
            use_two_pass_softmax=bool(params.get("use_two_pass_softmax", False)),
            enable_fast_fusion=True,
        )

    def from_config(self, config: DatapathConfig) -> ParameterValues:
        """Extract the search parameters from an existing configuration."""
        params: ParameterValues = {
            "pes_x_dim": config.pes_x_dim,
            "pes_y_dim": config.pes_y_dim,
            "systolic_array_x": config.systolic_array_x,
            "systolic_array_y": config.systolic_array_y,
            "vector_unit_multiplier": config.vector_unit_multiplier,
            "l1_buffer_config": config.l1_buffer_config,
            "l1_input_buffer_kib": config.l1_input_buffer_kib,
            "l1_weight_buffer_kib": config.l1_weight_buffer_kib,
            "l1_output_buffer_kib": config.l1_output_buffer_kib,
            "l2_buffer_config": config.l2_buffer_config,
            "l2_input_buffer_multiplier": config.l2_input_buffer_multiplier,
            "l2_weight_buffer_multiplier": config.l2_weight_buffer_multiplier,
            "l2_output_buffer_multiplier": config.l2_output_buffer_multiplier,
            "l3_global_buffer_mib": config.l3_global_buffer_mib,
            "gddr6_channels": config.gddr6_channels,
            "native_batch_size": config.native_batch_size,
        }
        if any(spec.name == "use_two_pass_softmax" for spec in self._specs):
            params["use_two_pass_softmax"] = config.use_two_pass_softmax
        return params
