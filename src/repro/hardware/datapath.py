"""Accelerator datapath configuration (the paper's Table 3 search space).

A datapath is a grid of processing elements (PEs) connected by a mesh
network.  Each PE contains a systolic array that performs a matrix-vector
multiply every cycle plus a Vector Processing Unit (VPU) for non-MAC vector
operations.  The memory hierarchy has per-PE L1 scratchpads (private or
shared), optional L2 buffers, an optional shared Global Memory, and a GDDR6
(or HBM) DRAM interface.

Setting the systolic array dimensions to 1 models scalar or vector PEs;
setting ``l1_buffer_config`` to ``SHARED`` with no L2 and a large Global
Memory models the TPU family; per-PE private buffers model Eyeriss-style
designs — the template is an approximate superset of popular accelerator
families, as described in Section 5.4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Tuple

__all__ = [
    "BufferConfig",
    "L2Config",
    "MemoryTechnology",
    "DatapathConfig",
    "DatapathValidationError",
    "KIB",
    "MIB",
]

KIB = 1024
MIB = 1024 * 1024


class BufferConfig(Enum):
    """L1 buffer sharing mode."""

    PRIVATE = "private"
    SHARED = "shared"


class L2Config(Enum):
    """L2 buffer mode."""

    DISABLED = "disabled"
    PRIVATE = "private"
    SHARED = "shared"


class MemoryTechnology(Enum):
    """Off-chip memory technology; determines per-channel bandwidth and energy."""

    GDDR6 = "gddr6"
    HBM2 = "hbm2"

    @property
    def bandwidth_per_channel_gbps(self) -> float:
        """Peak bandwidth of a single channel in GB/s."""
        return {MemoryTechnology.GDDR6: 56.0, MemoryTechnology.HBM2: 450.0}[self]

    @property
    def energy_per_byte_pj(self) -> float:
        """Access energy in pJ per byte (device + PHY)."""
        return {MemoryTechnology.GDDR6: 60.0, MemoryTechnology.HBM2: 31.0}[self]

    @property
    def phy_area_mm2_per_channel(self) -> float:
        """PHY + controller area per channel in mm^2."""
        return {MemoryTechnology.GDDR6: 6.0, MemoryTechnology.HBM2: 20.0}[self]

    @property
    def static_power_w_per_channel(self) -> float:
        """Idle/static power per channel in watts."""
        return {MemoryTechnology.GDDR6: 1.5, MemoryTechnology.HBM2: 4.0}[self]


class DatapathValidationError(ValueError):
    """Raised when a datapath configuration is structurally invalid."""


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class DatapathConfig:
    """A point in the Table 3 datapath search space.

    Attributes:
        pes_x_dim / pes_y_dim: PE grid dimensions (1..256, powers of two).
        systolic_array_x / systolic_array_y: Per-PE systolic array dimensions.
            The x dimension is the reduction (dot-product) dimension, the y
            dimension holds output features.
        vector_unit_multiplier: VPU lane count per PE as a multiple of
            ``systolic_array_x`` (1..16).
        l1_buffer_config: Private per-PE or shared L1 scratchpads.
        l1_input_buffer_kib / l1_weight_buffer_kib / l1_output_buffer_kib:
            L1 scratchpad capacities per PE, in KiB (1..1024).
        l2_buffer_config: Disabled / private / shared L2.
        l2_*_multiplier: L2 capacity as a multiple of the corresponding L1
            buffer (1..128).
        l3_global_buffer_mib: Shared Global Memory capacity in MiB (0..256).
        gddr6_channels: DRAM channel count (1..8).
        native_batch_size: Batch size the design is optimized to serve.
        memory_technology: Off-chip memory type (GDDR6 default; HBM2 models
            the TPU-v3 baseline).
        clock_ghz: Core clock frequency.
        num_cores: Number of independent cores (TPU-v3 is dual-core; FAST
            designs are single-core).
        use_two_pass_softmax: Enable the two-pass softmax transform
            (Section 5.6).
        enable_fast_fusion: Enable the FAST fusion ILP pass (Section 5.5).
    """

    pes_x_dim: int = 8
    pes_y_dim: int = 8
    systolic_array_x: int = 32
    systolic_array_y: int = 32
    vector_unit_multiplier: int = 1
    l1_buffer_config: BufferConfig = BufferConfig.SHARED
    l1_input_buffer_kib: int = 32
    l1_weight_buffer_kib: int = 32
    l1_output_buffer_kib: int = 32
    l2_buffer_config: L2Config = L2Config.DISABLED
    l2_input_buffer_multiplier: int = 1
    l2_weight_buffer_multiplier: int = 1
    l2_output_buffer_multiplier: int = 1
    l3_global_buffer_mib: int = 16
    gddr6_channels: int = 8
    native_batch_size: int = 8
    memory_technology: MemoryTechnology = MemoryTechnology.GDDR6
    clock_ghz: float = 0.94
    num_cores: int = 1
    use_two_pass_softmax: bool = False
    enable_fast_fusion: bool = True

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        pow2_fields = {
            "pes_x_dim": (1, 256),
            "pes_y_dim": (1, 256),
            "systolic_array_x": (1, 256),
            "systolic_array_y": (1, 256),
            "vector_unit_multiplier": (1, 16),
            "l1_input_buffer_kib": (1, 1024),
            "l1_weight_buffer_kib": (1, 1024),
            "l1_output_buffer_kib": (1, 1024),
            "l2_input_buffer_multiplier": (1, 128),
            "l2_weight_buffer_multiplier": (1, 128),
            "l2_output_buffer_multiplier": (1, 128),
            "gddr6_channels": (1, 8),
            "native_batch_size": (1, 256),
        }
        for name, (lo, hi) in pow2_fields.items():
            value = getattr(self, name)
            if not isinstance(value, int) or not _is_power_of_two(value) or not lo <= value <= hi:
                raise DatapathValidationError(
                    f"{name} must be a power of two in [{lo}, {hi}], got {value!r}"
                )
        if self.l3_global_buffer_mib != 0 and not _is_power_of_two(self.l3_global_buffer_mib):
            raise DatapathValidationError(
                f"l3_global_buffer_mib must be 0 or a power of two, got {self.l3_global_buffer_mib}"
            )
        if not 0 <= self.l3_global_buffer_mib <= 256:
            raise DatapathValidationError("l3_global_buffer_mib must be in [0, 256]")
        if self.clock_ghz <= 0:
            raise DatapathValidationError("clock_ghz must be positive")
        if self.num_cores < 1:
            raise DatapathValidationError("num_cores must be >= 1")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        """PEs per core."""
        return self.pes_x_dim * self.pes_y_dim

    @property
    def total_pes(self) -> int:
        """PEs across all cores."""
        return self.num_pes * self.num_cores

    @property
    def macs_per_pe(self) -> int:
        """Multiply-accumulate units in one PE's systolic array."""
        return self.systolic_array_x * self.systolic_array_y

    @property
    def total_macs(self) -> int:
        """MAC units across the whole chip."""
        return self.macs_per_pe * self.total_pes

    @property
    def vpu_lanes_per_pe(self) -> int:
        """Vector unit lanes in one PE."""
        return self.vector_unit_multiplier * self.systolic_array_x

    @property
    def total_vpu_lanes(self) -> int:
        """Vector lanes across the whole chip."""
        return self.vpu_lanes_per_pe * self.total_pes

    @property
    def peak_matrix_flops(self) -> float:
        """Peak systolic-array FLOP/s (2 FLOPs per MAC per cycle)."""
        return 2.0 * self.total_macs * self.clock_ghz * 1e9

    @property
    def peak_vector_flops(self) -> float:
        """Peak VPU FLOP/s (one op per lane per cycle)."""
        return float(self.total_vpu_lanes) * self.clock_ghz * 1e9

    @property
    def dram_bandwidth_bytes_per_s(self) -> float:
        """Aggregate off-chip bandwidth in bytes/s."""
        return (
            self.gddr6_channels
            * self.memory_technology.bandwidth_per_channel_gbps
            * 1e9
        )

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Off-chip bandwidth expressed in bytes per core clock cycle."""
        return self.dram_bandwidth_bytes_per_s / (self.clock_ghz * 1e9)

    @property
    def l1_bytes_per_pe(self) -> int:
        """Total L1 capacity attached to one PE (input + weight + output)."""
        return (
            self.l1_input_buffer_kib
            + self.l1_weight_buffer_kib
            + self.l1_output_buffer_kib
        ) * KIB

    @property
    def l1_total_bytes(self) -> int:
        """Total L1 capacity across the chip."""
        return self.l1_bytes_per_pe * self.total_pes

    @property
    def l2_bytes_per_pe(self) -> int:
        """Total L2 capacity attached to one PE; 0 when L2 is disabled."""
        if self.l2_buffer_config is L2Config.DISABLED:
            return 0
        return (
            self.l1_input_buffer_kib * self.l2_input_buffer_multiplier
            + self.l1_weight_buffer_kib * self.l2_weight_buffer_multiplier
            + self.l1_output_buffer_kib * self.l2_output_buffer_multiplier
        ) * KIB

    @property
    def l2_total_bytes(self) -> int:
        """Total L2 capacity across the chip."""
        return self.l2_bytes_per_pe * self.total_pes

    @property
    def global_buffer_bytes(self) -> int:
        """Global Memory capacity per core in bytes."""
        return self.l3_global_buffer_mib * MIB

    @property
    def total_global_buffer_bytes(self) -> int:
        """Global Memory capacity across all cores."""
        return self.global_buffer_bytes * self.num_cores

    @property
    def total_sram_bytes(self) -> int:
        """All on-chip SRAM (L1 + L2 + Global Memory)."""
        return self.l1_total_bytes + self.l2_total_bytes + self.total_global_buffer_bytes

    @property
    def operational_intensity_ridgepoint(self) -> float:
        """FLOPS/byte at which the design transitions from memory- to compute-bound."""
        return self.peak_matrix_flops / self.dram_bandwidth_bytes_per_s

    @property
    def onchip_blocking_bytes(self) -> int:
        """On-chip capacity usable by the scheduler for blocking (L1 + L2 + GM)."""
        return self.l1_total_bytes + self.l2_total_bytes + self.global_buffer_bytes

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def evolve(self, **changes) -> "DatapathConfig":
        """Return a copy with the given fields replaced (used by ablations)."""
        return replace(self, **changes)

    def describe(self) -> Dict[str, object]:
        """Summary dictionary used by reports and Table 5 regeneration."""
        return {
            "num_cores": self.num_cores,
            "num_pes": self.num_pes,
            "systolic_array": f"{self.systolic_array_x}x{self.systolic_array_y}",
            "vpu_lanes_per_pe": self.vpu_lanes_per_pe,
            "peak_tflops": self.peak_matrix_flops / 1e12,
            "peak_bandwidth_gbps": self.dram_bandwidth_bytes_per_s / 1e9,
            "l1_per_pe_kib": self.l1_bytes_per_pe // KIB,
            "l1_config": self.l1_buffer_config.value,
            "l2_config": self.l2_buffer_config.value,
            "global_buffer_mib": self.l3_global_buffer_mib,
            "native_batch_size": self.native_batch_size,
            "ridgepoint_flops_per_byte": self.operational_intensity_ridgepoint,
        }
