"""Mesh network-on-chip (NoC) model for the PE grid.

Figure 7 of the paper connects the PEs with a mesh on-chip network.  The
headline performance model treats on-chip operand distribution as free (the
paper's simulator folds it into the per-level scratchpad access costs), but
the NoC still matters for two questions the search keeps running into:

* how much *area and power* the interconnect adds as the PE grid grows, and
* whether operand broadcast / partial-sum reduction across a large grid can
  itself become a bandwidth ceiling for very small systolic arrays.

:class:`MeshNocModel` answers both with standard analytical formulas for a
2-D mesh: per-router/link area and energy, bisection bandwidth, and cycle
estimates for the unicast / broadcast / reduction traffic patterns that the
weight-stationary and output-stationary dataflows generate.  It is used by
the analysis and reporting layers and by an ablation benchmark; it is kept
out of the calibrated headline cost model so the Table 5 / Figure 9-10
numbers remain those of the paper's modelling approach.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.hardware.datapath import DatapathConfig

__all__ = ["NocParameters", "NocCharacteristics", "MeshNocModel"]


@dataclass(frozen=True)
class NocParameters:
    """Technology coefficients for the mesh interconnect.

    Defaults follow the same sub-10nm technology assumptions as
    :class:`~repro.hardware.area_power.TechnologyModel`.
    """

    link_width_bytes: int = 64
    router_area_mm2: float = 0.012
    link_area_mm2_per_byte: float = 0.0002
    router_energy_pj_per_byte: float = 0.08
    link_energy_pj_per_byte_per_hop: float = 0.04
    router_static_power_w: float = 0.004

    def __post_init__(self) -> None:
        if self.link_width_bytes <= 0:
            raise ValueError("link_width_bytes must be positive")


@dataclass(frozen=True)
class NocCharacteristics:
    """Derived NoC metrics for one datapath configuration."""

    mesh_x: int
    mesh_y: int
    num_routers: int
    num_links: int
    link_width_bytes: int
    bisection_bandwidth_bytes_per_cycle: float
    average_hops: float
    area_mm2: float
    static_power_w: float
    energy_pj_per_byte: float

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for reports."""
        return {
            "mesh_x": self.mesh_x,
            "mesh_y": self.mesh_y,
            "num_routers": self.num_routers,
            "num_links": self.num_links,
            "link_width_bytes": self.link_width_bytes,
            "bisection_bandwidth_bytes_per_cycle": self.bisection_bandwidth_bytes_per_cycle,
            "average_hops": self.average_hops,
            "area_mm2": self.area_mm2,
            "static_power_w": self.static_power_w,
            "energy_pj_per_byte": self.energy_pj_per_byte,
        }


class MeshNocModel:
    """Analytical model of the 2-D mesh connecting the PE grid of one core."""

    def __init__(self, parameters: NocParameters = NocParameters()) -> None:
        self.parameters = parameters

    # ------------------------------------------------------------------
    def characterize(self, config: DatapathConfig) -> NocCharacteristics:
        """Compute mesh topology, bandwidth, area, and power for ``config``."""
        p = self.parameters
        mesh_x, mesh_y = config.pes_x_dim, config.pes_y_dim
        num_routers = mesh_x * mesh_y
        # Bidirectional mesh links between adjacent routers.
        num_links = mesh_x * (mesh_y - 1) + mesh_y * (mesh_x - 1)
        # Bisection: links crossing the narrower cut of the mesh.
        bisection_links = min(mesh_x, mesh_y) if num_routers > 1 else 1
        bisection_bw = bisection_links * p.link_width_bytes
        average_hops = (mesh_x + mesh_y) / 3.0 if num_routers > 1 else 0.0

        area = (
            num_routers * p.router_area_mm2
            + num_links * p.link_area_mm2_per_byte * p.link_width_bytes
        ) * config.num_cores
        static_power = num_routers * p.router_static_power_w * config.num_cores
        energy_per_byte = (
            p.router_energy_pj_per_byte
            + p.link_energy_pj_per_byte_per_hop * max(average_hops, 1.0)
        )
        return NocCharacteristics(
            mesh_x=mesh_x,
            mesh_y=mesh_y,
            num_routers=num_routers,
            num_links=num_links,
            link_width_bytes=p.link_width_bytes,
            bisection_bandwidth_bytes_per_cycle=float(bisection_bw),
            average_hops=average_hops,
            area_mm2=area,
            static_power_w=static_power,
            energy_pj_per_byte=energy_per_byte,
        )

    # ------------------------------------------------------------------
    # Traffic-pattern cycle estimates
    # ------------------------------------------------------------------
    def unicast_cycles(self, config: DatapathConfig, payload_bytes: float) -> float:
        """Cycles to move ``payload_bytes`` point-to-point across the mesh."""
        noc = self.characterize(config)
        serialization = payload_bytes / noc.link_width_bytes
        return serialization + noc.average_hops

    def broadcast_cycles(self, config: DatapathConfig, payload_bytes: float) -> float:
        """Cycles to broadcast ``payload_bytes`` from the Global Memory to every PE.

        A mesh broadcast is row/column pipelined: after the pipeline fill of
        roughly the mesh diameter, one link-width flit reaches every PE per
        cycle, so serialization dominates for large payloads.
        """
        noc = self.characterize(config)
        diameter = (noc.mesh_x - 1) + (noc.mesh_y - 1)
        serialization = payload_bytes / noc.link_width_bytes
        return serialization + diameter

    def reduction_cycles(self, config: DatapathConfig, payload_bytes_per_pe: float) -> float:
        """Cycles to reduce per-PE partial sums of ``payload_bytes_per_pe`` each.

        A dimension-ordered reduction tree merges values hop by hop; the
        bottleneck is the last column, which carries the payload of every row.
        """
        noc = self.characterize(config)
        column_payload = payload_bytes_per_pe * noc.mesh_y
        serialization = column_payload / noc.link_width_bytes
        diameter = (noc.mesh_x - 1) + (noc.mesh_y - 1)
        return serialization + diameter

    # ------------------------------------------------------------------
    def distribution_bandwidth_bound(
        self, config: DatapathConfig, operand_bytes_per_cycle: float
    ) -> float:
        """Slowdown factor if operand distribution exceeds bisection bandwidth.

        Returns 1.0 when the mesh can sustain the requested operand rate and
        the ratio ``requested / bisection`` (> 1) otherwise.  Used by the NoC
        ablation analysis to flag datapaths whose many small PEs outstrip the
        interconnect.
        """
        noc = self.characterize(config)
        if noc.bisection_bandwidth_bytes_per_cycle <= 0:
            return 1.0
        return max(1.0, operand_bytes_per_cycle / noc.bisection_bandwidth_bytes_per_cycle)

    def dynamic_power_w(self, config: DatapathConfig, bytes_per_second: float) -> float:
        """Dynamic NoC power for a sustained traffic rate."""
        noc = self.characterize(config)
        return bytes_per_second * noc.energy_pj_per_byte * 1e-12 + noc.static_power_w
