"""Memory hierarchy view derived from a datapath configuration.

The mapper and the fusion pass reason about the memory system in terms of
*levels* — L1 scratchpads (split into input/weight/output partitions), an
optional L2, the shared Global Memory, and DRAM — each with a capacity, a
bandwidth, and an access energy.  This module derives that view from a
:class:`~repro.hardware.datapath.DatapathConfig` so the scheduling code does
not need to know about search-space encodings.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.hardware.area_power import DEFAULT_TECHNOLOGY, TechnologyModel
from repro.hardware.datapath import BufferConfig, DatapathConfig, KIB, L2Config, MIB

__all__ = ["MemoryLevelName", "MemoryLevel", "MemoryHierarchy"]


class MemoryLevelName(Enum):
    """Names of memory hierarchy levels."""

    L1 = "l1"
    L2 = "l2"
    GLOBAL = "global"
    DRAM = "dram"


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the memory hierarchy.

    Attributes:
        name: Level identifier.
        capacity_bytes: Usable capacity at this level, chip-wide.
        input_capacity_bytes / weight_capacity_bytes / output_capacity_bytes:
            Per-role capacity for partitioned scratchpads (L1/L2); for the
            Global Memory and DRAM the full capacity is shared across roles.
        bandwidth_bytes_per_cycle: Peak transfer rate into/out of the level.
        access_energy_pj_per_byte: Energy per byte accessed.
        shared: Whether the level is shared across PEs.
    """

    name: MemoryLevelName
    capacity_bytes: int
    input_capacity_bytes: int
    weight_capacity_bytes: int
    output_capacity_bytes: int
    bandwidth_bytes_per_cycle: float
    access_energy_pj_per_byte: float
    shared: bool


class MemoryHierarchy:
    """Memory hierarchy derived from a datapath configuration."""

    def __init__(
        self,
        config: DatapathConfig,
        technology: TechnologyModel = DEFAULT_TECHNOLOGY,
    ) -> None:
        self.config = config
        self.technology = technology
        self._levels = self._build_levels()

    # ------------------------------------------------------------------
    def _build_levels(self) -> Dict[MemoryLevelName, MemoryLevel]:
        config = self.config
        tech = self.technology
        levels: Dict[MemoryLevelName, MemoryLevel] = {}

        # L1 scratchpads.  When shared, the PE grid pools its L1 capacity
        # (one large multi-banked scratchpad); when private, each PE only
        # sees its own slice.
        l1_shared = config.l1_buffer_config is BufferConfig.SHARED
        l1_scale = config.num_pes if l1_shared else 1
        l1_energy = tech.sram_energy_per_byte(
            (config.l1_bytes_per_pe / KIB) * (config.num_pes if l1_shared else 1)
        )
        levels[MemoryLevelName.L1] = MemoryLevel(
            name=MemoryLevelName.L1,
            capacity_bytes=config.l1_bytes_per_pe * l1_scale,
            input_capacity_bytes=config.l1_input_buffer_kib * KIB * l1_scale,
            weight_capacity_bytes=config.l1_weight_buffer_kib * KIB * l1_scale,
            output_capacity_bytes=config.l1_output_buffer_kib * KIB * l1_scale,
            bandwidth_bytes_per_cycle=2.0
            * config.num_pes
            * (config.systolic_array_x + config.systolic_array_y),
            access_energy_pj_per_byte=l1_energy,
            shared=l1_shared,
        )

        # Optional L2.
        if config.l2_buffer_config is not L2Config.DISABLED:
            l2_shared = config.l2_buffer_config is L2Config.SHARED
            l2_scale = config.num_pes if l2_shared else 1
            levels[MemoryLevelName.L2] = MemoryLevel(
                name=MemoryLevelName.L2,
                capacity_bytes=config.l2_bytes_per_pe * l2_scale,
                input_capacity_bytes=config.l1_input_buffer_kib
                * config.l2_input_buffer_multiplier
                * KIB
                * l2_scale,
                weight_capacity_bytes=config.l1_weight_buffer_kib
                * config.l2_weight_buffer_multiplier
                * KIB
                * l2_scale,
                output_capacity_bytes=config.l1_output_buffer_kib
                * config.l2_output_buffer_multiplier
                * KIB
                * l2_scale,
                bandwidth_bytes_per_cycle=config.num_pes * config.systolic_array_x,
                access_energy_pj_per_byte=tech.sram_energy_per_byte(
                    config.l2_bytes_per_pe / KIB
                ),
                shared=l2_shared,
            )

        # Global Memory (optional).
        if config.l3_global_buffer_mib > 0:
            gm_bytes = config.global_buffer_bytes
            levels[MemoryLevelName.GLOBAL] = MemoryLevel(
                name=MemoryLevelName.GLOBAL,
                capacity_bytes=gm_bytes,
                input_capacity_bytes=gm_bytes,
                weight_capacity_bytes=gm_bytes,
                output_capacity_bytes=gm_bytes,
                bandwidth_bytes_per_cycle=min(
                    config.num_pes * 2.0 * config.systolic_array_x, 8192.0
                ),
                access_energy_pj_per_byte=tech.sram_energy_per_byte(
                    config.l3_global_buffer_mib * 1024.0
                ),
                shared=True,
            )

        # DRAM.
        levels[MemoryLevelName.DRAM] = MemoryLevel(
            name=MemoryLevelName.DRAM,
            capacity_bytes=1 << 40,  # effectively unbounded for inference
            input_capacity_bytes=1 << 40,
            weight_capacity_bytes=1 << 40,
            output_capacity_bytes=1 << 40,
            bandwidth_bytes_per_cycle=config.dram_bytes_per_cycle,
            access_energy_pj_per_byte=config.memory_technology.energy_per_byte_pj,
            shared=True,
        )
        return levels

    # ------------------------------------------------------------------
    @property
    def levels(self) -> List[MemoryLevel]:
        """Levels present in the hierarchy, innermost first."""
        order = [
            MemoryLevelName.L1,
            MemoryLevelName.L2,
            MemoryLevelName.GLOBAL,
            MemoryLevelName.DRAM,
        ]
        return [self._levels[name] for name in order if name in self._levels]

    def level(self, name: MemoryLevelName) -> Optional[MemoryLevel]:
        """Look up a level; None if not present (e.g. disabled L2)."""
        return self._levels.get(name)

    @property
    def has_l2(self) -> bool:
        """Whether an L2 is present."""
        return MemoryLevelName.L2 in self._levels

    @property
    def has_global_buffer(self) -> bool:
        """Whether a Global Memory is present."""
        return MemoryLevelName.GLOBAL in self._levels

    @property
    def onchip_capacity_bytes(self) -> int:
        """Total on-chip capacity available for blocking (L1 + L2 + GM)."""
        total = 0
        for name in (MemoryLevelName.L1, MemoryLevelName.L2, MemoryLevelName.GLOBAL):
            level = self._levels.get(name)
            if level is not None:
                total += level.capacity_bytes
        return total

    @property
    def blocking_capacity_bytes(self) -> int:
        """Capacity the *scheduler* may use for a single op's tiles.

        Per the paper, Timeloop blocks within the scratchpads and Global
        Memory; FAST fusion later claims leftover Global Memory capacity.
        We reserve half of the Global Memory for scheduler blocking so that
        fusion always has headroom to claim the remainder, mirroring the
        "leftover capacity unused by Timeloop" split described in
        Section 5.5.
        """
        l1 = self._levels[MemoryLevelName.L1].capacity_bytes
        l2 = (
            self._levels[MemoryLevelName.L2].capacity_bytes
            if MemoryLevelName.L2 in self._levels
            else 0
        )
        gm = (
            self._levels[MemoryLevelName.GLOBAL].capacity_bytes // 2
            if MemoryLevelName.GLOBAL in self._levels
            else 0
        )
        return l1 + l2 + gm
