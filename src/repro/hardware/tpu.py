"""Modeled TPU-v3 baseline and evaluation constraints.

The paper evaluates every FAST design against a *simulated* TPU-v3 that is
die-shrunk to the same sub-10nm process as the candidate designs.  Table 5
gives the datapath parameters of that baseline: a dual-core chip where each
core has two PEs with 128x128 systolic arrays, a 512-wide VPU per PE, 64 KiB
of shared L1 per PE, no L2, a 16 MiB Global Memory per core, and 900 GB/s of
HBM bandwidth, for 123 TFLOPS of bf16 peak compute at batch 64 per core.

The search constraints (maximum area and TDP) are expressed relative to this
baseline using the normalizations reported in Table 5: the modeled TPU-v3
sits at 0.5x of the TDP threshold and 0.6x of the area threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.area_power import AreaPowerModel
from repro.hardware.datapath import BufferConfig, DatapathConfig, L2Config, MemoryTechnology

__all__ = [
    "TPU_V3",
    "TPU_V3_SINGLE_CORE",
    "EvaluationConstraints",
    "default_constraints",
]


def _tpu_v3_config(num_cores: int) -> DatapathConfig:
    return DatapathConfig(
        pes_x_dim=2,
        pes_y_dim=1,
        systolic_array_x=128,
        systolic_array_y=128,
        vector_unit_multiplier=4,  # 4 * 128 = 512-wide VPU per PE
        l1_buffer_config=BufferConfig.SHARED,
        l1_input_buffer_kib=32,
        l1_weight_buffer_kib=16,
        l1_output_buffer_kib=16,
        l2_buffer_config=L2Config.DISABLED,
        l3_global_buffer_mib=16,
        gddr6_channels=2,
        native_batch_size=64,
        memory_technology=MemoryTechnology.HBM2,
        clock_ghz=0.94,
        num_cores=num_cores,
        use_two_pass_softmax=False,
        enable_fast_fusion=False,
    )


#: The dual-core modeled TPU-v3 baseline (Table 5, first column).
TPU_V3: DatapathConfig = _tpu_v3_config(num_cores=2)

#: A single TPU-v3 core, used for the per-component breakdown in Figure 15.
TPU_V3_SINGLE_CORE: DatapathConfig = _tpu_v3_config(num_cores=1)


@dataclass(frozen=True)
class EvaluationConstraints:
    """Maximum area and TDP budget given to the FAST search (Eq. 4)."""

    max_area_mm2: float
    max_tdp_w: float

    def is_feasible(self, area_mm2: float, tdp_w: float) -> bool:
        """Whether a design fits within the budget."""
        return area_mm2 <= self.max_area_mm2 and tdp_w <= self.max_tdp_w

    def normalized_area(self, area_mm2: float) -> float:
        """Area as a fraction of the budget (Table 5 normalization)."""
        return area_mm2 / self.max_area_mm2

    def normalized_tdp(self, tdp_w: float) -> float:
        """TDP as a fraction of the budget (Table 5 normalization)."""
        return tdp_w / self.max_tdp_w


def default_constraints(model: AreaPowerModel = None) -> EvaluationConstraints:
    """Constraints placing the modeled TPU-v3 at 0.5x TDP and 0.6x area.

    This mirrors the paper's experimental setup: FAST is given "a power and
    area budget similar to the current-generation TPU-v3, but on a new
    process technology" and the TPU-v3 baseline normalizes to 0.5x / 0.6x of
    those thresholds in Table 5.
    """
    model = model or AreaPowerModel()
    breakdown = model.evaluate(TPU_V3)
    return EvaluationConstraints(
        max_area_mm2=breakdown.total_area_mm2 / 0.6,
        max_tdp_w=breakdown.total_tdp_w / 0.5,
    )
