"""Post-training quantization as a graph transformation.

The paper notes (Figure 2 caption) that quantization is orthogonal to FAST
and "can bring further gains" — it shrinks every tensor, which raises
operational intensity and lets FAST fusion pin more tensors in the Global
Memory, and int8 MACs are denser than bf16 MACs.  This module provides the
graph-level half of that extension: :func:`quantize_graph` rewrites a
workload graph so that the selected tensor kinds use a narrower datatype.
The simulator then sees the reduced DRAM traffic and footprints directly;
compute-side gains (denser MAC arrays) can be explored by scaling the
datapath's systolic array dimensions in the usual Table 3 search space.

Quantization here is a *cost-model* transformation: no numerical calibration
is performed and model accuracy is out of scope, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.workloads.graph import DType, Graph, Operation, Tensor, TensorKind

__all__ = ["QuantizationRecipe", "quantize_graph", "memory_savings"]


@dataclass(frozen=True)
class QuantizationRecipe:
    """Which tensor kinds get which datatype.

    The default recipe is weight-and-activation int8 (the common inference
    deployment point); ``weight_only`` recipes keep activations in bf16.
    """

    weight_dtype: DType = DType.INT8
    activation_dtype: DType = DType.INT8

    @classmethod
    def weight_only(cls, dtype: DType = DType.INT8) -> "QuantizationRecipe":
        """Quantize weights only, keeping activations in bf16."""
        return cls(weight_dtype=dtype, activation_dtype=DType.BFLOAT16)

    def dtype_for(self, kind: TensorKind) -> DType:
        """Datatype assigned to a tensor of the given kind."""
        if kind in (TensorKind.WEIGHT, TensorKind.CONSTANT):
            return self.weight_dtype
        return self.activation_dtype


def quantize_graph(graph: Graph, recipe: QuantizationRecipe = QuantizationRecipe()) -> Graph:
    """Return a copy of ``graph`` with tensors narrowed per ``recipe``.

    The graph structure (ops, edges, shapes) is unchanged; only tensor
    datatypes — and therefore byte footprints and DRAM traffic — change.
    """
    quantized = Graph(f"{graph.name}-int8" if graph.name else "quantized", graph.batch_size)
    for tensor in graph.tensors.values():
        quantized.add_tensor(
            Tensor(tensor.name, tensor.shape, recipe.dtype_for(tensor.kind), tensor.kind)
        )
    for op in graph.ops:
        quantized.add_op(
            Operation(op.name, op.op_type, list(op.inputs), list(op.outputs), dict(op.attrs))
        )
    for name in graph.input_names:
        quantized.mark_input(name)
    for name in graph.output_names:
        quantized.mark_output(name)
    return quantized


def memory_savings(graph: Graph, quantized: Graph) -> Dict[str, float]:
    """Footprint reduction factors achieved by quantization.

    Returns the weight, peak-working-set, and total-activation reduction
    factors (original bytes divided by quantized bytes).
    """

    def ratio(before: float, after: float) -> float:
        return before / after if after > 0 else 1.0

    return {
        "weight_reduction": ratio(graph.weight_bytes(), quantized.weight_bytes()),
        "working_set_reduction": ratio(
            graph.max_working_set_bytes(), quantized.max_working_set_bytes()
        ),
        "activation_reduction": ratio(
            graph.activation_bytes_total(), quantized.activation_bytes_total()
        ),
    }
