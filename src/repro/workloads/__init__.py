"""Workload graphs: IR, op taxonomy, and benchmark model builders."""

from repro.workloads.bert import BERT_BASE, BERT_LARGE, BertConfig, build_bert
from repro.workloads.builder import GraphBuilder
from repro.workloads.efficientnet import (
    EFFICIENTNET_TOP1_ACCURACY,
    EFFICIENTNET_VARIANTS,
    build_efficientnet,
)
from repro.workloads.graph import (
    DType,
    Graph,
    GraphValidationError,
    Operation,
    Tensor,
    TensorKind,
)
from repro.workloads.mobilenet import MOBILENET_V2_BLOCKS, build_mobilenet_v2
from repro.workloads.ocr import build_ocr_recognizer, build_ocr_rpn
from repro.workloads.ops import MATRIX_OP_TYPES, VECTOR_OP_TYPES, OpType, is_matrix_op, op_flops
from repro.workloads.quantization import QuantizationRecipe, memory_savings, quantize_graph
from repro.workloads.registry import (
    FULL_SUITE,
    MULTI_WORKLOAD_SUITE,
    WORKLOAD_BUILDERS,
    available_workloads,
    build_workload,
)
from repro.workloads.resnet import build_resnet50
from repro.workloads.training import TrainingOptions, build_training_graph, training_flops_ratio

__all__ = [
    "BERT_BASE",
    "BERT_LARGE",
    "BertConfig",
    "DType",
    "EFFICIENTNET_TOP1_ACCURACY",
    "EFFICIENTNET_VARIANTS",
    "FULL_SUITE",
    "Graph",
    "GraphBuilder",
    "GraphValidationError",
    "MATRIX_OP_TYPES",
    "MOBILENET_V2_BLOCKS",
    "MULTI_WORKLOAD_SUITE",
    "Operation",
    "OpType",
    "QuantizationRecipe",
    "Tensor",
    "TensorKind",
    "TrainingOptions",
    "VECTOR_OP_TYPES",
    "WORKLOAD_BUILDERS",
    "available_workloads",
    "build_bert",
    "build_efficientnet",
    "build_mobilenet_v2",
    "build_ocr_recognizer",
    "build_ocr_rpn",
    "build_resnet50",
    "build_training_graph",
    "build_workload",
    "is_matrix_op",
    "memory_savings",
    "op_flops",
    "quantize_graph",
    "training_flops_ratio",
]
