"""ResNet-50 v2 graph construction.

ResNet-50 v2 (He et al., 2016) uses pre-activation bottleneck residual blocks
(BN -> ReLU -> 1x1 conv -> BN -> ReLU -> 3x3 conv -> BN -> ReLU -> 1x1 conv)
arranged in four stages of 3/4/6/3 blocks.  Unlike EfficientNet, it uses only
standard Conv2D operations and therefore maps efficiently onto large systolic
arrays; the paper uses it as a "already fast on TPU-v3" comparison point.
"""

from __future__ import annotations

from typing import Tuple

from repro.workloads.builder import GraphBuilder
from repro.workloads.graph import Graph

__all__ = ["build_resnet50"]

# (num_blocks, base_filters) per stage; bottleneck expansion is 4x.
_STAGES: Tuple[Tuple[int, int], ...] = ((3, 64), (4, 128), (6, 256), (3, 512))
_EXPANSION = 4


def build_resnet50(batch_size: int = 1, image_size: int = 224) -> Graph:
    """Build the ResNet-50 v2 inference graph.

    Args:
        batch_size: Inference batch size.
        image_size: Square input resolution (224 for ImageNet).

    Returns:
        The workload graph with classifier logits as the sole output.
    """
    builder = GraphBuilder("resnet50v2", batch_size=batch_size)
    x = builder.input("images", (batch_size, image_size, image_size, 3))

    # Stem: 7x7/2 conv + 3x3/2 max pool.
    x = builder.conv2d(x, 64, (7, 7), stride=2, name="stem.conv")
    x = builder.pooling(x, (3, 3), stride=2, pool_type="max", name="stem.pool")

    in_filters = 64
    for stage_idx, (num_blocks, base_filters) in enumerate(_STAGES):
        out_filters = base_filters * _EXPANSION
        for block_idx in range(num_blocks):
            stride = 2 if (block_idx == 0 and stage_idx > 0) else 1
            x = _bottleneck_block(
                builder,
                x,
                name=f"stage{stage_idx + 1}.block{block_idx}",
                in_filters=in_filters,
                base_filters=base_filters,
                out_filters=out_filters,
                stride=stride,
            )
            in_filters = out_filters

    # Head: final BN/ReLU, global average pool, dense classifier.
    x = builder.batchnorm(x, name="head.bn")
    x = builder.activation(x, "relu", name="head.relu")
    x = builder.reduce_mean(x, name="head.pool")
    logits = builder.matmul(x, 1000, name="head.fc")
    return builder.finish(outputs=[logits])


def _bottleneck_block(
    builder: GraphBuilder,
    x: str,
    name: str,
    in_filters: int,
    base_filters: int,
    out_filters: int,
    stride: int,
) -> str:
    """Pre-activation bottleneck residual block."""
    preact = builder.batchnorm(x, name=f"{name}.preact_bn")
    preact = builder.activation(preact, "relu", name=f"{name}.preact_relu")

    # Shortcut: identity when shape is preserved, 1x1 projection otherwise.
    if stride != 1 or in_filters != out_filters:
        shortcut = builder.conv2d(preact, out_filters, (1, 1), stride=stride, name=f"{name}.shortcut")
    else:
        shortcut = x

    y = builder.conv2d(preact, base_filters, (1, 1), stride=1, name=f"{name}.conv1")
    y = builder.batchnorm(y, name=f"{name}.bn1")
    y = builder.activation(y, "relu", name=f"{name}.relu1")

    y = builder.conv2d(y, base_filters, (3, 3), stride=stride, name=f"{name}.conv2")
    y = builder.batchnorm(y, name=f"{name}.bn2")
    y = builder.activation(y, "relu", name=f"{name}.relu2")

    y = builder.conv2d(y, out_filters, (1, 1), stride=1, name=f"{name}.conv3")
    return builder.add(y, shortcut, name=f"{name}.add")
