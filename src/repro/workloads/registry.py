"""Registry of benchmark workloads used throughout the paper's evaluation.

The registry maps the workload names used in the figures and tables (e.g.
``efficientnet-b7``, ``bert-seq1024``) to graph builder callables, and defines
the two suites the paper evaluates on: the full benchmark suite and the
reduced five-workload suite used for the multi-workload search.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.bert import BERT_LARGE, build_bert
from repro.workloads.efficientnet import EFFICIENTNET_VARIANTS, build_efficientnet
from repro.workloads.graph import Graph
from repro.workloads.mobilenet import build_mobilenet_v2
from repro.workloads.ocr import build_ocr_recognizer, build_ocr_rpn
from repro.workloads.resnet import build_resnet50

__all__ = [
    "WORKLOAD_BUILDERS",
    "FULL_SUITE",
    "MULTI_WORKLOAD_SUITE",
    "build_workload",
    "available_workloads",
]


def _efficientnet_builder(variant: str) -> Callable[[int], Graph]:
    def build(batch_size: int = 1) -> Graph:
        return build_efficientnet(variant, batch_size=batch_size)

    return build


WORKLOAD_BUILDERS: Dict[str, Callable[..., Graph]] = {
    **{name: _efficientnet_builder(name) for name in EFFICIENTNET_VARIANTS},
    "bert-seq128": lambda batch_size=1: build_bert(seq_len=128, batch_size=batch_size),
    "bert-seq1024": lambda batch_size=1: build_bert(seq_len=1024, batch_size=batch_size),
    "resnet50": lambda batch_size=1: build_resnet50(batch_size=batch_size),
    "ocr-rpn": lambda batch_size=1: build_ocr_rpn(batch_size=batch_size),
    "ocr-recognizer": lambda batch_size=1: build_ocr_recognizer(batch_size=batch_size),
    # Additional workloads beyond the paper's benchmark suite (extensions).
    "mobilenet-v2": lambda batch_size=1: build_mobilenet_v2(batch_size=batch_size),
    "bert-large-seq128": lambda batch_size=1: build_bert(
        seq_len=128, batch_size=batch_size, config=BERT_LARGE, name="bert-large-seq128"
    ),
    "bert-large-seq512": lambda batch_size=1: build_bert(
        seq_len=512, batch_size=batch_size, config=BERT_LARGE, name="bert-large-seq512"
    ),
}

# The comprehensive suite evaluated in Figures 9-10 (single-workload search).
FULL_SUITE: List[str] = [
    "efficientnet-b0",
    "efficientnet-b1",
    "efficientnet-b2",
    "efficientnet-b3",
    "efficientnet-b4",
    "efficientnet-b5",
    "efficientnet-b6",
    "efficientnet-b7",
    "bert-seq128",
    "bert-seq1024",
    "resnet50",
    "ocr-rpn",
    "ocr-recognizer",
]

# The reduced suite used for the multi-workload search (GeoMean-5 in Fig. 9).
MULTI_WORKLOAD_SUITE: List[str] = [
    "efficientnet-b7",
    "resnet50",
    "ocr-rpn",
    "ocr-recognizer",
    "bert-seq1024",
]


def available_workloads() -> List[str]:
    """Names of all registered workloads."""
    return sorted(WORKLOAD_BUILDERS)


def build_workload(name: str, batch_size: int = 1) -> Graph:
    """Build a registered workload graph by name.

    Args:
        name: A key of :data:`WORKLOAD_BUILDERS`.
        batch_size: Inference batch size for the built graph.

    Raises:
        KeyError: If the workload name is unknown.
    """
    if name not in WORKLOAD_BUILDERS:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        )
    return WORKLOAD_BUILDERS[name](batch_size=batch_size)
