"""Training-step graph construction (the paper's stated future work).

The paper optimizes *inference* accelerators and lists "adding support for
optimizing accelerators for training" as future work (Section 7).  This
module provides that extension at the workload level: given an inference
graph it builds a training-step graph containing the forward pass, a loss
reduction, a backward pass, and the weight-update ops of the chosen
optimizer.

The backward pass is modeled structurally rather than symbolically:

* every forward matrix op gets a *grad-input* op of the same type (backward
  data convolutions/matmuls have essentially the forward op's FLOP count and
  traffic) and a *grad-weight* op (an activation x activation contraction);
* every forward vector op gets one backward vector op of the same shape;
* each backward op re-reads the forward op's stored activations — this is
  the key property that distinguishes training from inference for FAST
  fusion: intermediate activations cannot be discarded after use, so the
  aggressive inference-only fusion of Section 5.5 does not apply.

Gradient tensors are given unique names per backward op, so fan-out in the
forward graph is modeled as independent gradient contributions rather than
an explicit accumulation tree; the FLOP and traffic totals are the same and
the graph remains a valid single-producer DAG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.workloads.graph import Graph, Operation, Tensor, TensorKind
from repro.workloads.ops import OpType, is_matrix_op

__all__ = ["TrainingOptions", "build_training_graph", "training_flops_ratio"]

#: Number of elementwise passes over each weight tensor performed by the
#: optimizer update (read grad + read/write state + write weight).
_OPTIMIZER_UPDATE_PASSES = {"sgd": 1, "momentum": 2, "adam": 3}


@dataclass(frozen=True)
class TrainingOptions:
    """Configuration of the generated training step."""

    optimizer: str = "sgd"
    include_weight_update: bool = True

    def __post_init__(self) -> None:
        if self.optimizer not in _OPTIMIZER_UPDATE_PASSES:
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; "
                f"expected one of {sorted(_OPTIMIZER_UPDATE_PASSES)}"
            )

    @property
    def update_passes(self) -> int:
        """Elementwise passes over each weight tensor for one update."""
        return _OPTIMIZER_UPDATE_PASSES[self.optimizer]


def build_training_graph(
    inference: Graph, options: TrainingOptions = TrainingOptions()
) -> Graph:
    """Build a training-step graph from an inference graph.

    Args:
        inference: The forward (inference) graph.
        options: Optimizer choice and whether to emit weight-update ops.

    Returns:
        A new graph named ``<name>-train`` containing forward, loss,
        backward, and (optionally) weight-update operations.
    """
    train = Graph(f"{inference.name}-train", batch_size=inference.batch_size)
    dtype = _dominant_dtype(inference)

    # ----- forward pass (copied verbatim) --------------------------------
    for tensor in inference.tensors.values():
        train.add_tensor(Tensor(tensor.name, tensor.shape, tensor.dtype, tensor.kind))
    for op in inference.ops:
        train.add_op(
            Operation(op.name, op.op_type, list(op.inputs), list(op.outputs), dict(op.attrs))
        )
    for name in inference.input_names:
        train.mark_input(name)

    # ----- loss -----------------------------------------------------------
    loss_inputs = list(inference.output_names) or [inference.ops[-1].outputs[0]]
    loss_name = "loss"
    train.add_tensor(Tensor(loss_name, (inference.batch_size,), dtype, TensorKind.ACTIVATION))
    train.add_op(
        Operation("loss.reduce", OpType.REDUCE, inputs=loss_inputs, outputs=[loss_name],
                  attrs={"reduce": "mean"})
    )

    # ----- backward pass ---------------------------------------------------
    grad_tensors: List[str] = []
    for op in reversed(inference.ops):
        if op.op_type is OpType.RESHAPE:
            continue  # no compute or unique traffic in the cost model
        grad_tensors.extend(_append_backward_ops(train, inference, op, dtype))

    # ----- weight update ---------------------------------------------------
    if options.include_weight_update:
        _append_weight_updates(train, inference, options, dtype)

    for name in inference.output_names:
        train.mark_output(name)
    train.mark_output(loss_name)
    train.validate()
    return train


def training_flops_ratio(inference: Graph, training: Graph) -> float:
    """FLOP ratio of the training step to the forward pass.

    The classic rule of thumb is ~3x for dense networks (forward + grad-input
    + grad-weight); models dominated by vector ops land lower.
    """
    forward = inference.total_flops()
    return training.total_flops() / forward if forward else 0.0


# ---------------------------------------------------------------------------
# Internal helpers
# ---------------------------------------------------------------------------
def _dominant_dtype(graph: Graph):
    for tensor in graph.tensors.values():
        return tensor.dtype
    raise ValueError("cannot build a training graph from an empty graph")


def _append_backward_ops(train: Graph, inference: Graph, op: Operation, dtype) -> List[str]:
    """Append the backward op(s) for one forward op; returns new grad tensor names."""
    tensors = inference.tensors
    created: List[str] = []
    # The incoming gradient has the shape of the op's (first) output; the
    # stored forward output tensor stands in for it so the backward op reads
    # a tensor of identical size without needing an explicit gradient chain.
    incoming = op.outputs[0]

    activation_inputs = [t for t in op.inputs if tensors[t].kind is TensorKind.ACTIVATION]
    weight_inputs = [
        t for t in op.inputs if tensors[t].kind in (TensorKind.WEIGHT, TensorKind.CONSTANT)
    ]

    if is_matrix_op(op.op_type):
        # Grad w.r.t. the input activation(s): same op type, same attrs.
        for idx, act in enumerate(activation_inputs):
            grad_name = f"{op.name}.grad_input{idx}"
            train.add_tensor(Tensor(grad_name, tensors[act].shape, dtype, TensorKind.ACTIVATION))
            backward_inputs = [incoming] + weight_inputs if weight_inputs else [incoming, act]
            train.add_op(
                Operation(
                    f"{op.name}.bwd_input{idx}",
                    op.op_type,
                    inputs=backward_inputs,
                    outputs=[grad_name],
                    attrs=dict(op.attrs),
                )
            )
            created.append(grad_name)
        # Grad w.r.t. each weight: activation x activation contraction whose
        # output has the weight's shape.
        for idx, weight in enumerate(weight_inputs):
            grad_name = f"{op.name}.grad_weight{idx}"
            train.add_tensor(Tensor(grad_name, tensors[weight].shape, dtype, TensorKind.ACTIVATION))
            contracting = _output_positions(tensors[incoming].shape)
            train.add_op(
                Operation(
                    f"{op.name}.bwd_weight{idx}",
                    OpType.EINSUM,
                    inputs=[activation_inputs[0] if activation_inputs else incoming, incoming],
                    outputs=[grad_name],
                    attrs={"contracting_dim": contracting},
                )
            )
            created.append(grad_name)
    else:
        # Vector ops: one backward vector op with the input activation's shape.
        source = activation_inputs[0] if activation_inputs else incoming
        grad_name = f"{op.name}.grad_input"
        train.add_tensor(Tensor(grad_name, tensors[source].shape, dtype, TensorKind.ACTIVATION))
        backward_type = op.op_type if op.op_type is not OpType.REDUCE else OpType.ELEMENTWISE_MUL
        train.add_op(
            Operation(
                f"{op.name}.bwd",
                backward_type,
                inputs=[incoming, source],
                outputs=[grad_name],
                attrs=dict(op.attrs),
            )
        )
        created.append(grad_name)
    return created


def _append_weight_updates(
    train: Graph, inference: Graph, options: TrainingOptions, dtype
) -> None:
    """Append optimizer-update ops, one chain per weight tensor."""
    grad_by_weight: Dict[str, str] = {}
    for op in inference.ops:
        weight_inputs = [
            t
            for t in op.inputs
            if inference.tensors[t].kind in (TensorKind.WEIGHT, TensorKind.CONSTANT)
        ]
        for idx, weight in enumerate(weight_inputs):
            grad_by_weight.setdefault(weight, f"{op.name}.grad_weight{idx}")

    for weight, grad in grad_by_weight.items():
        if grad not in train.tensors:
            continue  # vector-op parameters (scale/shift) have no matrix grad op
        shape = inference.tensors[weight].shape
        previous = grad
        for step in range(options.update_passes):
            out_name = f"{weight}.update{step}"
            train.add_tensor(Tensor(out_name, shape, dtype, TensorKind.ACTIVATION))
            train.add_op(
                Operation(
                    f"{weight}.optimizer_step{step}",
                    OpType.ELEMENTWISE_ADD,
                    inputs=[previous, weight],
                    outputs=[out_name],
                    attrs={"optimizer": options.optimizer},
                )
            )
            previous = out_name


def _output_positions(shape) -> int:
    """Number of output positions reduced over when forming a weight gradient."""
    positions = 1
    for dim in shape[:-1]:
        positions *= dim
    return max(positions, 1)
