"""EfficientNet B0–B7 graph construction.

EfficientNet (Tan & Le, 2019) is built from MBConv inverted-residual blocks:
a 1x1 expansion convolution, a depthwise convolution, a squeeze-and-excite
block, and a 1x1 projection convolution, with a residual add when the block
preserves shape.  The B1–B7 variants apply compound width/depth/resolution
scaling to the B0 base architecture.  These graphs drive the EfficientNet
experiments in the paper (Tables 1–2, Figures 2–4, 9, 10, 13, 14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.builder import GraphBuilder
from repro.workloads.graph import Graph

__all__ = [
    "EFFICIENTNET_VARIANTS",
    "EFFICIENTNET_TOP1_ACCURACY",
    "BlockArgs",
    "build_efficientnet",
]


@dataclass(frozen=True)
class BlockArgs:
    """Architecture of one MBConv stage of the B0 base network."""

    kernel: int
    num_repeat: int
    input_filters: int
    output_filters: int
    expand_ratio: int
    stride: int
    se_ratio: float = 0.25


# The EfficientNet-B0 base architecture (Table 1 of the EfficientNet paper).
_B0_BLOCKS: Tuple[BlockArgs, ...] = (
    BlockArgs(kernel=3, num_repeat=1, input_filters=32, output_filters=16, expand_ratio=1, stride=1),
    BlockArgs(kernel=3, num_repeat=2, input_filters=16, output_filters=24, expand_ratio=6, stride=2),
    BlockArgs(kernel=5, num_repeat=2, input_filters=24, output_filters=40, expand_ratio=6, stride=2),
    BlockArgs(kernel=3, num_repeat=3, input_filters=40, output_filters=80, expand_ratio=6, stride=2),
    BlockArgs(kernel=5, num_repeat=3, input_filters=80, output_filters=112, expand_ratio=6, stride=1),
    BlockArgs(kernel=5, num_repeat=4, input_filters=112, output_filters=192, expand_ratio=6, stride=2),
    BlockArgs(kernel=3, num_repeat=1, input_filters=192, output_filters=320, expand_ratio=6, stride=1),
)

# (width_coefficient, depth_coefficient, input_resolution) per variant.
EFFICIENTNET_VARIANTS: Dict[str, Tuple[float, float, int]] = {
    "efficientnet-b0": (1.0, 1.0, 224),
    "efficientnet-b1": (1.0, 1.1, 240),
    "efficientnet-b2": (1.1, 1.2, 260),
    "efficientnet-b3": (1.2, 1.4, 300),
    "efficientnet-b4": (1.4, 1.8, 380),
    "efficientnet-b5": (1.6, 2.2, 456),
    "efficientnet-b6": (1.8, 2.6, 528),
    "efficientnet-b7": (2.0, 3.1, 600),
}

# Published ImageNet top-1 accuracy per variant (used to regenerate Figure 2).
EFFICIENTNET_TOP1_ACCURACY: Dict[str, float] = {
    "efficientnet-b0": 77.1,
    "efficientnet-b1": 79.1,
    "efficientnet-b2": 80.1,
    "efficientnet-b3": 81.6,
    "efficientnet-b4": 82.9,
    "efficientnet-b5": 83.6,
    "efficientnet-b6": 84.0,
    "efficientnet-b7": 84.3,
}


def round_filters(filters: int, width_coefficient: float, divisor: int = 8) -> int:
    """Round a channel count after width scaling to a multiple of ``divisor``."""
    filters *= width_coefficient
    new_filters = max(divisor, int(filters + divisor / 2) // divisor * divisor)
    if new_filters < 0.9 * filters:  # Never round down by more than 10%.
        new_filters += divisor
    return int(new_filters)


def round_repeats(repeats: int, depth_coefficient: float) -> int:
    """Round a block repeat count after depth scaling."""
    return int(math.ceil(depth_coefficient * repeats))


def build_efficientnet(variant: str = "efficientnet-b0", batch_size: int = 1) -> Graph:
    """Build the inference graph of an EfficientNet variant.

    Args:
        variant: One of ``efficientnet-b0`` .. ``efficientnet-b7``.
        batch_size: Inference batch size.

    Returns:
        The workload graph, with the classifier logits as the sole output.
    """
    if variant not in EFFICIENTNET_VARIANTS:
        raise ValueError(f"unknown EfficientNet variant {variant!r}")
    width, depth, resolution = EFFICIENTNET_VARIANTS[variant]
    builder = GraphBuilder(variant, batch_size=batch_size)

    x = builder.input("images", (batch_size, resolution, resolution, 3))

    # Stem.
    stem_filters = round_filters(32, width)
    x = builder.conv2d(x, stem_filters, (3, 3), stride=2, name="stem.conv")
    x = builder.batchnorm(x, name="stem.bn")
    x = builder.activation(x, "swish", name="stem.swish")

    # MBConv stages.
    for stage_idx, block in enumerate(_B0_BLOCKS):
        in_filters = round_filters(block.input_filters, width)
        out_filters = round_filters(block.output_filters, width)
        repeats = round_repeats(block.num_repeat, depth)
        for repeat_idx in range(repeats):
            stride = block.stride if repeat_idx == 0 else 1
            block_in = in_filters if repeat_idx == 0 else out_filters
            x = _mbconv_block(
                builder,
                x,
                name=f"block{stage_idx + 1}_{repeat_idx}",
                input_filters=block_in,
                output_filters=out_filters,
                kernel=block.kernel,
                stride=stride,
                expand_ratio=block.expand_ratio,
                se_ratio=block.se_ratio,
            )

    # Head.
    head_filters = round_filters(1280, width)
    x = builder.pointwise_conv(x, head_filters, name="head.conv")
    x = builder.batchnorm(x, name="head.bn")
    x = builder.activation(x, "swish", name="head.swish")
    x = builder.reduce_mean(x, name="head.pool")
    logits = builder.matmul(x, 1000, name="head.fc")
    return builder.finish(outputs=[logits])


def _mbconv_block(
    builder: GraphBuilder,
    x: str,
    name: str,
    input_filters: int,
    output_filters: int,
    kernel: int,
    stride: int,
    expand_ratio: int,
    se_ratio: float,
) -> str:
    """One MBConv (inverted residual) block with squeeze-and-excite."""
    residual = x
    expanded_filters = input_filters * expand_ratio

    # Expansion 1x1 conv (skipped when expand_ratio == 1).
    if expand_ratio != 1:
        x = builder.pointwise_conv(x, expanded_filters, name=f"{name}.expand")
        x = builder.batchnorm(x, name=f"{name}.expand_bn")
        x = builder.activation(x, "swish", name=f"{name}.expand_swish")

    # Depthwise conv.
    x = builder.depthwise_conv2d(x, (kernel, kernel), stride=stride, name=f"{name}.dwconv")
    x = builder.batchnorm(x, name=f"{name}.dw_bn")
    x = builder.activation(x, "swish", name=f"{name}.dw_swish")

    # Squeeze and excite.
    if se_ratio > 0:
        se_filters = max(1, int(input_filters * se_ratio))
        squeezed = builder.reduce_mean(x, keep_spatial=True, name=f"{name}.se_squeeze")
        squeezed = builder.conv2d(squeezed, se_filters, (1, 1), name=f"{name}.se_reduce")
        squeezed = builder.activation(squeezed, "swish", name=f"{name}.se_swish")
        squeezed = builder.conv2d(squeezed, expanded_filters, (1, 1), name=f"{name}.se_expand")
        gate = builder.activation(squeezed, "sigmoid", name=f"{name}.se_sigmoid")
        x = builder.multiply(x, gate, name=f"{name}.se_excite")

    # Projection 1x1 conv.
    x = builder.pointwise_conv(x, output_filters, name=f"{name}.project")
    x = builder.batchnorm(x, name=f"{name}.project_bn")

    # Residual connection when shape is preserved.
    if stride == 1 and input_filters == output_filters:
        x = builder.add(x, residual, name=f"{name}.residual")
    return x
