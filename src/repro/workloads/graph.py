"""Neural-network graph intermediate representation.

The simulator, compiler passes, and FAST fusion all operate on this IR.  It is
a deliberately small stand-in for the XLA HLO graphs used in the paper: a
directed acyclic graph of :class:`Operation` nodes connected through named
:class:`Tensor` values.  Every tensor records a shape, a dtype, and a *kind*
(activation, weight, or constant) — enough to account for FLOPs, bytes moved,
and on-chip working sets, which is what the FAST search actually consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.workloads.ops import OpType, is_matrix_op, op_flops

__all__ = [
    "DType",
    "TensorKind",
    "Tensor",
    "Operation",
    "Graph",
    "GraphValidationError",
]


class DType(Enum):
    """Numeric datatypes supported by the simulator."""

    BFLOAT16 = "bfloat16"
    FLOAT32 = "float32"
    INT8 = "int8"

    @property
    def bytes(self) -> int:
        """Size of a single element in bytes."""
        return {DType.BFLOAT16: 2, DType.FLOAT32: 4, DType.INT8: 1}[self]


class TensorKind(Enum):
    """Role of a tensor in the network."""

    ACTIVATION = "activation"
    WEIGHT = "weight"
    CONSTANT = "constant"


class GraphValidationError(ValueError):
    """Raised when a graph fails structural validation."""


@dataclass(frozen=True)
class Tensor:
    """A named, shaped value flowing between operations.

    Attributes:
        name: Unique name within the owning graph.
        shape: Dimension sizes; the batch dimension, when present, is first.
        dtype: Element datatype.
        kind: Whether the tensor is an activation, weight, or constant.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DType = DType.BFLOAT16
    kind: TensorKind = TensorKind.ACTIVATION

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphValidationError("tensor name must be non-empty")
        if any(d <= 0 for d in self.shape):
            raise GraphValidationError(
                f"tensor {self.name!r} has non-positive dimension: {self.shape}"
            )
        # size_bytes is read millions of times across a search (every region's
        # traffic attribution touches it); precompute once per tensor.  The
        # slot is set with object.__setattr__ because the dataclass is frozen;
        # it is not a field, so repr/eq/pickling are unaffected.
        elements = int(math.prod(self.shape)) if self.shape else 1
        object.__setattr__(self, "_size_bytes", elements * self.dtype.bytes)

    @property
    def num_elements(self) -> int:
        """Total element count."""
        return int(math.prod(self.shape)) if self.shape else 1

    @property
    def size_bytes(self) -> int:
        """Storage footprint in bytes."""
        return self._size_bytes

    def with_batch(self, batch: int) -> "Tensor":
        """Return a copy with the leading (batch) dimension replaced.

        Weights and constants are batch-independent and are returned
        unchanged.
        """
        if self.kind is not TensorKind.ACTIVATION or not self.shape:
            return self
        new_shape = (batch,) + self.shape[1:]
        return Tensor(self.name, new_shape, self.dtype, self.kind)


@dataclass
class Operation:
    """A single node of the network graph.

    Attributes:
        name: Unique name within the owning graph.
        op_type: The kind of computation performed.
        inputs: Names of input tensors, in positional order.
        outputs: Names of output tensors.
        attrs: Op-specific attributes (strides, kernel sizes, einsum spec...).
    """

    name: str
    op_type: OpType
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def is_matrix_op(self) -> bool:
        """True when the op runs on the systolic array (Conv/MatMul family)."""
        return is_matrix_op(self.op_type)

    def flops(self, tensors: Dict[str, Tensor]) -> int:
        """Floating-point operations performed by this op."""
        return op_flops(self, tensors)


class Graph:
    """A directed acyclic graph of operations.

    Operations are stored in the order they were added, which must be a valid
    topological (execution) order; :meth:`validate` checks this.  The class
    offers the aggregate accounting that the rest of the stack needs:
    per-tensor producers/consumers, FLOP totals, weight footprints, per-op
    working sets, and batch rewriting.
    """

    def __init__(self, name: str, batch_size: int = 1) -> None:
        self.name = name
        self.batch_size = batch_size
        self._tensors: Dict[str, Tensor] = {}
        self._ops: List[Operation] = []
        self._op_index: Dict[str, int] = {}
        self._producer: Dict[str, str] = {}
        self._consumers: Dict[str, List[str]] = {}
        self.input_names: List[str] = []
        self.output_names: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_tensor(self, tensor: Tensor) -> Tensor:
        """Register a tensor; names must be unique."""
        if tensor.name in self._tensors:
            raise GraphValidationError(f"duplicate tensor name {tensor.name!r}")
        self._tensors[tensor.name] = tensor
        self._consumers.setdefault(tensor.name, [])
        return tensor

    def add_op(self, op: Operation) -> Operation:
        """Register an operation; all referenced tensors must already exist."""
        if op.name in self._op_index:
            raise GraphValidationError(f"duplicate op name {op.name!r}")
        for tname in list(op.inputs) + list(op.outputs):
            if tname not in self._tensors:
                raise GraphValidationError(
                    f"op {op.name!r} references unknown tensor {tname!r}"
                )
        for tname in op.outputs:
            if tname in self._producer:
                raise GraphValidationError(
                    f"tensor {tname!r} already produced by {self._producer[tname]!r}"
                )
            self._producer[tname] = op.name
        for tname in op.inputs:
            self._consumers.setdefault(tname, []).append(op.name)
        self._op_index[op.name] = len(self._ops)
        self._ops.append(op)
        return op

    def mark_input(self, name: str) -> None:
        """Mark a tensor as a graph input (fed from the host / DRAM)."""
        if name not in self._tensors:
            raise GraphValidationError(f"unknown tensor {name!r}")
        if name not in self.input_names:
            self.input_names.append(name)

    def mark_output(self, name: str) -> None:
        """Mark a tensor as a graph output."""
        if name not in self._tensors:
            raise GraphValidationError(f"unknown tensor {name!r}")
        if name not in self.output_names:
            self.output_names.append(name)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def ops(self) -> List[Operation]:
        """Operations in execution order."""
        return list(self._ops)

    @property
    def tensors(self) -> Dict[str, Tensor]:
        """Mapping from tensor name to tensor."""
        return dict(self._tensors)

    def tensor(self, name: str) -> Tensor:
        """Look up a tensor by name."""
        return self._tensors[name]

    def op(self, name: str) -> Operation:
        """Look up an operation by name."""
        return self._ops[self._op_index[name]]

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def fingerprint(self) -> str:
        """Stable content hash of the graph structure.

        Covers every op (name, type, operands, attributes) and every tensor
        (name, shape, dtype, kind), so two graphs share a fingerprint only
        when per-op cost models would produce identical results for them.
        Used as a cache key component by the cross-trial op-cost cache; the
        digest is computed once and memoized (graphs are append-only while
        being built, and built graphs are treated as immutable everywhere).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None and cached[0] == len(self._ops):
            return cached[1]
        import hashlib
        import json

        payload = {
            "name": self.name,
            "batch_size": self.batch_size,
            "ops": [
                [op.name, op.op_type.value, list(op.inputs), list(op.outputs),
                 sorted((k, str(v)) for k, v in op.attrs.items())]
                for op in self._ops
            ],
            "tensors": [
                [t.name, list(t.shape), t.dtype.value, t.kind.value]
                for t in self._tensors.values()
            ],
            "outputs": list(self.output_names),
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()[:24]
        self.__dict__["_fingerprint"] = (len(self._ops), digest)
        return digest

    def producer(self, tensor_name: str) -> Optional[Operation]:
        """Return the op producing ``tensor_name`` or None for graph inputs."""
        op_name = self._producer.get(tensor_name)
        return self.op(op_name) if op_name is not None else None

    def consumers(self, tensor_name: str) -> List[Operation]:
        """Return ops consuming ``tensor_name``."""
        return [self.op(n) for n in self._consumers.get(tensor_name, [])]

    def predecessors(self, op: Operation) -> List[Operation]:
        """Ops producing any of ``op``'s inputs."""
        preds = []
        for tname in op.inputs:
            producer = self.producer(tname)
            if producer is not None and producer not in preds:
                preds.append(producer)
        return preds

    def successors(self, op: Operation) -> List[Operation]:
        """Ops consuming any of ``op``'s outputs."""
        succs = []
        for tname in op.outputs:
            for consumer in self.consumers(tname):
                if consumer not in succs:
                    succs.append(consumer)
        return succs

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check that op ordering is a valid topological order."""
        seen = set(self.input_names)
        for tname, tensor in self._tensors.items():
            if tensor.kind in (TensorKind.WEIGHT, TensorKind.CONSTANT):
                seen.add(tname)
        for op in self._ops:
            for tname in op.inputs:
                if tname not in seen and tname in self._producer:
                    producer_idx = self._op_index[self._producer[tname]]
                    if producer_idx >= self._op_index[op.name]:
                        raise GraphValidationError(
                            f"op {op.name!r} consumes {tname!r} before it is produced"
                        )
            seen.update(op.outputs)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def total_flops(self) -> int:
        """Total FLOPs across all operations."""
        return sum(op.flops(self._tensors) for op in self._ops)

    def weight_bytes(self) -> int:
        """Total bytes of weight/constant tensors."""
        return sum(
            t.size_bytes
            for t in self._tensors.values()
            if t.kind in (TensorKind.WEIGHT, TensorKind.CONSTANT)
        )

    def op_working_set_bytes(self, op: Operation, include_weights: bool = False) -> int:
        """Working set of a single op: its input and output activations.

        Per the paper (Section 4.1) an op's working set is the size of its
        input activations and outputs; weights are accounted separately unless
        ``include_weights`` is set.
        """
        total = 0
        for tname in list(op.inputs) + list(op.outputs):
            tensor = self._tensors[tname]
            if tensor.kind is TensorKind.ACTIVATION or include_weights:
                total += tensor.size_bytes
        return total

    def max_working_set_bytes(self) -> int:
        """The model working set: the largest per-op working set (Table 1)."""
        if not self._ops:
            return 0
        return max(self.op_working_set_bytes(op) for op in self._ops)

    def activation_bytes_total(self) -> int:
        """Sum of all activation tensor footprints (intermediate traffic)."""
        return sum(
            t.size_bytes
            for t in self._tensors.values()
            if t.kind is TensorKind.ACTIVATION
        )

    def matrix_op_flop_fraction(self) -> float:
        """Fraction of FLOPs spent in matrix (systolic-array) ops."""
        total = self.total_flops()
        if total == 0:
            return 0.0
        matrix = sum(
            op.flops(self._tensors) for op in self._ops if op.is_matrix_op
        )
        return matrix / total

    def flops_by_op_type(self) -> Dict[OpType, int]:
        """FLOPs aggregated per op type."""
        result: Dict[OpType, int] = {}
        for op in self._ops:
            result[op.op_type] = result.get(op.op_type, 0) + op.flops(self._tensors)
        return result

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_batch_size(self, batch: int) -> "Graph":
        """Return a copy of the graph with a different batch size.

        Only activation tensors are rescaled; weights are shared across the
        batch.  Ops are copied verbatim (their FLOPs are recomputed lazily
        from the rescaled tensor shapes).
        """
        if batch <= 0:
            raise ValueError("batch size must be positive")
        scaled = Graph(self.name, batch_size=batch)
        for tensor in self._tensors.values():
            scaled.add_tensor(_rescale_batch(tensor, self.batch_size, batch))
        for op in self._ops:
            scaled.add_op(
                Operation(
                    name=op.name,
                    op_type=op.op_type,
                    inputs=list(op.inputs),
                    outputs=list(op.outputs),
                    attrs=dict(op.attrs),
                )
            )
        for name in self.input_names:
            scaled.mark_input(name)
        for name in self.output_names:
            scaled.mark_output(name)
        return scaled

    def subgraph(self, op_names: Sequence[str], name: Optional[str] = None) -> "Graph":
        """Extract a subgraph containing only the named ops (in order)."""
        wanted = set(op_names)
        sub = Graph(name or f"{self.name}.sub", batch_size=self.batch_size)
        needed_tensors: List[str] = []
        for op in self._ops:
            if op.name in wanted:
                for tname in list(op.inputs) + list(op.outputs):
                    if tname not in needed_tensors:
                        needed_tensors.append(tname)
        for tname in needed_tensors:
            sub.add_tensor(self._tensors[tname])
        for op in self._ops:
            if op.name in wanted:
                sub.add_op(
                    Operation(op.name, op.op_type, list(op.inputs), list(op.outputs), dict(op.attrs))
                )
        return sub

    def summary(self) -> str:
        """Human-readable one-line-per-op summary."""
        lines = [f"Graph {self.name!r}: {len(self._ops)} ops, batch={self.batch_size}"]
        for op in self._ops:
            out_shapes = ", ".join(str(self._tensors[t].shape) for t in op.outputs)
            lines.append(f"  {op.name:40s} {op.op_type.value:24s} -> {out_shapes}")
        return "\n".join(lines)


def _rescale_batch(tensor: Tensor, old_batch: int, new_batch: int) -> Tensor:
    """Rescale the leading dimension of an activation tensor."""
    if tensor.kind is not TensorKind.ACTIVATION or not tensor.shape:
        return tensor
    if tensor.shape[0] != old_batch:
        # Not batch-major (e.g. scalar stats); leave unchanged.
        return tensor
    return Tensor(tensor.name, (new_batch,) + tensor.shape[1:], tensor.dtype, tensor.kind)
