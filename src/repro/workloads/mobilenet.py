"""MobileNetV2 graph construction.

MobileNetV2 (Sandler et al., 2018) introduced the inverted-residual (MBConv)
block that EfficientNet builds on, and is the canonical "edge" CNN with very
low operational intensity.  It is not part of the paper's benchmark suite
but is a natural additional workload for FAST: its depthwise-separable
convolutions stress exactly the bottlenecks Section 4 characterizes, at a
much smaller parameter count than EfficientNet-B7.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.builder import GraphBuilder
from repro.workloads.graph import Graph

__all__ = ["MOBILENET_V2_BLOCKS", "build_mobilenet_v2"]

#: Inverted-residual stage configuration: (expansion, channels, repeats, stride).
MOBILENET_V2_BLOCKS: List[Tuple[int, int, int, int]] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def build_mobilenet_v2(
    batch_size: int = 1,
    image_size: int = 224,
    width_multiplier: float = 1.0,
    num_classes: int = 1000,
) -> Graph:
    """Build the MobileNetV2 inference graph.

    Args:
        batch_size: Inference batch size.
        image_size: Input resolution (square images).
        width_multiplier: Channel width scaling factor (the "alpha" knob).
        num_classes: Classifier output size.
    """
    if width_multiplier <= 0:
        raise ValueError("width_multiplier must be positive")
    builder = GraphBuilder(f"mobilenet-v2-{image_size}", batch_size=batch_size)

    def scaled(channels: int) -> int:
        value = int(round(channels * width_multiplier / 8) * 8)
        return max(value, 8)

    x = builder.input("images", (batch_size, image_size, image_size, 3))

    # Stem: 3x3 stride-2 convolution.
    x = builder.conv2d(x, scaled(32), (3, 3), stride=2, name="stem.conv")
    x = builder.batchnorm(x, name="stem.bn")
    x = builder.activation(x, "relu", name="stem.relu")

    for stage_idx, (expansion, channels, repeats, stride) in enumerate(MOBILENET_V2_BLOCKS):
        out_channels = scaled(channels)
        for block_idx in range(repeats):
            block_stride = stride if block_idx == 0 else 1
            x = _inverted_residual(
                builder,
                x,
                out_channels,
                expansion,
                block_stride,
                name=f"stage{stage_idx}.block{block_idx}",
            )

    # Head: 1x1 conv to 1280 channels, global pool, classifier.
    head_channels = max(scaled(1280), 1280)
    x = builder.pointwise_conv(x, head_channels, name="head.conv")
    x = builder.batchnorm(x, name="head.bn")
    x = builder.activation(x, "relu", name="head.relu")
    x = builder.reduce_mean(x, name="head.pool")
    logits = builder.matmul(x, num_classes, name="head.classifier")
    return builder.finish(outputs=[logits])


def _inverted_residual(
    builder: GraphBuilder,
    x: str,
    out_channels: int,
    expansion: int,
    stride: int,
    name: str,
) -> str:
    """One MobileNetV2 inverted-residual block."""
    in_channels = builder.shape(x)[-1]
    residual = x

    y = x
    if expansion != 1:
        y = builder.pointwise_conv(y, in_channels * expansion, name=f"{name}.expand")
        y = builder.batchnorm(y, name=f"{name}.expand_bn")
        y = builder.activation(y, "relu", name=f"{name}.expand_relu")

    y = builder.depthwise_conv2d(y, (3, 3), stride=stride, name=f"{name}.depthwise")
    y = builder.batchnorm(y, name=f"{name}.depthwise_bn")
    y = builder.activation(y, "relu", name=f"{name}.depthwise_relu")

    y = builder.pointwise_conv(y, out_channels, name=f"{name}.project")
    y = builder.batchnorm(y, name=f"{name}.project_bn")

    if stride == 1 and in_channels == out_channels:
        y = builder.add(y, residual, name=f"{name}.residual")
    return y
