"""Production OCR pipeline workloads (RPN and Recognizer).

The paper evaluates two components of the text-spotting pipeline from
Qin et al. (2019):

* **OCR-RPN** — the region proposal network stage of a standard Mask R-CNN:
  a ResNet-style convolutional backbone with an FPN neck and a shared RPN
  head (3x3 conv followed by objectness / box-regression 1x1 convs) applied
  at several pyramid levels.

* **OCR-Recognizer** — an LSTM-based sequence recognizer: a small
  convolutional feature extractor over a text-line crop followed by stacked
  bidirectional LSTM layers and a character classifier.

The exact production models are proprietary; these builders construct
representative graphs with the published structure (standard Conv2D-heavy
RPN, matmul/element-wise-heavy LSTM recognizer).  Both already map well onto
a TPU-v3-like datapath, which is exactly the role they play in the paper's
evaluation (the "worst case for FAST" workloads).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.builder import GraphBuilder
from repro.workloads.graph import Graph
from repro.workloads.resnet import _bottleneck_block

__all__ = ["build_ocr_rpn", "build_ocr_recognizer"]


def build_ocr_rpn(batch_size: int = 1, image_size: int = 800) -> Graph:
    """Build the OCR region-proposal-network graph (Mask R-CNN first stage).

    Args:
        batch_size: Inference batch size.
        image_size: Square input resolution (Mask R-CNN commonly uses ~800px).

    Returns:
        The workload graph; outputs are the per-level objectness maps.
    """
    builder = GraphBuilder("ocr-rpn", batch_size=batch_size)
    x = builder.input("images", (batch_size, image_size, image_size, 3))

    # ResNet-style backbone (trimmed to stages C2-C5).
    x = builder.conv2d(x, 64, (7, 7), stride=2, name="backbone.stem")
    x = builder.pooling(x, (3, 3), stride=2, pool_type="max", name="backbone.pool")

    stages: Tuple[Tuple[int, int], ...] = ((3, 64), (4, 128), (6, 256), (3, 512))
    in_filters = 64
    pyramid_features: List[str] = []
    for stage_idx, (num_blocks, base_filters) in enumerate(stages):
        out_filters = base_filters * 4
        for block_idx in range(num_blocks):
            stride = 2 if (block_idx == 0 and stage_idx > 0) else 1
            x = _bottleneck_block(
                builder,
                x,
                name=f"backbone.c{stage_idx + 2}.block{block_idx}",
                in_filters=in_filters,
                base_filters=base_filters,
                out_filters=out_filters,
                stride=stride,
            )
            in_filters = out_filters
        pyramid_features.append(x)

    # FPN lateral 1x1 convs + 3x3 smoothing on each level.
    fpn_levels: List[str] = []
    for level_idx, feature in enumerate(pyramid_features):
        lateral = builder.conv2d(feature, 256, (1, 1), name=f"fpn.lateral{level_idx}")
        smoothed = builder.conv2d(lateral, 256, (3, 3), name=f"fpn.output{level_idx}")
        fpn_levels.append(smoothed)

    # Shared RPN head on every pyramid level.
    outputs: List[str] = []
    num_anchors = 3
    for level_idx, feature in enumerate(fpn_levels):
        head = builder.conv2d(feature, 256, (3, 3), name=f"rpn.conv{level_idx}")
        head = builder.activation(head, "relu", name=f"rpn.relu{level_idx}")
        objectness = builder.conv2d(head, num_anchors, (1, 1), name=f"rpn.objectness{level_idx}")
        builder.conv2d(head, num_anchors * 4, (1, 1), name=f"rpn.boxes{level_idx}")
        outputs.append(objectness)

    return builder.finish(outputs=outputs)


def build_ocr_recognizer(
    batch_size: int = 1,
    sequence_length: int = 64,
    input_height: int = 32,
    lstm_units: int = 256,
    num_lstm_layers: int = 2,
    vocab_size: int = 128,
) -> Graph:
    """Build the OCR recognizer graph (convolutional frontend + stacked LSTMs).

    The LSTM is unrolled over the sequence; each step performs the four-gate
    matmul against the concatenated ``[input, hidden]`` vector followed by the
    element-wise gate math, which is the op mix that makes this workload
    vector-unit heavy.

    Args:
        batch_size: Inference batch size.
        sequence_length: Number of horizontal feature columns / time steps.
        input_height: Height of the text-line crop.
        lstm_units: Hidden size of each LSTM layer.
        num_lstm_layers: Number of stacked (bidirectional pairs collapsed)
            LSTM layers.
        vocab_size: Output character vocabulary.

    Returns:
        The workload graph; output is the per-step character logits.
    """
    builder = GraphBuilder("ocr-recognizer", batch_size=batch_size)
    image_width = sequence_length * 4
    x = builder.input("line_image", (batch_size, input_height, image_width, 1))

    # Convolutional feature extractor collapsing the height dimension.
    x = builder.conv2d(x, 64, (3, 3), stride=1, name="cnn.conv1")
    x = builder.activation(x, "relu", name="cnn.relu1")
    x = builder.pooling(x, (2, 2), stride=2, name="cnn.pool1")
    x = builder.conv2d(x, 128, (3, 3), stride=1, name="cnn.conv2")
    x = builder.activation(x, "relu", name="cnn.relu2")
    x = builder.pooling(x, (2, 2), stride=2, name="cnn.pool2")
    x = builder.conv2d(x, 256, (3, 3), stride=1, name="cnn.conv3")
    x = builder.activation(x, "relu", name="cnn.relu3")

    # Collapse to a (batch, seq, features) sequence.
    b, h, w, c = builder.shape(x)
    features = h * c
    seq = builder.reshape(x, (batch_size, w, features), name="cnn.to_sequence")

    # Stacked LSTM layers, unrolled over time.
    layer_input = seq
    input_size = features
    for layer_idx in range(num_lstm_layers):
        layer_input = _lstm_layer(
            builder,
            layer_input,
            name=f"lstm{layer_idx}",
            batch_size=batch_size,
            seq_len=w,
            input_size=input_size,
            units=lstm_units,
        )
        input_size = lstm_units

    logits = builder.matmul(layer_input, vocab_size, name="classifier")
    return builder.finish(outputs=[logits])


def _lstm_layer(
    builder: GraphBuilder,
    sequence: str,
    name: str,
    batch_size: int,
    seq_len: int,
    input_size: int,
    units: int,
) -> str:
    """One unrolled LSTM layer.

    The recurrent weight matrix is shared across steps (created once); each
    time step contributes a gate matmul plus element-wise gate operations.
    """
    weight = builder.weight(f"{name}.kernel", (input_size + units, 4 * units))
    step_outputs: List[str] = []
    for step in range(seq_len):
        step_in = builder.reshape(
            sequence, (batch_size, input_size + units), name=f"{name}.step{step}.concat"
        )
        gates = builder.matmul(
            step_in, 4 * units, name=f"{name}.step{step}.gates", weight_name=weight
        )
        gated = builder.activation(gates, "sigmoid", name=f"{name}.step{step}.gate_act")
        cell = builder.reshape(gated, (batch_size, units), name=f"{name}.step{step}.cell")
        cell = builder.activation(cell, "tanh", name=f"{name}.step{step}.tanh")
        step_outputs.append(cell)

    # Concatenate step outputs back into a sequence tensor.
    merged = builder.activation_tensor(f"{name}.output", (batch_size, seq_len, units))
    from repro.workloads.graph import Operation  # local import to avoid cycle at module load
    from repro.workloads.ops import OpType

    builder.graph.add_op(
        Operation(f"{name}.merge", OpType.CONCAT, inputs=list(step_outputs), outputs=[merged], attrs={})
    )
    return merged
