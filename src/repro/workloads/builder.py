"""Convenience builder for constructing workload graphs.

The model definition modules (EfficientNet, BERT, ResNet, OCR) use this
builder to express layers compactly.  Each helper creates the weight tensors,
the output activation tensor, and the :class:`~repro.workloads.graph.Operation`
node, wiring producer/consumer edges automatically and returning the name of
the produced activation so layers can be chained functionally.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.workloads.graph import DType, Graph, Operation, Tensor, TensorKind
from repro.workloads.ops import OpType

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Builds a :class:`Graph` layer by layer.

    All activations are NHWC for vision models and ``(batch, seq, features)``
    or ``(batch, features)`` for sequence / dense models.  Weight tensors are
    created on demand and named ``<op>.<role>``.
    """

    def __init__(self, name: str, batch_size: int = 1, dtype: DType = DType.BFLOAT16) -> None:
        self.graph = Graph(name, batch_size=batch_size)
        self.dtype = dtype
        self._counter = 0

    # ------------------------------------------------------------------
    # Tensor helpers
    # ------------------------------------------------------------------
    def _unique(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def input(self, name: str, shape: Sequence[int]) -> str:
        """Create a graph input activation."""
        tensor = Tensor(name, tuple(shape), self.dtype, TensorKind.ACTIVATION)
        self.graph.add_tensor(tensor)
        self.graph.mark_input(name)
        return name

    def activation_tensor(self, name: str, shape: Sequence[int]) -> str:
        """Create an intermediate activation tensor."""
        self.graph.add_tensor(Tensor(name, tuple(shape), self.dtype, TensorKind.ACTIVATION))
        return name

    def weight(self, name: str, shape: Sequence[int]) -> str:
        """Create a weight tensor."""
        self.graph.add_tensor(Tensor(name, tuple(shape), self.dtype, TensorKind.WEIGHT))
        return name

    def shape(self, tensor_name: str) -> Tuple[int, ...]:
        """Shape of an existing tensor."""
        return self.graph.tensor(tensor_name).shape

    def finish(self, outputs: Optional[Sequence[str]] = None) -> Graph:
        """Mark outputs, validate, and return the finished graph."""
        if outputs:
            for out in outputs:
                self.graph.mark_output(out)
        self.graph.validate()
        return self.graph

    # ------------------------------------------------------------------
    # Vision layers (NHWC)
    # ------------------------------------------------------------------
    def conv2d(
        self,
        x: str,
        out_features: int,
        kernel: Tuple[int, int],
        stride: int = 1,
        name: Optional[str] = None,
        groups: int = 1,
    ) -> str:
        """Standard 2-D convolution with 'same' padding."""
        name = name or self._unique("conv2d")
        b, h, w, c = self.shape(x)
        oh, ow = _conv_out(h, stride), _conv_out(w, stride)
        wname = self.weight(f"{name}.w", (kernel[0], kernel[1], c // groups, out_features))
        out = self.activation_tensor(f"{name}.out", (b, oh, ow, out_features))
        self.graph.add_op(
            Operation(
                name,
                OpType.CONV2D,
                inputs=[x, wname],
                outputs=[out],
                attrs={
                    "kernel": kernel,
                    "stride": stride,
                    "in_features": c,
                    "out_features": out_features,
                    "groups": groups,
                },
            )
        )
        return out

    def depthwise_conv2d(
        self,
        x: str,
        kernel: Tuple[int, int],
        stride: int = 1,
        name: Optional[str] = None,
        channel_multiplier: int = 1,
    ) -> str:
        """Depthwise convolution (per-channel filter, depth 1)."""
        name = name or self._unique("dwconv")
        b, h, w, c = self.shape(x)
        oh, ow = _conv_out(h, stride), _conv_out(w, stride)
        out_c = c * channel_multiplier
        wname = self.weight(f"{name}.w", (kernel[0], kernel[1], c, channel_multiplier))
        out = self.activation_tensor(f"{name}.out", (b, oh, ow, out_c))
        self.graph.add_op(
            Operation(
                name,
                OpType.DEPTHWISE_CONV2D,
                inputs=[x, wname],
                outputs=[out],
                attrs={
                    "kernel": kernel,
                    "stride": stride,
                    "in_features": c,
                    "out_features": out_c,
                    "channel_multiplier": channel_multiplier,
                },
            )
        )
        return out

    def pointwise_conv(self, x: str, out_features: int, name: Optional[str] = None) -> str:
        """1x1 convolution (projection / expansion)."""
        return self.conv2d(x, out_features, (1, 1), stride=1, name=name)

    def pooling(
        self,
        x: str,
        kernel: Tuple[int, int],
        stride: int,
        pool_type: str = "max",
        name: Optional[str] = None,
        global_pool: bool = False,
    ) -> str:
        """Max / average pooling; global pooling collapses H and W."""
        name = name or self._unique("pool")
        b, h, w, c = self.shape(x)
        if global_pool:
            oh, ow = 1, 1
        else:
            oh, ow = _conv_out(h, stride), _conv_out(w, stride)
        out = self.activation_tensor(f"{name}.out", (b, oh, ow, c))
        self.graph.add_op(
            Operation(
                name,
                OpType.POOLING,
                inputs=[x],
                outputs=[out],
                attrs={"kernel": kernel, "stride": stride, "pool_type": pool_type},
            )
        )
        return out

    def batchnorm(self, x: str, name: Optional[str] = None) -> str:
        """Batch normalization (inference: scale + shift)."""
        name = name or self._unique("bn")
        shape = self.shape(x)
        scale = self.weight(f"{name}.scale", (shape[-1],))
        shift = self.weight(f"{name}.shift", (shape[-1],))
        out = self.activation_tensor(f"{name}.out", shape)
        self.graph.add_op(
            Operation(name, OpType.BATCHNORM, inputs=[x, scale, shift], outputs=[out], attrs={})
        )
        return out

    # ------------------------------------------------------------------
    # Dense / sequence layers
    # ------------------------------------------------------------------
    def matmul(
        self,
        x: str,
        out_features: int,
        name: Optional[str] = None,
        weight_name: Optional[str] = None,
    ) -> str:
        """Dense layer: contract the last dimension against a weight matrix."""
        name = name or self._unique("matmul")
        shape = self.shape(x)
        in_features = shape[-1]
        wname = weight_name or self.weight(f"{name}.w", (in_features, out_features))
        out_shape = tuple(shape[:-1]) + (out_features,)
        out = self.activation_tensor(f"{name}.out", out_shape)
        self.graph.add_op(
            Operation(
                name,
                OpType.MATMUL,
                inputs=[x, wname],
                outputs=[out],
                attrs={"contracting_dim": in_features, "out_features": out_features},
            )
        )
        return out

    def einsum(
        self,
        a: str,
        b: str,
        out_shape: Sequence[int],
        contracting_dim: int,
        name: Optional[str] = None,
    ) -> str:
        """Activation x activation contraction (e.g. attention scores)."""
        name = name or self._unique("einsum")
        out = self.activation_tensor(f"{name}.out", tuple(out_shape))
        self.graph.add_op(
            Operation(
                name,
                OpType.EINSUM,
                inputs=[a, b],
                outputs=[out],
                attrs={"contracting_dim": contracting_dim},
            )
        )
        return out

    # ------------------------------------------------------------------
    # Vector ops
    # ------------------------------------------------------------------
    def _unary(self, op_type: OpType, x: str, name: Optional[str], **attrs) -> str:
        name = name or self._unique(op_type.value)
        out = self.activation_tensor(f"{name}.out", self.shape(x))
        self.graph.add_op(Operation(name, op_type, inputs=[x], outputs=[out], attrs=dict(attrs)))
        return out

    def activation(self, x: str, fn: str = "relu", name: Optional[str] = None) -> str:
        """Pointwise nonlinearity (relu, swish, sigmoid, gelu, tanh)."""
        return self._unary(OpType.ACTIVATION, x, name, fn=fn)

    def softmax(self, x: str, name: Optional[str] = None, axis: int = -1) -> str:
        """Numerically-stable softmax along ``axis``."""
        return self._unary(OpType.SOFTMAX, x, name, axis=axis)

    def layernorm(self, x: str, name: Optional[str] = None) -> str:
        """Layer normalization with learned scale/shift."""
        name = name or self._unique("layernorm")
        shape = self.shape(x)
        scale = self.weight(f"{name}.scale", (shape[-1],))
        shift = self.weight(f"{name}.shift", (shape[-1],))
        out = self.activation_tensor(f"{name}.out", shape)
        self.graph.add_op(
            Operation(name, OpType.LAYERNORM, inputs=[x, scale, shift], outputs=[out], attrs={})
        )
        return out

    def add(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Elementwise addition (residual connections)."""
        name = name or self._unique("add")
        out = self.activation_tensor(f"{name}.out", self.shape(a))
        self.graph.add_op(
            Operation(name, OpType.ELEMENTWISE_ADD, inputs=[a, b], outputs=[out], attrs={})
        )
        return out

    def multiply(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Elementwise multiplication (e.g. squeeze-excite gating)."""
        name = name or self._unique("mul")
        out = self.activation_tensor(f"{name}.out", self.shape(a))
        self.graph.add_op(
            Operation(name, OpType.ELEMENTWISE_MUL, inputs=[a, b], outputs=[out], attrs={})
        )
        return out

    def reduce_mean(self, x: str, keep_spatial: bool = False, name: Optional[str] = None) -> str:
        """Global average over the spatial dims (squeeze-excite / head pool)."""
        name = name or self._unique("reduce")
        b = self.shape(x)[0]
        c = self.shape(x)[-1]
        shape = (b, 1, 1, c) if keep_spatial else (b, c)
        out = self.activation_tensor(f"{name}.out", shape)
        self.graph.add_op(
            Operation(name, OpType.REDUCE, inputs=[x], outputs=[out], attrs={"reduce": "mean"})
        )
        return out

    def reshape(self, x: str, new_shape: Sequence[int], name: Optional[str] = None) -> str:
        """Reshape (no data movement cost in the model)."""
        name = name or self._unique("reshape")
        out = self.activation_tensor(f"{name}.out", tuple(new_shape))
        self.graph.add_op(Operation(name, OpType.RESHAPE, inputs=[x], outputs=[out], attrs={}))
        return out


def _conv_out(size: int, stride: int) -> int:
    """'Same' padding output size."""
    return int(math.ceil(size / stride))
