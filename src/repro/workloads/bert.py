"""BERT encoder graph construction.

BERT-Base (Devlin et al., 2019) stacks 12 transformer encoder layers, each
with multi-head self-attention (QKV projections, activation x activation
attention score einsum, softmax, context einsum, output projection), a
feed-forward block (two dense layers with GELU), residual connections, and
layer normalization.  The paper evaluates BERT at sequence lengths 128 and
1024; attention score/softmax cost scales quadratically with sequence length
while the projections scale linearly, which is what Figure 5 characterizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.workloads.builder import GraphBuilder
from repro.workloads.graph import Graph

__all__ = ["BertConfig", "BERT_BASE", "BERT_LARGE", "build_bert"]


@dataclass(frozen=True)
class BertConfig:
    """Hyperparameters of a BERT encoder stack."""

    num_layers: int = 12
    hidden_size: int = 768
    num_heads: int = 12
    intermediate_size: int = 3072
    vocab_size: int = 30522

    @property
    def head_dim(self) -> int:
        """Per-head dimensionality."""
        return self.hidden_size // self.num_heads


BERT_BASE = BertConfig(num_layers=12, hidden_size=768, num_heads=12, intermediate_size=3072)
BERT_LARGE = BertConfig(num_layers=24, hidden_size=1024, num_heads=16, intermediate_size=4096)


def build_bert(
    seq_len: int = 128,
    batch_size: int = 1,
    config: BertConfig = BERT_BASE,
    name: str = None,
) -> Graph:
    """Build the inference graph of a BERT encoder.

    Args:
        seq_len: Input token sequence length.
        batch_size: Inference batch size.
        config: Encoder hyperparameters (defaults to BERT-Base).
        name: Optional graph name (defaults to ``bert-seq<seq_len>``).

    Returns:
        The workload graph, output being the final hidden states.
    """
    if seq_len <= 0:
        raise ValueError("sequence length must be positive")
    graph_name = name or f"bert-seq{seq_len}"
    builder = GraphBuilder(graph_name, batch_size=batch_size)
    hidden = config.hidden_size

    # Embedding lookup output: (batch, seq, hidden).  We model the embedding
    # table as a weight tensor read once per inference.
    builder.weight("embeddings.word", (config.vocab_size, hidden))
    x = builder.input("embedding_output", (batch_size, seq_len, hidden))
    x = builder.layernorm(x, name="embeddings.layernorm")

    for layer_idx in range(config.num_layers):
        x = _encoder_layer(builder, x, config, seq_len, batch_size, f"layer{layer_idx}")

    return builder.finish(outputs=[x])


def _encoder_layer(
    builder: GraphBuilder,
    x: str,
    config: BertConfig,
    seq_len: int,
    batch_size: int,
    name: str,
) -> str:
    """One transformer encoder layer."""
    hidden = config.hidden_size
    heads = config.num_heads
    head_dim = config.head_dim
    residual = x

    # QKV projections: activation x weight matmuls.
    q = builder.matmul(x, hidden, name=f"{name}.attention.query")
    k = builder.matmul(x, hidden, name=f"{name}.attention.key")
    v = builder.matmul(x, hidden, name=f"{name}.attention.value")

    # Attention scores: (B, heads, S, S) = Q x K^T — activation x activation.
    scores = builder.einsum(
        q,
        k,
        out_shape=(batch_size, heads, seq_len, seq_len),
        contracting_dim=head_dim,
        name=f"{name}.attention.scores",
    )
    probs = builder.softmax(scores, name=f"{name}.attention.softmax")

    # Context: (B, heads, S, head_dim) = probs x V — activation x activation.
    context = builder.einsum(
        probs,
        v,
        out_shape=(batch_size, heads, seq_len, head_dim),
        contracting_dim=seq_len,
        name=f"{name}.attention.context",
    )
    context = builder.reshape(context, (batch_size, seq_len, hidden), name=f"{name}.attention.merge")

    # Output projection + residual + layernorm.
    attn_out = builder.matmul(context, hidden, name=f"{name}.attention.output")
    attn_out = builder.add(attn_out, residual, name=f"{name}.attention.residual")
    attn_out = builder.layernorm(attn_out, name=f"{name}.attention.layernorm")

    # Feed-forward block.
    ff_residual = attn_out
    ff = builder.matmul(attn_out, config.intermediate_size, name=f"{name}.ffn.intermediate")
    ff = builder.activation(ff, "gelu", name=f"{name}.ffn.gelu")
    ff = builder.matmul(ff, hidden, name=f"{name}.ffn.output")
    ff = builder.add(ff, ff_residual, name=f"{name}.ffn.residual")
    ff = builder.layernorm(ff, name=f"{name}.ffn.layernorm")
    return ff


def op_component(op_name: str) -> str:
    """Classify a BERT op name into the Figure 5 components.

    Returns one of ``qkv_projection``, ``softmax``, ``self_attention``,
    ``feed_forward``, or ``other``.
    """
    if ".attention.query" in op_name or ".attention.key" in op_name or ".attention.value" in op_name:
        return "qkv_projection"
    if ".attention.softmax" in op_name:
        return "softmax"
    if ".attention.scores" in op_name or ".attention.context" in op_name:
        return "self_attention"
    if ".ffn." in op_name or ".attention.output" in op_name:
        return "feed_forward"
    return "other"
