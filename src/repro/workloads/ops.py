"""Operation taxonomy and per-op FLOP accounting.

FAST divides ops into two classes: *matrix* ops (Conv2D, DepthwiseConv2D,
MatMul, Einsum) that are scheduled onto the PE systolic arrays through the
Timeloop-style mapper, and *vector* ops (softmax, layernorm, element-wise,
pooling, ...) that execute on the per-PE Vector Processing Unit (VPU).  This
module defines the op vocabulary and the FLOP formulas for each op type; byte
accounting lives on the tensors themselves.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.workloads.graph import Operation, Tensor

__all__ = [
    "OpType",
    "MATRIX_OP_TYPES",
    "VECTOR_OP_TYPES",
    "is_matrix_op",
    "op_flops",
]


class OpType(Enum):
    """Kinds of operations understood by the simulator."""

    # Matrix ops — run on the systolic array.
    CONV2D = "conv2d"
    DEPTHWISE_CONV2D = "depthwise_conv2d"
    MATMUL = "matmul"
    EINSUM = "einsum"

    # Vector ops — run on the VPU.
    ELEMENTWISE_ADD = "elementwise_add"
    ELEMENTWISE_MUL = "elementwise_mul"
    ACTIVATION = "activation"  # relu / swish / sigmoid / gelu / tanh
    SOFTMAX = "softmax"
    LAYERNORM = "layernorm"
    BATCHNORM = "batchnorm"
    POOLING = "pooling"
    REDUCE = "reduce"
    TRANSPOSE = "transpose"
    RESHAPE = "reshape"
    CONCAT = "concat"
    SLICE = "slice"


MATRIX_OP_TYPES = frozenset(
    {OpType.CONV2D, OpType.DEPTHWISE_CONV2D, OpType.MATMUL, OpType.EINSUM}
)

VECTOR_OP_TYPES = frozenset(set(OpType) - MATRIX_OP_TYPES)

# FLOPs charged per output element for vector ops.  These approximate the
# number of VPU lane-operations needed per element, including transcendental
# expansion cost (exp/erf are several VPU ops on real hardware).
_VECTOR_FLOPS_PER_ELEMENT: Dict[OpType, float] = {
    OpType.ELEMENTWISE_ADD: 1.0,
    OpType.ELEMENTWISE_MUL: 1.0,
    OpType.ACTIVATION: 2.0,  # transcendentals use the VPU's function unit
    OpType.SOFTMAX: 6.0,  # max pass + exp + sum + divide (3-pass baseline)
    OpType.LAYERNORM: 6.0,
    OpType.BATCHNORM: 1.0,  # folded to a single scale-and-shift FMA at inference
    OpType.POOLING: 1.0,
    OpType.REDUCE: 1.0,
    OpType.TRANSPOSE: 0.0,
    OpType.RESHAPE: 0.0,
    OpType.CONCAT: 0.0,
    OpType.SLICE: 0.0,
}


def is_matrix_op(op_type: OpType) -> bool:
    """True if the op type is scheduled on the systolic array."""
    return op_type in MATRIX_OP_TYPES


def op_flops(op: "Operation", tensors: Dict[str, "Tensor"]) -> int:
    """Compute the FLOPs performed by ``op`` given its tensor shapes.

    Matrix ops use the standard multiply-accumulate formulas (2 FLOPs per
    MAC); vector ops are charged a per-element cost from
    ``_VECTOR_FLOPS_PER_ELEMENT``.
    """
    if op.op_type is OpType.CONV2D:
        return _conv2d_flops(op, tensors)
    if op.op_type is OpType.DEPTHWISE_CONV2D:
        return _depthwise_conv2d_flops(op, tensors)
    if op.op_type is OpType.MATMUL:
        return _matmul_flops(op, tensors)
    if op.op_type is OpType.EINSUM:
        return _einsum_flops(op, tensors)
    return _vector_flops(op, tensors)


def _output_elements(op: "Operation", tensors: Dict[str, "Tensor"]) -> int:
    return sum(tensors[name].num_elements for name in op.outputs)


def _vector_flops(op: "Operation", tensors: Dict[str, "Tensor"]) -> int:
    per_element = _VECTOR_FLOPS_PER_ELEMENT.get(op.op_type, 1.0)
    if op.op_type is OpType.POOLING:
        # Pooling reads a kernel-sized window per output element.
        kernel = op.attrs.get("kernel", (1, 1))
        per_element = float(kernel[0] * kernel[1])
    return int(math.ceil(per_element * _output_elements(op, tensors)))


def _conv2d_flops(op: "Operation", tensors: Dict[str, "Tensor"]) -> int:
    """2 * B * OH * OW * OF * IF * KH * KW."""
    out = tensors[op.outputs[0]]
    b, oh, ow, of = _nhwc(out.shape)
    kh, kw = op.attrs["kernel"]
    in_features = op.attrs["in_features"]
    groups = int(op.attrs.get("groups", 1))
    return 2 * b * oh * ow * of * (in_features // groups) * kh * kw


def _depthwise_conv2d_flops(op: "Operation", tensors: Dict[str, "Tensor"]) -> int:
    """2 * B * OH * OW * C * KH * KW (filter depth is 1)."""
    out = tensors[op.outputs[0]]
    b, oh, ow, c = _nhwc(out.shape)
    kh, kw = op.attrs["kernel"]
    multiplier = int(op.attrs.get("channel_multiplier", 1))
    return 2 * b * oh * ow * c * kh * kw * multiplier


def _matmul_flops(op: "Operation", tensors: Dict[str, "Tensor"]) -> int:
    """2 * M * N * K, with leading batch dims folded into M."""
    out = tensors[op.outputs[0]]
    k = int(op.attrs["contracting_dim"])
    n = out.shape[-1]
    m = out.num_elements // n
    return 2 * m * n * k


def _einsum_flops(op: "Operation", tensors: Dict[str, "Tensor"]) -> int:
    """2 * (product of output dims) * (contracting dimension size)."""
    out = tensors[op.outputs[0]]
    k = int(op.attrs["contracting_dim"])
    return 2 * out.num_elements * k


def _nhwc(shape) -> tuple:
    """Interpret a shape as NHWC, padding missing leading dims with 1."""
    if len(shape) == 4:
        return shape
    if len(shape) == 3:
        return (1,) + tuple(shape)
    if len(shape) == 2:
        return (shape[0], 1, 1, shape[1])
    raise ValueError(f"cannot interpret shape {shape} as NHWC")
