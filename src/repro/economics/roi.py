"""Return-on-investment model for specialized accelerators (Eq. 1-2).

ROI compares the savings of serving the same traffic on a more cost-efficient
accelerator against the one-time engineering, mask, and IP cost of building
it.  An ROI above 1 is profitable; Figure 6 plots ROI against deployment
volume for hypothetical Perf/TCO improvements, and Table 4 inverts the
relationship to find the deployment volume needed to hit an ROI target for
each FAST-generated design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.economics.tco import CostParameters, DGX_A100_BASELINE, total_cost_of_ownership

__all__ = ["NreParameters", "DEFAULT_NRE", "RoiModel"]


@dataclass(frozen=True)
class NreParameters:
    """One-time (non-recurring engineering) cost of building an accelerator.

    Attributes:
        design_engineer_years: Aggregate engineering-years to design the
            accelerator and its system software (the paper averages Simba's
            12.5 and Tesla FSD's 117 to get 65).
        cost_per_engineer_year: Fully-loaded cost per engineer per year
            ($240k median SWE compensation with 65% overhead).
        mask_cost: Wafer mask set cost for a sub-10nm process ($).
        ip_licensing_cost: IP licensing cost, e.g. the DRAM PHY ($).
    """

    design_engineer_years: float = 65.0
    cost_per_engineer_year: float = 240_000.0 * 1.65
    mask_cost: float = 12_000_000.0
    ip_licensing_cost: float = 7_500_000.0

    @property
    def total(self) -> float:
        """Total one-time cost ($)."""
        return (
            self.design_engineer_years * self.cost_per_engineer_year
            + self.mask_cost
            + self.ip_licensing_cost
        )


DEFAULT_NRE = NreParameters()


class RoiModel:
    """Computes ROI as a function of deployment volume and Perf/TCO gain."""

    def __init__(
        self,
        baseline: CostParameters = DGX_A100_BASELINE,
        nre: NreParameters = DEFAULT_NRE,
    ) -> None:
        self.baseline = baseline
        self.nre = nre

    # ------------------------------------------------------------------
    def roi(self, num_accelerators: int, perf_per_tco_speedup: float) -> float:
        """ROI of replacing ``num_accelerators`` baseline units (Eq. 2).

        Args:
            num_accelerators: Baseline accelerators currently serving the
                workload (the new deployment serves the same aggregate QPS).
            perf_per_tco_speedup: Perf/TCO improvement ``S`` of the new
                accelerator relative to the baseline (must exceed 1 for any
                savings).
        """
        if perf_per_tco_speedup <= 0:
            raise ValueError("Perf/TCO speedup must be positive")
        tco_old = total_cost_of_ownership(num_accelerators, self.baseline)
        savings = tco_old * (perf_per_tco_speedup - 1.0)
        investment = self.nre.total * perf_per_tco_speedup
        return savings / investment

    def deployment_volume_for_roi(
        self, target_roi: float, perf_per_tco_speedup: float
    ) -> int:
        """Smallest deployment volume reaching ``target_roi`` (Table 4).

        A design with no Perf/TCO advantage never recoups its cost; the
        returned volume is a sentinel larger than any realistic deployment.
        """
        if perf_per_tco_speedup <= 1.0:
            return 10**15 if target_roi > 0 else 0
        per_accelerator_tco = self.baseline.lifetime_cost_per_accelerator
        required_tco = (
            target_roi * self.nre.total * perf_per_tco_speedup / (perf_per_tco_speedup - 1.0)
        )
        return int(math.ceil(required_tco / per_accelerator_tco))

    def breakeven_volume(self, perf_per_tco_speedup: float) -> int:
        """Deployment volume at which ROI reaches 1."""
        return self.deployment_volume_for_roi(1.0, perf_per_tco_speedup)

    # ------------------------------------------------------------------
    def roi_curve(self, volumes, perf_per_tco_speedup: float):
        """ROI evaluated at each deployment volume (Figure 6 series)."""
        return [self.roi(int(n), perf_per_tco_speedup) for n in volumes]
