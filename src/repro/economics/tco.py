"""Total cost of ownership (TCO) model for accelerator deployments.

The paper's ROI analysis (Section 5.1) estimates the return of deploying a
specialized accelerator against the TCO of the currently-deployed baseline.
Because real TCO data is proprietary, the paper — and this reproduction —
uses the NVIDIA DGX A100 320GB platform as the baseline, with public pricing
and the May-2021 average US commercial electricity rate.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostParameters", "DGX_A100_BASELINE", "total_cost_of_ownership"]

_HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class CostParameters:
    """Per-accelerator cost parameters of a deployment baseline.

    Attributes:
        capital_cost_per_accelerator: Purchase price per accelerator,
            including the amortized share of the host system ($).
        power_kw_per_accelerator: Wall power per accelerator including its
            share of the host machine (kW).
        electricity_cost_per_kwh: Electricity price ($/kWh).
        datacenter_pue: Power usage effectiveness multiplier (cooling and
            distribution overhead).
        deployment_lifetime_years: Accelerator deployment lifetime.
    """

    capital_cost_per_accelerator: float
    power_kw_per_accelerator: float
    electricity_cost_per_kwh: float = 0.1084
    datacenter_pue: float = 1.5
    deployment_lifetime_years: float = 3.0

    @property
    def operational_cost_per_accelerator_per_year(self) -> float:
        """Electricity cost per accelerator per year ($)."""
        return (
            self.power_kw_per_accelerator
            * _HOURS_PER_YEAR
            * self.electricity_cost_per_kwh
            * self.datacenter_pue
        )

    @property
    def lifetime_cost_per_accelerator(self) -> float:
        """Capital plus lifetime operational cost per accelerator ($)."""
        return (
            self.capital_cost_per_accelerator
            + self.deployment_lifetime_years * self.operational_cost_per_accelerator_per_year
        )


#: NVIDIA DGX A100 320GB baseline: $199,000 MSRP and a 6.5 kW system
#: containing 8 A100 accelerators (values quoted in Section 5.1).
DGX_A100_BASELINE = CostParameters(
    capital_cost_per_accelerator=199_000.0 / 8.0,
    power_kw_per_accelerator=6.5 / 8.0,
)


def total_cost_of_ownership(num_accelerators: int, params: CostParameters = DGX_A100_BASELINE) -> float:
    """TCO of deploying ``num_accelerators`` for their lifetime (Eq. 1)."""
    if num_accelerators < 0:
        raise ValueError("number of accelerators must be non-negative")
    return num_accelerators * params.lifetime_cost_per_accelerator
