"""Economics: TCO and ROI models for specialized accelerator deployments."""

from repro.economics.roi import DEFAULT_NRE, NreParameters, RoiModel
from repro.economics.tco import CostParameters, DGX_A100_BASELINE, total_cost_of_ownership

__all__ = [
    "CostParameters",
    "DEFAULT_NRE",
    "DGX_A100_BASELINE",
    "NreParameters",
    "RoiModel",
    "total_cost_of_ownership",
]
