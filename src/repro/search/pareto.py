"""Pareto-frontier tracking for multi-objective design-space views.

Figure 12 characterizes the relationship between EfficientNet-B7 step time,
TDP, and area: every evaluated design is a point and the interesting set is
the Pareto frontier (no other design is at least as good on every axis and
strictly better on one).  This module provides a small utility for
maintaining that frontier over arbitrary objective tuples where *lower is
better* on every axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["ParetoPoint", "ParetoFront", "dominates"]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective tuple ``a`` Pareto-dominates ``b`` (lower is better)."""
    if len(a) != len(b):
        raise ValueError("objective tuples must have the same length")
    at_least_as_good = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


@dataclass(frozen=True)
class ParetoPoint:
    """A design point with its objective tuple and free-form payload."""

    objectives: Tuple[float, ...]
    payload: Dict[str, object] = field(default_factory=dict)


class ParetoFront:
    """Maintains the set of non-dominated points."""

    def __init__(self) -> None:
        self._points: List[ParetoPoint] = []
        self._all_points: List[ParetoPoint] = []

    def add(self, objectives: Sequence[float], payload: Dict[str, object] = None) -> bool:
        """Add a point; returns True if it joins the frontier."""
        point = ParetoPoint(tuple(float(x) for x in objectives), dict(payload or {}))
        self._all_points.append(point)
        if any(dominates(existing.objectives, point.objectives) for existing in self._points):
            return False
        self._points = [
            existing
            for existing in self._points
            if not dominates(point.objectives, existing.objectives)
        ]
        self._points.append(point)
        return True

    def add_batch(
        self,
        batch: Iterable[Tuple[Sequence[float], Optional[Dict[str, object]]]],
    ) -> int:
        """Add ``(objectives, payload)`` pairs; returns how many joined the frontier.

        Convenience for the batched search runtime: a whole batch of trial
        outcomes can be folded into the frontier in one call.
        """
        joined = 0
        for objectives, payload in batch:
            if self.add(objectives, payload):
                joined += 1
        return joined

    def merge(self, other: "ParetoFront") -> "ParetoFront":
        """Fold another frontier into this one (for sharded/parallel sweeps).

        All of ``other``'s points (including dominated ones) are replayed so
        ``all_points`` stays the union; returns ``self`` for chaining.
        """
        for point in other.all_points:
            self.add(point.objectives, point.payload)
        return self

    @property
    def points(self) -> List[ParetoPoint]:
        """Current non-dominated points (unsorted)."""
        return list(self._points)

    @property
    def all_points(self) -> List[ParetoPoint]:
        """Every point ever added (for scatter plots)."""
        return list(self._all_points)

    def sorted_by(self, axis: int) -> List[ParetoPoint]:
        """Frontier points sorted along one objective axis."""
        return sorted(self._points, key=lambda p: p.objectives[axis])

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, objectives: Sequence[float]) -> bool:
        key = tuple(float(x) for x in objectives)
        return any(p.objectives == key for p in self._points)
