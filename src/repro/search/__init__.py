"""Black-box optimizers and multi-objective utilities (the Vizier substitute)."""

from repro.search.annealing import SimulatedAnnealingOptimizer
from repro.search.bayesian import BayesianOptimizer
from repro.search.constrained import SafeSearchOptimizer
from repro.search.coordinate import CoordinateDescentOptimizer
from repro.search.evolutionary import LinearCombinationSwarmOptimizer
from repro.search.optimizer import Observation, Optimizer
from repro.search.pareto import ParetoFront, ParetoPoint, dominates
from repro.search.random_search import RandomSearchOptimizer
from repro.search.transfer import TransferWarmStartOptimizer, top_configurations

__all__ = [
    "BayesianOptimizer",
    "CoordinateDescentOptimizer",
    "LinearCombinationSwarmOptimizer",
    "Observation",
    "Optimizer",
    "ParetoFront",
    "ParetoPoint",
    "RandomSearchOptimizer",
    "SafeSearchOptimizer",
    "SimulatedAnnealingOptimizer",
    "TransferWarmStartOptimizer",
    "dominates",
    "make_optimizer",
    "top_configurations",
]


def make_optimizer(name: str, space, seed: int = 0) -> Optimizer:
    """Construct an optimizer by name.

    Recognized names: ``random``, ``bayesian``, ``lcs``, ``annealing``,
    ``coordinate``.  Prefix any of them with ``safe:`` to wrap it in
    :class:`SafeSearchOptimizer` (e.g. ``safe:lcs``).
    """
    name = name.lower()
    if name.startswith("safe:"):
        return SafeSearchOptimizer(space, seed=seed, inner=name.split(":", 1)[1])
    if name in ("random", "random_search"):
        return RandomSearchOptimizer(space, seed=seed)
    if name in ("bayesian", "gp", "bo"):
        return BayesianOptimizer(space, seed=seed)
    if name in ("lcs", "evolutionary", "swarm"):
        return LinearCombinationSwarmOptimizer(space, seed=seed)
    if name in ("annealing", "sa", "simulated_annealing"):
        return SimulatedAnnealingOptimizer(space, seed=seed)
    if name in ("coordinate", "cd", "coordinate_descent"):
        return CoordinateDescentOptimizer(space, seed=seed)
    raise ValueError(f"unknown optimizer {name!r}")
