"""Black-box optimizer interface (the Vizier substitute).

All optimizers implement an ask/tell interface over the categorical datapath
search space: ``ask`` proposes the next parameter assignment to evaluate and
``tell`` reports the measured objective (lower is better — the framework
minimizes, e.g. negative Perf/TDP) together with a feasibility flag covering
the area/TDP constraints and schedule failures (Eq. 4-5).  Infeasible trials
carry no objective signal other than "avoid this"; this mirrors Vizier's
safe-search handling of constraint violations.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.hardware.search_space import DatapathSearchSpace, ParameterValues

__all__ = ["Observation", "Optimizer"]


@dataclass
class Observation:
    """One evaluated trial."""

    params: ParameterValues
    objective: float
    feasible: bool
    trial_index: int
    metadata: dict = field(default_factory=dict)


class Optimizer(ABC):
    """Base class for black-box optimizers over the datapath search space."""

    def __init__(self, space: DatapathSearchSpace, seed: int = 0) -> None:
        self.space = space
        self.rng = np.random.default_rng(seed)
        self.observations: List[Observation] = []

    # ------------------------------------------------------------------
    @abstractmethod
    def ask(self) -> ParameterValues:
        """Propose the next parameter assignment to evaluate."""

    def ask_batch(self, n: int) -> List[ParameterValues]:
        """Propose ``n`` parameter assignments in one call.

        Batch proposals are generated *before* any of their outcomes are
        known: the runtime evaluates the whole batch and only then replays
        the results through :meth:`tell` in proposal order.  The base
        implementation simply repeats :meth:`ask`; optimizers with a natural
        batch move (populations, neighborhoods, sweep queues, acquisition
        maximization) override it to produce the batch in a single pass.
        Because no tells are interleaved, a native batch must match what
        ``n`` repeated asks would produce *under deferred feedback* — or
        document (and test) where it intentionally differs.
        """
        return [self.ask() for _ in range(max(0, int(n)))]

    def tell(
        self,
        params: ParameterValues,
        objective: float,
        feasible: bool = True,
        metadata: Optional[dict] = None,
    ) -> Observation:
        """Report the outcome of evaluating ``params``."""
        observation = Observation(
            params=dict(params),
            objective=float(objective),
            feasible=feasible,
            trial_index=len(self.observations),
            metadata=metadata or {},
        )
        self.observations.append(observation)
        return observation

    # ------------------------------------------------------------------
    def observe_external_best(
        self, objective: float, params: Optional[ParameterValues] = None
    ) -> None:
        """Learn of a better result found *outside* this optimizer's run.

        The cross-shard exchange (:mod:`repro.runtime.exchange`) calls this
        between batches with the best (minimized) objective — and, when
        available, the parameters — any other shard has published.  The
        default is a no-op: unguided optimizers (random, grid-like sweeps)
        gain nothing from external scores.  Guided optimizers override it —
        annealing adopts a better external incumbent, Bayesian EI tightens
        its incumbent ``best_y`` — and must stay deterministic: the hook may
        not consume RNG state, so a run that never receives external bests
        is bit-for-bit identical to one without an exchange attached.
        """

    # ------------------------------------------------------------------
    # Checkpoint hooks (see repro.runtime.checkpoint).  Most optimizers
    # derive their internal state entirely from the observation log plus the
    # RNG, which the checkpoint already captures; optimizers with ask-side
    # state that ``tell`` replay cannot rebuild (sweep queues, incumbents
    # accepted with random draws) override these with JSON-compatible data.
    # ------------------------------------------------------------------
    def extra_checkpoint_state(self) -> dict:
        """JSON-compatible state beyond observations + RNG (default: none)."""
        return {}

    def restore_extra_checkpoint_state(self, state: dict) -> None:
        """Restore :meth:`extra_checkpoint_state` output (default: no-op)."""

    # ------------------------------------------------------------------
    @property
    def num_trials(self) -> int:
        """Number of completed trials."""
        return len(self.observations)

    @property
    def feasible_observations(self) -> List[Observation]:
        """Trials that satisfied all constraints."""
        return [obs for obs in self.observations if obs.feasible and math.isfinite(obs.objective)]

    def best_observation(self) -> Optional[Observation]:
        """Best (lowest-objective) feasible trial so far."""
        feasible = self.feasible_observations
        if not feasible:
            return None
        return min(feasible, key=lambda obs: obs.objective)

    def best_objective_curve(self) -> List[float]:
        """Best-so-far objective after each trial (for convergence plots)."""
        curve: List[float] = []
        best = math.inf
        for obs in self.observations:
            if obs.feasible and obs.objective < best:
                best = obs.objective
            curve.append(best)
        return curve
