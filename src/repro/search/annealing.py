"""Simulated-annealing optimizer over the datapath search space.

Simulated annealing is a classic single-point metaheuristic: it keeps one
incumbent configuration, proposes a small mutation of it each trial, and
accepts worse proposals with a probability that decays with a temperature
schedule.  The paper's Vizier study (Figure 11) compares Bayesian, random,
and LCS heuristics; annealing is provided as an additional, cheap baseline
that is often competitive on categorical spaces like Table 3 and is useful
for ablating the choice of black-box optimizer.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.search.optimizer import Observation, Optimizer

__all__ = ["SimulatedAnnealingOptimizer"]


class SimulatedAnnealingOptimizer(Optimizer):
    """Single-incumbent optimizer with a Metropolis acceptance rule.

    The acceptance test uses the *relative* objective degradation so the
    temperature schedule does not need to know the objective's scale
    (objectives here are negated Perf/TDP scores whose magnitude varies by
    orders of magnitude across workloads).
    """

    def __init__(
        self,
        space: DatapathSearchSpace,
        seed: int = 0,
        initial_temperature: float = 0.25,
        cooling_rate: float = 0.97,
        min_temperature: float = 1e-3,
        num_initial_random: int = 8,
        max_mutations: int = 3,
    ) -> None:
        super().__init__(space, seed)
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        if not 0.0 < cooling_rate <= 1.0:
            raise ValueError("cooling_rate must be in (0, 1]")
        self.initial_temperature = initial_temperature
        self.cooling_rate = cooling_rate
        self.min_temperature = min_temperature
        self.num_initial_random = num_initial_random
        self.max_mutations = max_mutations
        self._incumbent: Optional[ParameterValues] = None
        self._incumbent_objective = math.inf

    # ------------------------------------------------------------------
    @property
    def temperature(self) -> float:
        """Current annealing temperature."""
        cooled = self.initial_temperature * self.cooling_rate**self.num_trials
        return max(cooled, self.min_temperature)

    def ask(self) -> ParameterValues:
        """Propose a mutation of the incumbent (or a random point early on)."""
        if self._incumbent is None or self.num_trials < self.num_initial_random:
            return self.space.sample(self.rng)
        # Hotter temperatures explore with larger moves; cold ones fine-tune.
        hot_fraction = self.temperature / self.initial_temperature
        num_mutations = 1 + int(round(hot_fraction * (self.max_mutations - 1)))
        return self.space.mutate(self._incumbent, self.rng, num_mutations=num_mutations)

    def ask_batch(self, n: int) -> List[ParameterValues]:
        """Propose a neighborhood of ``n`` mutations around the incumbent.

        The temperature (and hence the mutation width) is computed once for
        the whole batch.  Under deferred feedback this is identical to ``n``
        repeated asks — the incumbent and trial count cannot change between
        asks of one batch — but differs from interleaved ask/tell, where an
        accepted move would recentre the neighborhood mid-batch.
        """
        n = max(0, int(n))
        if self._incumbent is None or self.num_trials < self.num_initial_random:
            return [self.space.sample(self.rng) for _ in range(n)]
        hot_fraction = self.temperature / self.initial_temperature
        num_mutations = 1 + int(round(hot_fraction * (self.max_mutations - 1)))
        return [
            self.space.mutate(self._incumbent, self.rng, num_mutations=num_mutations)
            for _ in range(n)
        ]

    def tell(
        self,
        params: ParameterValues,
        objective: float,
        feasible: bool = True,
        metadata: Optional[dict] = None,
    ) -> Observation:
        """Record the trial and apply the Metropolis acceptance rule."""
        observation = super().tell(params, objective, feasible=feasible, metadata=metadata)
        if not feasible or not math.isfinite(objective):
            return observation
        if self._incumbent is None or objective < self._incumbent_objective:
            self._accept(params, objective)
            return observation
        # Worse but maybe accepted: relative degradation vs. temperature.
        scale = abs(self._incumbent_objective) + 1e-12
        delta = (objective - self._incumbent_objective) / scale
        if self.rng.random() < math.exp(-delta / self.temperature):
            self._accept(params, objective)
        return observation

    # ------------------------------------------------------------------
    def extra_checkpoint_state(self) -> dict:
        """The incumbent is chosen with random Metropolis draws, so ``tell``
        replay with a fresh RNG can land on a different one — save it."""
        from repro.reporting.serialization import params_to_jsonable

        return {
            "incumbent": (
                params_to_jsonable(self._incumbent) if self._incumbent is not None else None
            ),
            "incumbent_objective": self._incumbent_objective,
        }

    def restore_extra_checkpoint_state(self, state: dict) -> None:
        from repro.reporting.serialization import params_from_jsonable

        if not state:
            return
        incumbent = state["incumbent"]
        self._incumbent = (
            params_from_jsonable(incumbent, self.space) if incumbent is not None else None
        )
        self._incumbent_objective = float(state["incumbent_objective"])

    def observe_external_best(
        self, objective: float, params: Optional[ParameterValues] = None
    ) -> None:
        """Adopt a better incumbent found by another shard (exchange hook).

        Adoption is deterministic — no Metropolis draw, no RNG use — so a run
        that receives no external bests is identical to an exchange-free run.
        Without parameters a score alone cannot recenter the neighborhood,
        so it is ignored.
        """
        if params is None or not math.isfinite(objective):
            return
        if self._incumbent is None or objective < self._incumbent_objective:
            self._accept(params, objective)

    def _accept(self, params: ParameterValues, objective: float) -> None:
        self._incumbent = dict(params)
        self._incumbent_objective = objective

    @property
    def incumbent(self) -> Optional[ParameterValues]:
        """The currently accepted configuration (not necessarily the best seen)."""
        return dict(self._incumbent) if self._incumbent is not None else None
