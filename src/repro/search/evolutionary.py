"""Linear Combination Swarm (LCS) style evolutionary optimizer.

Vizier's LCS heuristic (Golovin et al., "Black box optimization via a
bayesian-optimized genetic algorithm") maintains a population and produces
children by linearly combining parent encodings plus mutation.  The paper
finds LCS outperforms the default Bayesian algorithm once trials exceed ~2000
(Figure 11).  This implementation keeps an elite population in the normalized
encoding space, generates children as convex combinations of two parents
(optionally extrapolated, the "linear combination" move), decodes back to the
categorical space, and applies a small number of categorical mutations.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.search.optimizer import Observation, Optimizer

__all__ = ["LinearCombinationSwarmOptimizer"]


class LinearCombinationSwarmOptimizer(Optimizer):
    """Population-based optimizer using linear-combination crossover."""

    def __init__(
        self,
        space: DatapathSearchSpace,
        seed: int = 0,
        population_size: int = 24,
        num_initial_random: int = 24,
        mutation_probability: float = 0.6,
        extrapolation_scale: float = 0.3,
    ) -> None:
        super().__init__(space, seed)
        self.population_size = population_size
        self.num_initial_random = num_initial_random
        self.mutation_probability = mutation_probability
        self.extrapolation_scale = extrapolation_scale

    # ------------------------------------------------------------------
    def ask(self) -> ParameterValues:
        """Propose the next configuration."""
        population = self._population()
        if len(population) < 2 or self.num_trials < self.num_initial_random:
            return self.space.sample(self.rng)

        parent_a, parent_b = self._select_parents(population)
        child_vector = self._linear_combination(
            self.space.encode(parent_a.params), self.space.encode(parent_b.params)
        )
        child = self.space.decode(child_vector)
        if self.rng.random() < self.mutation_probability:
            child = self.space.mutate(child, self.rng, num_mutations=int(self.rng.integers(1, 3)))
        return child

    def ask_batch(self, n: int) -> List[ParameterValues]:
        """Propose one generation of ``n`` children from the current population.

        The elite population is ranked once and all ``n`` children are bred
        from it — the classic generational move.  Under deferred feedback
        this consumes the RNG exactly as ``n`` repeated asks would (the
        population cannot change between asks of one batch), so the batch
        trajectory is identical; it differs from *interleaved* ask/tell,
        where each tell could promote a new parent mid-batch.
        """
        n = max(0, int(n))
        population = self._population()
        if len(population) < 2 or self.num_trials < self.num_initial_random:
            return [self.space.sample(self.rng) for _ in range(n)]
        children: List[ParameterValues] = []
        for _ in range(n):
            parent_a, parent_b = self._select_parents(population)
            child_vector = self._linear_combination(
                self.space.encode(parent_a.params), self.space.encode(parent_b.params)
            )
            child = self.space.decode(child_vector)
            if self.rng.random() < self.mutation_probability:
                child = self.space.mutate(
                    child, self.rng, num_mutations=int(self.rng.integers(1, 3))
                )
            children.append(child)
        return children

    # ------------------------------------------------------------------
    def _population(self) -> List[Observation]:
        feasible = self.feasible_observations
        feasible.sort(key=lambda obs: obs.objective)
        return feasible[: self.population_size]

    def _select_parents(self, population: List[Observation]):
        """Rank-weighted tournament selection of two distinct parents."""
        ranks = np.arange(len(population), 0, -1, dtype=float)
        probabilities = ranks / ranks.sum()
        indices = self.rng.choice(len(population), size=2, replace=False, p=probabilities)
        return population[int(indices[0])], population[int(indices[1])]

    def _linear_combination(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Convex (possibly extrapolated) combination of two parent encodings."""
        weight = self.rng.uniform(-self.extrapolation_scale, 1.0 + self.extrapolation_scale)
        child = weight * a + (1.0 - weight) * b
        return np.clip(child, 0.0, 1.0)
