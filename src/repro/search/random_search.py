"""Uniform random search baseline (the "random sampling" curve of Figure 11)."""

from __future__ import annotations

from typing import List

from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.search.optimizer import Optimizer

__all__ = ["RandomSearchOptimizer"]


class RandomSearchOptimizer(Optimizer):
    """Samples the search space uniformly at random, ignoring feedback."""

    def ask(self) -> ParameterValues:
        """Propose a uniformly random configuration."""
        return self.space.sample(self.rng)

    def ask_batch(self, n: int) -> List[ParameterValues]:
        """Propose ``n`` i.i.d. uniform samples in one call.

        Random search ignores feedback, so the native batch is exactly the
        sequence ``n`` repeated asks would draw — including under
        interleaved tells.  Routed through :meth:`ask` so subclasses that
        override the single-proposal rule keep their behaviour in batches.
        """
        return [self.ask() for _ in range(max(0, int(n)))]
