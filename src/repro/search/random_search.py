"""Uniform random search baseline (the "random sampling" curve of Figure 11)."""

from __future__ import annotations

from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.search.optimizer import Optimizer

__all__ = ["RandomSearchOptimizer"]


class RandomSearchOptimizer(Optimizer):
    """Samples the search space uniformly at random, ignoring feedback."""

    def ask(self) -> ParameterValues:
        """Propose a uniformly random configuration."""
        return self.space.sample(self.rng)
