"""Coordinate-descent (greedy per-parameter sweep) optimizer.

The Table 3 search space is a product of small categorical axes (mostly
power-of-two ranges), which makes a cyclic coordinate sweep a strong and very
interpretable baseline: hold the best-known configuration fixed, sweep one
parameter through all of its values, keep the best, and move to the next
parameter.  A full pass over all 16-17 parameters costs a few hundred trials
— comparable to the warm phase of the paper's Vizier studies — and the
resulting trajectory shows directly which parameters matter for a workload.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.search.optimizer import Observation, Optimizer

__all__ = ["CoordinateDescentOptimizer"]


class CoordinateDescentOptimizer(Optimizer):
    """Cyclic greedy sweep over one search parameter at a time."""

    def __init__(
        self,
        space: DatapathSearchSpace,
        seed: int = 0,
        num_initial_random: int = 8,
        shuffle_parameter_order: bool = True,
    ) -> None:
        super().__init__(space, seed)
        self.num_initial_random = max(1, num_initial_random)
        self._parameter_order: List[str] = list(space.parameter_names)
        if shuffle_parameter_order:
            self.rng.shuffle(self._parameter_order)
        self._best_params: Optional[ParameterValues] = None
        self._best_objective = math.inf
        self._axis_index = 0
        self._queue: List[ParameterValues] = []

    # ------------------------------------------------------------------
    def ask(self) -> ParameterValues:
        """Propose the next point of the sweep."""
        if self._best_params is None or self.num_trials < self.num_initial_random:
            return self.space.sample(self.rng)
        if not self._queue:
            self._fill_queue()
        if not self._queue:  # every axis has a single choice; fall back to mutation
            return self.space.mutate(self._best_params, self.rng)
        return self._queue.pop()

    def ask_batch(self, n: int) -> List[ParameterValues]:
        """Drain up to ``n`` sweep points in one call, refilling across axes.

        A batch pulls whole chunks of the per-axis sweep queue (one batch
        can cover an entire parameter axis), filling the queue from the next
        axis whenever it runs dry.  The proposals and queue/axis state are
        exactly what ``n`` repeated asks produce under deferred feedback;
        interleaved tells could instead recentre the sweep on an improved
        incumbent between proposals.
        """
        n = max(0, int(n))
        proposals: List[ParameterValues] = []
        while len(proposals) < n:
            if self._best_params is None or self.num_trials < self.num_initial_random:
                proposals.append(self.space.sample(self.rng))
                continue
            if not self._queue:
                self._fill_queue()
            if not self._queue:  # every axis has a single choice
                proposals.append(self.space.mutate(self._best_params, self.rng))
                continue
            for _ in range(min(n - len(proposals), len(self._queue))):
                proposals.append(self._queue.pop())
        return proposals

    def tell(
        self,
        params: ParameterValues,
        objective: float,
        feasible: bool = True,
        metadata: Optional[dict] = None,
    ) -> Observation:
        """Record the trial and update the incumbent if it improved."""
        observation = super().tell(params, objective, feasible=feasible, metadata=metadata)
        if feasible and math.isfinite(objective) and objective < self._best_objective:
            self._best_params = dict(params)
            self._best_objective = objective
        return observation

    # ------------------------------------------------------------------
    def _fill_queue(self) -> None:
        """Queue every alternative value of the next parameter axis."""
        spec = self.space.spec(self._parameter_order[self._axis_index])
        self._axis_index = (self._axis_index + 1) % len(self._parameter_order)
        current_value = self._best_params[spec.name]
        for choice in spec.choices:
            if choice == current_value:
                continue
            candidate = dict(self._best_params)
            candidate[spec.name] = choice
            self._queue.append(candidate)

    # ------------------------------------------------------------------
    def extra_checkpoint_state(self) -> dict:
        """Sweep state that ``tell`` replay cannot rebuild (advances in ``ask``)."""
        from repro.reporting.serialization import params_to_jsonable

        return {
            "parameter_order": list(self._parameter_order),
            "axis_index": self._axis_index,
            "queue": [params_to_jsonable(p) for p in self._queue],
            "best_params": (
                params_to_jsonable(self._best_params) if self._best_params is not None else None
            ),
            "best_objective": self._best_objective,
        }

    def restore_extra_checkpoint_state(self, state: dict) -> None:
        from repro.reporting.serialization import params_from_jsonable

        if not state:
            return
        self._parameter_order = list(state["parameter_order"])
        self._axis_index = int(state["axis_index"])
        self._queue = [params_from_jsonable(p, self.space) for p in state["queue"]]
        best = state["best_params"]
        self._best_params = params_from_jsonable(best, self.space) if best is not None else None
        self._best_objective = float(state["best_objective"])

    @property
    def sweep_parameter(self) -> str:
        """Name of the parameter axis that will be swept next."""
        return self._parameter_order[self._axis_index]

    @property
    def best_params(self) -> Optional[ParameterValues]:
        """Best feasible configuration found so far."""
        return dict(self._best_params) if self._best_params is not None else None
