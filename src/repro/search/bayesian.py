"""Bayesian optimization with a Gaussian-process surrogate.

This stands in for Vizier's default Bayesian algorithm (Figure 11): a GP with
an RBF kernel over the normalized categorical encoding of the datapath
parameters, expected-improvement acquisition maximized by sampling a batch of
random plus mutated candidates, and an initial space-filling phase of pure
random exploration.  Infeasible observations are included with a penalized
objective so the surrogate learns to avoid constraint-violating regions
(Vizier's "safe search").
"""

from __future__ import annotations

import json
import math
from typing import List, Optional

import numpy as np

from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.search.optimizer import Observation, Optimizer

__all__ = ["BayesianOptimizer"]


class BayesianOptimizer(Optimizer):
    """GP-based Bayesian optimizer over the datapath search space."""

    def __init__(
        self,
        space: DatapathSearchSpace,
        seed: int = 0,
        num_initial_random: int = 12,
        candidates_per_ask: int = 256,
        length_scale: float = 0.35,
        noise: float = 1e-4,
        max_fit_points: int = 256,
    ) -> None:
        super().__init__(space, seed)
        self.num_initial_random = num_initial_random
        self.candidates_per_ask = candidates_per_ask
        self.length_scale = length_scale
        self.noise = noise
        self.max_fit_points = max_fit_points
        self._external_best_objective = math.inf

    # ------------------------------------------------------------------
    def ask(self) -> ParameterValues:
        """Propose the next configuration via expected improvement."""
        usable = [obs for obs in self.observations if math.isfinite(obs.objective)]
        if len(usable) < self.num_initial_random:
            return self.space.sample(self.rng)

        train_x, train_y, best_y = self._training_data(usable)
        candidates = self._generate_candidates()
        encoded = np.stack([self.space.encode(c) for c in candidates])
        mean, std = self._gp_posterior(train_x, train_y, encoded)
        ei = self._expected_improvement(mean, std, best_y)
        return candidates[int(np.argmax(ei))]

    def ask_batch(self, n: int) -> List[ParameterValues]:
        """Propose the top-``n`` distinct candidates by expected improvement.

        The surrogate is fitted and the candidate pool generated *once* per
        batch, and the ``n`` proposals are the EI-ranked distinct candidates.
        This intentionally differs from ``n`` repeated asks (which would
        refit and regenerate per proposal and return ``n`` copies of the
        same argmax under deferred feedback): one posterior amortizes the
        O(m^3) GP solve across the batch and the rank cutoff guarantees
        distinct proposals.  The first proposal always equals what a single
        :meth:`ask` would return from the same state.  During the initial
        space-filling phase the batch is ``n`` random samples, identical to
        repeated asks.
        """
        # Imported lazily: serialization reaches repro.core.fast, which pulls
        # the repro.search package back in while it is still initializing.
        from repro.reporting.serialization import params_to_jsonable

        n = max(0, int(n))
        usable = [obs for obs in self.observations if math.isfinite(obs.objective)]
        if len(usable) < self.num_initial_random:
            return [self.space.sample(self.rng) for _ in range(n)]

        train_x, train_y, best_y = self._training_data(usable)
        candidates = self._generate_candidates()
        encoded = np.stack([self.space.encode(c) for c in candidates])
        mean, std = self._gp_posterior(train_x, train_y, encoded)
        ei = self._expected_improvement(mean, std, best_y)
        proposals: List[ParameterValues] = []
        seen = set()
        for idx in np.argsort(-ei, kind="stable"):
            candidate = candidates[int(idx)]
            key = json.dumps(params_to_jsonable(candidate), sort_keys=True)
            if key in seen:
                continue
            seen.add(key)
            proposals.append(candidate)
            if len(proposals) == n:
                break
        while len(proposals) < n:  # candidate pool had fewer distinct points
            proposals.append(self.space.sample(self.rng))
        return proposals

    # ------------------------------------------------------------------
    def _training_data(self, usable: List[Observation]):
        feasible = [obs for obs in usable if obs.feasible]
        penalty = max((obs.objective for obs in feasible), default=0.0)
        rows = usable[-self.max_fit_points :]
        train_x = np.stack([self.space.encode(obs.params) for obs in rows])
        train_y = np.array(
            [obs.objective if obs.feasible else penalty + abs(penalty) + 1.0 for obs in rows]
        )
        # Standardize targets for numerical stability.
        self._y_mean = float(train_y.mean())
        self._y_std = float(train_y.std()) or 1.0
        train_y = (train_y - self._y_mean) / self._y_std
        best_y = float(train_y.min())
        # A better objective published by another shard tightens the EI
        # incumbent: improvement is then measured against the fleet-wide
        # best, steering acquisition away from merely-locally-good regions.
        if math.isfinite(self._external_best_objective):
            external = (self._external_best_objective - self._y_mean) / self._y_std
            best_y = min(best_y, float(external))
        return train_x, train_y, best_y

    def observe_external_best(
        self, objective: float, params: Optional[ParameterValues] = None
    ) -> None:
        """Record another shard's best objective as the EI incumbent floor.

        Only the scalar objective is used (the surrogate never trains on
        external points — their simulation context is already captured by
        the shared fingerprint, but trust stops at the incumbent).  The hook
        consumes no RNG state, so runs without external bests are unchanged.
        """
        if math.isfinite(objective):
            self._external_best_objective = min(self._external_best_objective, objective)

    def _generate_candidates(self) -> List[ParameterValues]:
        candidates = [self.space.sample(self.rng) for _ in range(self.candidates_per_ask // 2)]
        best = self.best_observation()
        if best is not None:
            for _ in range(self.candidates_per_ask - len(candidates)):
                candidates.append(
                    self.space.mutate(best.params, self.rng, num_mutations=int(self.rng.integers(1, 4)))
                )
        return candidates

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq_dist = (
            np.sum(a**2, axis=1)[:, None] + np.sum(b**2, axis=1)[None, :] - 2.0 * a @ b.T
        )
        return np.exp(-0.5 * np.maximum(sq_dist, 0.0) / self.length_scale**2)

    def _gp_posterior(self, train_x: np.ndarray, train_y: np.ndarray, test_x: np.ndarray):
        k_train = self._kernel(train_x, train_x) + self.noise * np.eye(train_x.shape[0])
        k_cross = self._kernel(train_x, test_x)
        try:
            chol = np.linalg.cholesky(k_train)
        except np.linalg.LinAlgError:
            chol = np.linalg.cholesky(k_train + 1e-3 * np.eye(train_x.shape[0]))
        alpha = np.linalg.solve(chol.T, np.linalg.solve(chol, train_y))
        mean = k_cross.T @ alpha
        v = np.linalg.solve(chol, k_cross)
        var = np.maximum(1.0 - np.sum(v**2, axis=0), 1e-9)
        return mean, np.sqrt(var)

    @staticmethod
    def _expected_improvement(mean: np.ndarray, std: np.ndarray, best_y: float) -> np.ndarray:
        from scipy.stats import norm

        improvement = best_y - mean
        z = improvement / std
        return improvement * norm.cdf(z) + std * norm.pdf(z)
