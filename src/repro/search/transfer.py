"""Transfer learning across FAST studies (warm starting).

Vizier supports transfer learning between studies; the paper disables it for
its headline experiments but it is a natural extension when FAST is run
repeatedly on related workloads (e.g. retuning for EfficientNet-B4 after
having searched for B7).  :class:`TransferWarmStartOptimizer` replays the
best configurations of a prior study as the first proposals of a new study
and only then hands control to the inner optimizer — the prior designs are
re-evaluated under the new workload/objective, so a misleading prior costs a
few trials rather than biasing the whole search.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.search.optimizer import Observation, Optimizer

__all__ = ["TransferWarmStartOptimizer", "top_configurations"]


def top_configurations(
    observations: Iterable[Observation], num_configs: int
) -> List[ParameterValues]:
    """Best feasible parameter assignments of a prior study, best first."""
    feasible = [obs for obs in observations if obs.feasible]
    feasible.sort(key=lambda obs: obs.objective)
    return [dict(obs.params) for obs in feasible[:num_configs]]


class TransferWarmStartOptimizer(Optimizer):
    """Replays a prior study's best designs before delegating to an inner optimizer."""

    def __init__(
        self,
        space: DatapathSearchSpace,
        seed: int = 0,
        inner: Union[str, Optimizer] = "lcs",
        prior_observations: Optional[Sequence[Observation]] = None,
        prior_params: Optional[Sequence[ParameterValues]] = None,
        num_warm_start: int = 8,
    ) -> None:
        super().__init__(space, seed)
        if isinstance(inner, str):
            from repro.search import make_optimizer

            inner = make_optimizer(inner, space, seed=seed)
        if inner.space is not space:
            raise ValueError("inner optimizer must share the same search space")
        self.inner = inner

        warm: List[ParameterValues] = []
        if prior_observations:
            warm.extend(top_configurations(prior_observations, num_warm_start))
        if prior_params:
            warm.extend(dict(p) for p in prior_params)
        # Deduplicate while preserving order; the same design often tops
        # several prior studies.
        seen = set()
        self._warm_start_queue: List[ParameterValues] = []
        for params in warm[:num_warm_start]:
            key = tuple(sorted((k, str(v)) for k, v in params.items()))
            if key not in seen:
                seen.add(key)
                self._warm_start_queue.append(params)

    # ------------------------------------------------------------------
    @property
    def num_pending_warm_starts(self) -> int:
        """Prior designs that have not been proposed yet."""
        return len(self._warm_start_queue)

    def ask(self) -> ParameterValues:
        """Propose the next prior design, or delegate once the queue is empty."""
        if self._warm_start_queue:
            return self._warm_start_queue.pop(0)
        return self.inner.ask()

    def ask_batch(self, n: int) -> List[ParameterValues]:
        """Drain pending warm starts first, then batch-ask the inner optimizer."""
        n = max(0, int(n))
        proposals: List[ParameterValues] = []
        while self._warm_start_queue and len(proposals) < n:
            proposals.append(self._warm_start_queue.pop(0))
        if len(proposals) < n:
            proposals.extend(self.inner.ask_batch(n - len(proposals)))
        return proposals

    def tell(
        self,
        params: ParameterValues,
        objective: float,
        feasible: bool = True,
        metadata: Optional[dict] = None,
    ) -> Observation:
        """Record the outcome in both this wrapper and the inner optimizer."""
        observation = super().tell(params, objective, feasible=feasible, metadata=metadata)
        self.inner.tell(params, objective, feasible=feasible, metadata=metadata)
        return observation
