"""Safe-search wrapper: constraint-aware objective shaping.

The paper enables Vizier's *safe search* (Gelbart et al., "Bayesian
Optimization with Unknown Constraints") so that infeasible trials — designs
that exceed the area/TDP budget or fail to schedule — still inform the
optimizer instead of being discarded.  :class:`SafeSearchOptimizer` brings
the same behaviour to any of the in-repo optimizers: it forwards proposals
to an inner optimizer unchanged, but replaces the (useless, usually
infinite) objective of infeasible trials with a finite penalty placed just
beyond the worst feasible objective seen so far.  Surrogate- and
population-based optimizers then treat constraint violations as "bad but
ordered" points and steer away from them smoothly.
"""

from __future__ import annotations

import math
from typing import List, Optional, Union

from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.search.optimizer import Observation, Optimizer

__all__ = ["SafeSearchOptimizer"]


class SafeSearchOptimizer(Optimizer):
    """Wraps another optimizer, shaping infeasible objectives into penalties."""

    def __init__(
        self,
        space: DatapathSearchSpace,
        seed: int = 0,
        inner: Union[str, Optimizer] = "lcs",
        penalty_margin: float = 0.25,
    ) -> None:
        super().__init__(space, seed)
        if isinstance(inner, str):
            # Imported lazily to avoid a circular import with the factory.
            from repro.search import make_optimizer

            inner = make_optimizer(inner, space, seed=seed)
        if inner.space is not space:
            raise ValueError("inner optimizer must share the same search space")
        self.inner = inner
        self.penalty_margin = penalty_margin

    # ------------------------------------------------------------------
    def ask(self) -> ParameterValues:
        """Delegate proposal generation to the inner optimizer."""
        return self.inner.ask()

    def ask_batch(self, n: int) -> List[ParameterValues]:
        """Delegate batch proposal generation to the inner optimizer."""
        return self.inner.ask_batch(n)

    def tell(
        self,
        params: ParameterValues,
        objective: float,
        feasible: bool = True,
        metadata: Optional[dict] = None,
    ) -> Observation:
        """Record the true outcome and feed a shaped objective to the inner optimizer."""
        observation = super().tell(params, objective, feasible=feasible, metadata=metadata)
        if feasible and math.isfinite(objective):
            self.inner.tell(params, objective, feasible=True, metadata=metadata)
        else:
            self.inner.tell(params, self.penalty_objective(), feasible=True, metadata=metadata)
        return observation

    # ------------------------------------------------------------------
    def extra_checkpoint_state(self) -> dict:
        """Delegate ask-side state to the wrapped optimizer."""
        return {"inner": self.inner.extra_checkpoint_state()}

    def restore_extra_checkpoint_state(self, state: dict) -> None:
        self.inner.restore_extra_checkpoint_state(state.get("inner", {}))

    # ------------------------------------------------------------------
    def penalty_objective(self) -> float:
        """Finite objective assigned to infeasible trials.

        The penalty sits one ``penalty_margin`` of the observed objective
        spread beyond the worst feasible value, so infeasible points are
        always ranked behind every feasible point but remain comparable to
        each other for the surrogate.
        """
        feasible = [obs.objective for obs in self.feasible_observations]
        if not feasible:
            return 0.0
        worst = max(feasible)
        spread = max(worst - min(feasible), abs(worst), 1.0)
        return worst + self.penalty_margin * spread
