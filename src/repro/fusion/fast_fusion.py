"""FAST fusion: ILP-based assignment of tensors to the Global Memory.

FAST fusion (Section 5.5, Figure 8) is a secondary pass over XLA-generated
fusion regions.  For every region it decides whether to keep the region's
input activation, output activation, and/or weight tensor resident in the
accelerator's Global Memory instead of streaming them from DRAM, minimizing
total execution time subject to the Global Memory capacity.  Activations may
only be kept on chip between *adjacent* regions in the execution order (the
paper's simulator limitation, which we reproduce); weights, once pinned, stay
resident for the lifetime of the model ("weight pinning") and therefore
consume capacity in every region's constraint.

Two solver backends are provided:

* ``"ilp"`` — the exact Figure 8 formulation solved with the in-repo
  branch-and-bound MILP solver (:mod:`repro.fusion.ilp`).
* ``"greedy"`` — a benefit-density heuristic with the same constraint
  structure, used by default for large models and inside the search loop
  where thousands of fusion problems must be solved per experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.fusion.ilp import BranchAndBoundSolver, IlpProblem

__all__ = [
    "RegionStats",
    "FusionDecision",
    "FusionResult",
    "FastFusionOptimizer",
]


@dataclass(frozen=True)
class RegionStats:
    """Per-region performance statistics consumed by the fusion pass.

    Times are in cycles; sizes in bytes.  ``predecessor`` is the index of the
    region that produces this region's pinnable input activation (or None
    when the input comes from the host / a non-adjacent producer).
    """

    index: int
    name: str
    busy_cycles: float
    t_max_cycles: float
    input_dram_cycles: float
    weight_dram_cycles: float
    output_dram_cycles: float
    input_bytes: int
    weight_bytes: int
    output_bytes: int
    blocking_gm_bytes: int = 0
    predecessor: Optional[int] = None
    is_graph_output: bool = False

    @property
    def t_min_cycles(self) -> float:
        """Lower bound on the region's execution time (compute bound)."""
        return self.busy_cycles


@dataclass(frozen=True)
class FusionDecision:
    """Pinning decision for one region."""

    pin_input: bool = False
    pin_output: bool = False
    pin_weights: bool = False

    @property
    def any(self) -> bool:
        """Whether anything was pinned."""
        return self.pin_input or self.pin_output or self.pin_weights


@dataclass
class FusionResult:
    """Outcome of the FAST fusion pass over a whole model."""

    decisions: List[FusionDecision]
    region_cycles: List[float]
    total_cycles_pre: float
    total_cycles_post: float
    pinned_weight_bytes: int
    pinned_activation_bytes: int
    gm_capacity_bytes: int
    solver_status: str

    @property
    def speedup(self) -> float:
        """Pre-fusion time divided by post-fusion time."""
        if self.total_cycles_post <= 0:
            return 1.0
        return self.total_cycles_pre / self.total_cycles_post

    def dram_bytes_saved(self, regions: Sequence[RegionStats], dram_bytes_per_cycle: float) -> float:
        """Approximate DRAM bytes avoided by the selected pinnings."""
        saved_cycles = 0.0
        for region, decision in zip(regions, self.decisions):
            if decision.pin_input:
                saved_cycles += region.input_dram_cycles
            if decision.pin_output:
                saved_cycles += region.output_dram_cycles
            if decision.pin_weights:
                saved_cycles += region.weight_dram_cycles
        return saved_cycles * dram_bytes_per_cycle


class FastFusionOptimizer:
    """Solves the FAST fusion assignment problem for one model."""

    def __init__(
        self,
        gm_capacity_bytes: int,
        solver: str = "auto",
        ilp_time_limit_s: float = 10.0,
        ilp_max_nodes: int = 400,
        greedy_threshold_regions: int = 80,
    ) -> None:
        if solver not in ("auto", "ilp", "greedy"):
            raise ValueError(f"unknown solver {solver!r}")
        self.gm_capacity_bytes = int(gm_capacity_bytes)
        self.solver = solver
        self.ilp_time_limit_s = ilp_time_limit_s
        self.ilp_max_nodes = ilp_max_nodes
        self.greedy_threshold_regions = greedy_threshold_regions

    # ------------------------------------------------------------------
    def optimize(self, regions: Sequence[RegionStats]) -> FusionResult:
        """Choose pinning decisions for every region."""
        regions = list(regions)
        pre_total = sum(r.t_max_cycles for r in regions)
        if self.gm_capacity_bytes <= 0 or not regions:
            decisions = [FusionDecision() for _ in regions]
            return FusionResult(
                decisions=decisions,
                region_cycles=[r.t_max_cycles for r in regions],
                total_cycles_pre=pre_total,
                total_cycles_post=pre_total,
                pinned_weight_bytes=0,
                pinned_activation_bytes=0,
                gm_capacity_bytes=self.gm_capacity_bytes,
                solver_status="disabled",
            )

        backend = self.solver
        if backend == "auto":
            backend = "greedy" if len(regions) > self.greedy_threshold_regions else "ilp"

        if backend == "ilp":
            result = self._solve_ilp(regions)
            if result is not None:
                return result
            # Fall back to the heuristic if the ILP failed.
        return self._solve_greedy(regions)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _pinnable_input(region: RegionStats) -> bool:
        """Input may be pinned only when produced by the immediately preceding region."""
        return region.predecessor is not None and region.predecessor == region.index - 1

    @staticmethod
    def _pinnable_output(region: RegionStats, regions: Sequence[RegionStats]) -> bool:
        """Output may be pinned only when consumed by the immediately following region."""
        if region.is_graph_output:
            return False
        next_index = region.index + 1
        if next_index >= len(regions):
            return False
        successor = regions[next_index]
        return successor.predecessor == region.index

    @staticmethod
    def _region_time(region: RegionStats, saved_cycles: float) -> float:
        return max(region.t_min_cycles, region.t_max_cycles - saved_cycles)

    def _finalize(
        self,
        regions: Sequence[RegionStats],
        decisions: List[FusionDecision],
        status: str,
    ) -> FusionResult:
        region_cycles = []
        pinned_weight_bytes = 0
        pinned_activation_bytes = 0
        for region, decision in zip(regions, decisions):
            saved = 0.0
            if decision.pin_input:
                saved += region.input_dram_cycles
                pinned_activation_bytes += region.input_bytes
            if decision.pin_output:
                saved += region.output_dram_cycles
                pinned_activation_bytes += region.output_bytes
            if decision.pin_weights:
                saved += region.weight_dram_cycles
                pinned_weight_bytes += region.weight_bytes
            region_cycles.append(self._region_time(region, saved))
        return FusionResult(
            decisions=decisions,
            region_cycles=region_cycles,
            total_cycles_pre=sum(r.t_max_cycles for r in regions),
            total_cycles_post=sum(region_cycles),
            pinned_weight_bytes=pinned_weight_bytes,
            pinned_activation_bytes=pinned_activation_bytes,
            gm_capacity_bytes=self.gm_capacity_bytes,
            solver_status=status,
        )

    # ------------------------------------------------------------------
    # Greedy backend
    # ------------------------------------------------------------------
    def _solve_greedy(self, regions: List[RegionStats]) -> FusionResult:
        n = len(regions)
        capacity = float(self.gm_capacity_bytes)
        pin_input = [False] * n
        pin_output = [False] * n
        pin_weights = [False] * n
        activation_usage = [0.0] * n  # own pinned activation bytes per region
        weight_total = 0.0  # persistent pinned weight bytes
        saved = [0.0] * n

        def slack(i: int) -> float:
            return max(0.0, self._region_time(regions[i], saved[i]) - regions[i].t_min_cycles)

        def headroom(i: int) -> float:
            return capacity - regions[i].blocking_gm_bytes - activation_usage[i] - weight_total

        def weight_move_feasible(j: int) -> bool:
            need = regions[j].weight_bytes
            return all(headroom(i) >= need for i in range(n))

        def apply_activation_move(i: int) -> None:
            pin_output[i] = True
            pin_input[i + 1] = True
            activation_usage[i] += regions[i].output_bytes
            activation_usage[i + 1] += regions[i + 1].input_bytes
            saved[i] += regions[i].output_dram_cycles
            saved[i + 1] += regions[i + 1].input_dram_cycles

        def apply_weight_move(i: int) -> None:
            nonlocal weight_total
            pin_weights[i] = True
            weight_total += regions[i].weight_bytes
            saved[i] += regions[i].weight_dram_cycles

        # Phase 1: activation pinning.  Activations have short lifetimes (they
        # only occupy the Global Memory between adjacent regions), so they are
        # placed first; pinning them never blocks a later weight pin globally.
        improved = True
        while improved:
            improved = False
            best_density = 0.0
            best_index: Optional[int] = None
            for i in range(n - 1):
                region = regions[i]
                if (
                    pin_output[i]
                    or not self._pinnable_output(region, regions)
                    or pin_input[i + 1]
                    or not self._pinnable_input(regions[i + 1])
                ):
                    continue
                benefit = min(region.output_dram_cycles, slack(i)) + min(
                    regions[i + 1].input_dram_cycles, slack(i + 1)
                )
                cost = max(region.output_bytes, 1) + max(regions[i + 1].input_bytes, 1)
                feasible = (
                    headroom(i) >= region.output_bytes
                    and headroom(i + 1) >= regions[i + 1].input_bytes
                )
                if feasible and benefit > 0:
                    density = benefit / cost
                    if density > best_density:
                        best_density = density
                        best_index = i
            if best_index is not None:
                apply_activation_move(best_index)
                improved = True

        # Phase 2: weight pinning with the remaining (persistent) headroom.
        improved = True
        while improved:
            improved = False
            best_density = 0.0
            best_index = None
            for i in range(n):
                region = regions[i]
                if pin_weights[i] or region.weight_bytes <= 0:
                    continue
                benefit = min(region.weight_dram_cycles, slack(i))
                if benefit <= 0 or not weight_move_feasible(i):
                    continue
                density = benefit / max(region.weight_bytes, 1)
                if density > best_density:
                    best_density = density
                    best_index = i
            if best_index is not None:
                apply_weight_move(best_index)
                improved = True

        decisions = [
            FusionDecision(pin_input[i], pin_output[i], pin_weights[i]) for i in range(n)
        ]
        return self._finalize(regions, decisions, status="greedy")

    # ------------------------------------------------------------------
    # ILP backend (Figure 8)
    # ------------------------------------------------------------------
    def _solve_ilp(self, regions: List[RegionStats]) -> Optional[FusionResult]:
        n = len(regions)
        capacity = float(self.gm_capacity_bytes)

        # Variable layout: [p_I_0..p_I_{n-1}, p_O_*, p_W_*, T_*]
        def idx_in(i: int) -> int:
            return i

        def idx_out(i: int) -> int:
            return n + i

        def idx_w(i: int) -> int:
            return 2 * n + i

        def idx_t(i: int) -> int:
            return 3 * n + i

        num_vars = 4 * n
        objective = np.zeros(num_vars)
        for i in range(n):
            objective[idx_t(i)] = 1.0

        rows: List[np.ndarray] = []
        bounds_rhs: List[float] = []

        def add_row(coeffs: dict, rhs: float) -> None:
            row = np.zeros(num_vars)
            for col, value in coeffs.items():
                row[col] = value
            rows.append(row)
            bounds_rhs.append(rhs)

        lower = np.zeros(num_vars)
        upper = np.ones(num_vars)
        integer_mask = np.zeros(num_vars, dtype=bool)
        integer_mask[: 3 * n] = True

        for i, region in enumerate(regions):
            upper[idx_t(i)] = max(region.t_max_cycles, 1.0)
            lower[idx_t(i)] = 0.0
            if not self._pinnable_input(region):
                upper[idx_in(i)] = 0.0
            if not self._pinnable_output(region, regions):
                upper[idx_out(i)] = 0.0
            if region.weight_bytes <= 0:
                upper[idx_w(i)] = 0.0

            # T_i >= T_min_i
            add_row({idx_t(i): -1.0}, -region.t_min_cycles)
            # T_i >= T_max_i - sum_k t_i^k p_i^k
            add_row(
                {
                    idx_t(i): -1.0,
                    idx_in(i): -region.input_dram_cycles,
                    idx_out(i): -region.output_dram_cycles,
                    idx_w(i): -region.weight_dram_cycles,
                },
                -region.t_max_cycles,
            )
            # Capacity: B_i + sum_k d_i^k p_i^k + sum_{j != i} W_j p_j^W <= C_GM
            coeffs = {
                idx_in(i): float(region.input_bytes),
                idx_out(i): float(region.output_bytes),
                idx_w(i): float(region.weight_bytes),
            }
            for j, other in enumerate(regions):
                if j != i and other.weight_bytes > 0:
                    coeffs[idx_w(j)] = float(other.weight_bytes)
            add_row(coeffs, capacity - region.blocking_gm_bytes)

            # Producer/consumer consistency with the adjacent successor.
            if i + 1 < n and regions[i + 1].predecessor == i:
                # p_{i+1}^I <= p_i^O
                add_row({idx_in(i + 1): 1.0, idx_out(i): -1.0}, 0.0)
                # p_i^O <= p_{i+1}^I  (no point pinning an output nobody reads)
                add_row({idx_out(i): 1.0, idx_in(i + 1): -1.0}, 0.0)
            else:
                upper[idx_out(i)] = 0.0

        problem = IlpProblem(
            objective=objective,
            constraint_matrix=np.vstack(rows),
            constraint_bounds=np.asarray(bounds_rhs),
            integer_mask=integer_mask,
            lower_bounds=lower,
            upper_bounds=upper,
        )
        solver = BranchAndBoundSolver(
            max_nodes=self.ilp_max_nodes, time_limit_s=self.ilp_time_limit_s
        )
        solution = solver.solve(problem)
        if not solution.feasible or solution.x is None:
            return None

        decisions = []
        for i in range(n):
            decisions.append(
                FusionDecision(
                    pin_input=solution.x[idx_in(i)] > 0.5,
                    pin_output=solution.x[idx_out(i)] > 0.5,
                    pin_weights=solution.x[idx_w(i)] > 0.5,
                )
            )
        status = "ilp_optimal" if solution.optimal else "ilp_incumbent"
        return self._finalize(regions, decisions, status=status)
