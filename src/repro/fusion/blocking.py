"""Inter-op blocking for FAST fusion (the paper's noted refinement).

Section 5.5 states that "FAST fusion conservatively assumes that entire
tensors are stored in memory; schedulers can use inter-op blocking to reduce
tensor working set sizes".  This module implements that refinement: when a
producer and its consumer are blocked (tiled) jointly, the intermediate
activation never has to be materialized in full — only one tile needs to be
resident in the Global Memory at a time, while the *whole* tensor's DRAM
round-trip is still avoided.

:class:`BlockingAwareFusionOptimizer` wraps the standard
:class:`~repro.fusion.fast_fusion.FastFusionOptimizer`: it shrinks the
capacity cost of pinning activation tensors by a candidate blocking factor
(weights are untouched — weight pinning needs the full tensor resident to be
reused across inference requests), solves the fusion problem for each
candidate factor, and keeps the best schedule.  Factor 1 reproduces the
paper's baseline behaviour exactly, so enabling blocking can never make the
fusion result worse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.fusion.fast_fusion import FastFusionOptimizer, FusionResult, RegionStats

__all__ = ["BlockedFusionResult", "BlockingAwareFusionOptimizer", "blocked_region_stats"]


def blocked_region_stats(
    regions: Sequence[RegionStats], block_factor: int
) -> List[RegionStats]:
    """Shrink activation pinning footprints by ``block_factor``.

    Only the *capacity* cost of pinning input/output activations changes;
    the DRAM cycles avoided by a pinning decision are unchanged because the
    full tensor still never leaves the chip, and weight tensors are left
    whole because weight pinning relies on the complete tensor staying
    resident across inference requests.
    """
    if block_factor < 1:
        raise ValueError("block_factor must be >= 1")
    if block_factor == 1:
        return list(regions)
    blocked = []
    for region in regions:
        blocked.append(
            replace(
                region,
                input_bytes=int(math.ceil(region.input_bytes / block_factor)),
                output_bytes=int(math.ceil(region.output_bytes / block_factor)),
            )
        )
    return blocked


@dataclass
class BlockedFusionResult:
    """Fusion outcome with the best inter-op blocking factor."""

    block_factor: int
    fusion: FusionResult
    cycles_by_factor: Dict[int, float]

    @property
    def speedup_over_unblocked(self) -> float:
        """Post-fusion cycle ratio of factor 1 to the chosen factor."""
        baseline = self.cycles_by_factor.get(1, self.fusion.total_cycles_post)
        if self.fusion.total_cycles_post <= 0:
            return 1.0
        return baseline / self.fusion.total_cycles_post


class BlockingAwareFusionOptimizer:
    """FAST fusion with a sweep over inter-op blocking factors."""

    def __init__(
        self,
        gm_capacity_bytes: int,
        solver: str = "auto",
        block_factors: Tuple[int, ...] = (1, 2, 4, 8),
        **fusion_kwargs,
    ) -> None:
        if not block_factors or any(f < 1 for f in block_factors):
            raise ValueError("block_factors must be a non-empty tuple of factors >= 1")
        self.block_factors = tuple(sorted(set(block_factors)))
        if 1 not in self.block_factors:
            self.block_factors = (1,) + self.block_factors
        self.inner = FastFusionOptimizer(
            gm_capacity_bytes=gm_capacity_bytes, solver=solver, **fusion_kwargs
        )

    # ------------------------------------------------------------------
    def optimize(self, regions: Sequence[RegionStats]) -> BlockedFusionResult:
        """Solve fusion for every candidate factor and keep the fastest."""
        best_factor = 1
        best_result: FusionResult = None
        cycles_by_factor: Dict[int, float] = {}
        for factor in self.block_factors:
            result = self.inner.optimize(blocked_region_stats(regions, factor))
            cycles_by_factor[factor] = result.total_cycles_post
            if best_result is None or result.total_cycles_post < best_result.total_cycles_post:
                best_result = result
                best_factor = factor
        return BlockedFusionResult(
            block_factor=best_factor,
            fusion=best_result,
            cycles_by_factor=cycles_by_factor,
        )
