"""FAST fusion: ILP-based tensor-to-Global-Memory assignment."""

from repro.fusion.blocking import (
    BlockedFusionResult,
    BlockingAwareFusionOptimizer,
    blocked_region_stats,
)
from repro.fusion.fast_fusion import (
    FastFusionOptimizer,
    FusionDecision,
    FusionResult,
    RegionStats,
)
from repro.fusion.ilp import BranchAndBoundSolver, IlpProblem, IlpSolution

__all__ = [
    "BlockedFusionResult",
    "BlockingAwareFusionOptimizer",
    "BranchAndBoundSolver",
    "FastFusionOptimizer",
    "FusionDecision",
    "FusionResult",
    "IlpProblem",
    "IlpSolution",
    "RegionStats",
    "blocked_region_stats",
]
