"""A small 0/1 mixed-integer linear program solver.

The paper solves the FAST fusion problem with SCIP; offline we implement the
needed subset ourselves: minimize ``c @ x`` subject to ``A x <= b`` with a
mix of binary and continuous variables.  The solver is branch-and-bound over
LP relaxations (scipy's HiGHS ``linprog``), with best-first node selection,
most-fractional branching, an incumbent produced by rounding, and a
configurable node/time budget after which the best incumbent is returned —
mirroring the 20-minute SCIP timeout behaviour described in Section 6.1.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

__all__ = ["IlpProblem", "IlpSolution", "BranchAndBoundSolver"]

_TOLERANCE = 1e-6


@dataclass
class IlpProblem:
    """A minimization MILP in inequality form.

    minimize    objective @ x
    subject to  constraint_matrix @ x <= constraint_bounds
                lower_bounds <= x <= upper_bounds
                x[i] integer for every i with integer_mask[i]
    """

    objective: np.ndarray
    constraint_matrix: np.ndarray
    constraint_bounds: np.ndarray
    integer_mask: np.ndarray
    lower_bounds: np.ndarray
    upper_bounds: np.ndarray

    def __post_init__(self) -> None:
        self.objective = np.asarray(self.objective, dtype=float)
        self.constraint_matrix = np.asarray(self.constraint_matrix, dtype=float)
        self.constraint_bounds = np.asarray(self.constraint_bounds, dtype=float)
        self.integer_mask = np.asarray(self.integer_mask, dtype=bool)
        self.lower_bounds = np.asarray(self.lower_bounds, dtype=float)
        self.upper_bounds = np.asarray(self.upper_bounds, dtype=float)
        n = self.objective.shape[0]
        if self.constraint_matrix.ndim != 2 or self.constraint_matrix.shape[1] != n:
            raise ValueError("constraint matrix shape does not match objective length")
        if self.constraint_matrix.shape[0] != self.constraint_bounds.shape[0]:
            raise ValueError("constraint bounds length does not match constraint rows")
        for arr_name in ("integer_mask", "lower_bounds", "upper_bounds"):
            if getattr(self, arr_name).shape[0] != n:
                raise ValueError(f"{arr_name} length does not match objective length")

    @property
    def num_variables(self) -> int:
        """Number of decision variables."""
        return self.objective.shape[0]

    def is_feasible(self, x: np.ndarray, tolerance: float = 1e-5) -> bool:
        """Check a candidate assignment against all constraints and bounds."""
        x = np.asarray(x, dtype=float)
        if np.any(x < self.lower_bounds - tolerance) or np.any(x > self.upper_bounds + tolerance):
            return False
        if np.any(self.constraint_matrix @ x > self.constraint_bounds + tolerance):
            return False
        integral = np.abs(x[self.integer_mask] - np.round(x[self.integer_mask]))
        return bool(np.all(integral <= tolerance))


@dataclass
class IlpSolution:
    """Result of an ILP solve."""

    x: Optional[np.ndarray]
    objective_value: float
    optimal: bool
    feasible: bool
    nodes_explored: int
    status: str


@dataclass(order=True)
class _Node:
    bound: float
    counter: int = field(compare=True)
    lower: np.ndarray = field(compare=False, default=None)
    upper: np.ndarray = field(compare=False, default=None)


class BranchAndBoundSolver:
    """Branch-and-bound MILP solver over LP relaxations."""

    def __init__(
        self,
        max_nodes: int = 2000,
        time_limit_s: float = 10.0,
        gap_tolerance: float = 1e-4,
    ) -> None:
        self.max_nodes = max_nodes
        self.time_limit_s = time_limit_s
        self.gap_tolerance = gap_tolerance

    # ------------------------------------------------------------------
    def solve(self, problem: IlpProblem) -> IlpSolution:
        """Solve the MILP; always returns the best incumbent found."""
        start = time.monotonic()
        import heapq

        counter = 0
        root = _Node(
            bound=-math.inf,
            counter=counter,
            lower=problem.lower_bounds.copy(),
            upper=problem.upper_bounds.copy(),
        )
        heap: List[_Node] = [root]
        incumbent_x: Optional[np.ndarray] = None
        incumbent_value = math.inf
        nodes = 0
        proven_optimal = False

        while heap:
            if nodes >= self.max_nodes or (time.monotonic() - start) > self.time_limit_s:
                break
            node = heapq.heappop(heap)
            if node.bound >= incumbent_value - self.gap_tolerance and incumbent_x is not None:
                continue
            nodes += 1

            relaxed = self._solve_lp(problem, node.lower, node.upper)
            if relaxed is None:
                continue
            x_lp, value_lp = relaxed
            if value_lp >= incumbent_value - self.gap_tolerance:
                continue

            fractional = self._most_fractional(problem, x_lp)
            if fractional is None:
                # Integral LP solution: new incumbent.
                if value_lp < incumbent_value:
                    incumbent_value = value_lp
                    incumbent_x = x_lp
                continue

            # Try a rounded incumbent to tighten pruning early.
            rounded = self._round_candidate(problem, x_lp)
            if rounded is not None:
                rounded_value = float(problem.objective @ rounded)
                if rounded_value < incumbent_value:
                    incumbent_value = rounded_value
                    incumbent_x = rounded

            index, frac_value = fractional
            for branch_upper in (math.floor(frac_value), None):
                lower = node.lower.copy()
                upper = node.upper.copy()
                if branch_upper is not None:
                    upper[index] = branch_upper
                else:
                    lower[index] = math.ceil(frac_value)
                if lower[index] > upper[index]:
                    continue
                counter += 1
                heapq.heappush(
                    heap, _Node(bound=value_lp, counter=counter, lower=lower, upper=upper)
                )

        if not heap and incumbent_x is not None:
            proven_optimal = True

        if incumbent_x is None:
            return IlpSolution(
                x=None,
                objective_value=math.inf,
                optimal=False,
                feasible=False,
                nodes_explored=nodes,
                status="infeasible_or_unsolved",
            )
        status = "optimal" if proven_optimal else "incumbent"
        return IlpSolution(
            x=incumbent_x,
            objective_value=incumbent_value,
            optimal=proven_optimal,
            feasible=True,
            nodes_explored=nodes,
            status=status,
        )

    # ------------------------------------------------------------------
    def _solve_lp(
        self, problem: IlpProblem, lower: np.ndarray, upper: np.ndarray
    ) -> Optional[Tuple[np.ndarray, float]]:
        bounds = list(zip(lower, upper))
        result = linprog(
            c=problem.objective,
            A_ub=problem.constraint_matrix,
            b_ub=problem.constraint_bounds,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            return None
        return np.asarray(result.x, dtype=float), float(result.fun)

    def _most_fractional(
        self, problem: IlpProblem, x: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        best_index = None
        best_distance = _TOLERANCE
        for index in np.nonzero(problem.integer_mask)[0]:
            value = x[index]
            distance = abs(value - round(value))
            if distance > best_distance:
                best_distance = distance
                best_index = int(index)
        if best_index is None:
            return None
        return best_index, float(x[best_index])

    def _round_candidate(self, problem: IlpProblem, x: np.ndarray) -> Optional[np.ndarray]:
        """Round binaries down (safe for knapsack-style constraints) and re-check."""
        candidate = x.copy()
        integer_indices = np.nonzero(problem.integer_mask)[0]
        candidate[integer_indices] = np.floor(candidate[integer_indices] + _TOLERANCE)
        # Re-optimize the continuous variables with binaries fixed.
        fixed_lower = problem.lower_bounds.copy()
        fixed_upper = problem.upper_bounds.copy()
        fixed_lower[integer_indices] = candidate[integer_indices]
        fixed_upper[integer_indices] = candidate[integer_indices]
        solved = self._solve_lp(problem, fixed_lower, fixed_upper)
        if solved is None:
            return None
        candidate = solved[0]
        if problem.is_feasible(candidate):
            return candidate
        return None
