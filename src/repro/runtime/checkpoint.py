"""Checkpoint/resume for long searches.

A checkpoint is a single JSON file holding everything needed to continue a
search after an interruption: the proposal list, the full trial history, the
optimizer's observation log, its RNG state(s), and any optimizer-declared
ask-side state (``Optimizer.extra_checkpoint_state`` — sweep queues,
annealing incumbents).  On resume the optimizer is rebuilt by *replaying*
the observations through ``tell`` (population- and surrogate-based
optimizers derive their internal state from observations), restoring the
declared extra state, and finally restoring the saved RNG state — so a
resumed run continues with exactly the proposal stream an uninterrupted run
would have produced, bit-for-bit for every built-in optimizer.

The bit-for-bit guarantee holds when the checkpointed trial count is a
multiple of the batch size, which is always the case for interruption
recovery (checkpoints are written at batch boundaries).  *Extending* a
completed run whose budget truncated its final batch (e.g. 18 trials at
batch size 8) is also supported and continues the search validly, but the
extra boundary means the trajectory may differ from a single larger-budget
run.

The file is written atomically (temp file, ``fsync``, rename), so a crash —
or power loss — mid-save never corrupts the previous checkpoint; a stale
``.tmp`` file left by a killed save is swept on the next load or save.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.trial import TrialMetrics
from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.runtime.faults import get_fault_plan
from repro.reporting.serialization import (
    params_from_jsonable,
    params_to_jsonable,
    trial_metrics_from_dict,
    trial_metrics_to_dict,
)
from repro.search.optimizer import Optimizer

__all__ = ["CheckpointState", "SearchCheckpoint"]

_FORMAT_VERSION = 1


@dataclass
class CheckpointState:
    """In-memory form of a checkpoint."""

    fingerprint: str
    proposals: List[ParameterValues] = field(default_factory=list)
    history: List[TrialMetrics] = field(default_factory=list)
    optimizer_state: Dict[str, object] = field(default_factory=dict)

    @property
    def num_completed(self) -> int:
        """Trials completed at checkpoint time."""
        return len(self.history)


def _rng_states(optimizer: Optimizer) -> Dict[str, object]:
    """Collect RNG states from an optimizer (and a wrapped inner optimizer)."""
    states = {"rng": optimizer.rng.bit_generator.state}
    inner = getattr(optimizer, "inner", None)
    if isinstance(inner, Optimizer):
        states["inner.rng"] = inner.rng.bit_generator.state
    return states


def _restore_rng_states(optimizer: Optimizer, states: Dict[str, object]) -> None:
    if "rng" in states:
        optimizer.rng.bit_generator.state = states["rng"]
    inner = getattr(optimizer, "inner", None)
    if isinstance(inner, Optimizer) and "inner.rng" in states:
        inner.rng.bit_generator.state = states["inner.rng"]


def optimizer_state_to_dict(optimizer: Optimizer) -> Dict[str, object]:
    """Serialize an optimizer: observation log, RNG state(s), and any
    optimizer-declared ask-side state (sweep queues, incumbents, ...)."""
    return {
        "observations": [
            {
                "params": params_to_jsonable(obs.params),
                "objective": obs.objective,
                "feasible": obs.feasible,
            }
            for obs in optimizer.observations
        ],
        "rng_states": _rng_states(optimizer),
        "extra": optimizer.extra_checkpoint_state(),
    }


def restore_optimizer(
    optimizer: Optimizer, space: DatapathSearchSpace, state: Dict[str, object]
) -> None:
    """Rebuild optimizer state: replay observations, restore declared extra
    state, then restore RNGs (in that order, so replay side-effects that
    consumed fresh RNG draws or rebuilt stale internal state are overwritten).

    The optimizer must be freshly constructed (no observations yet); replay
    into a used optimizer would double-count trials.
    """
    if optimizer.observations:
        raise ValueError("cannot restore into an optimizer that already has observations")
    for record in state.get("observations", []):
        params = params_from_jsonable(record["params"], space)
        optimizer.tell(params, record["objective"], feasible=record["feasible"])
    optimizer.restore_extra_checkpoint_state(state.get("extra", {}))
    _restore_rng_states(optimizer, state.get("rng_states", {}))


class SearchCheckpoint:
    """Periodic checkpoint writer/reader bound to one file path.

    Args:
        path: Checkpoint JSON file.
        interval: Save every ``interval`` completed trials (the search also
            saves once at the end of the run).
    """

    def __init__(self, path: Union[str, Path], interval: int = 10) -> None:
        self.path = Path(path)
        self.interval = max(1, int(interval))
        self._last_saved = -1

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        """Whether a checkpoint file is present."""
        return self.path.exists()

    @property
    def _tmp_path(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".tmp")

    def save(self, state: CheckpointState) -> Path:
        """Atomically + durably write a checkpoint; returns the path."""
        payload = {
            "version": _FORMAT_VERSION,
            "fingerprint": state.fingerprint,
            "num_completed": state.num_completed,
            "proposals": [params_to_jsonable(p) for p in state.proposals],
            "history": [trial_metrics_to_dict(m) for m in state.history],
            "optimizer": state.optimizer_state,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = self._tmp_path
        text = json.dumps(payload)
        plan = get_fault_plan()
        if plan is not None and plan.fire("torn-write") is not None:
            # Injected crash mid-save: a partial temp file is left behind
            # and the rename never happens.  The previous checkpoint stays
            # intact and the next save (or load) sweeps the debris.
            tmp_path.write_text(text[: max(1, len(text) // 2)])
            return self.path
        with tmp_path.open("w") as handle:
            handle.write(text)
            # Durable before the rename: os.replace is atomic against
            # crashes, but only fsync makes the *content* survive power
            # loss once the new name is visible.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        self._last_saved = state.num_completed
        return self.path

    def maybe_save(self, state: CheckpointState) -> Optional[Path]:
        """Save if at least ``interval`` trials completed since the last save."""
        if state.num_completed - max(self._last_saved, 0) >= self.interval:
            return self.save(state)
        return None

    def load(self, space: DatapathSearchSpace) -> CheckpointState:
        """Read and decode the checkpoint file.

        Sweeps any stale ``.tmp`` debris a killed save left next to the
        checkpoint (its content is partial by construction — the real file
        is only ever replaced after a full fsync'd write).
        """
        self._tmp_path.unlink(missing_ok=True)
        try:
            payload = json.loads(self.path.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(
                f"checkpoint {self.path} is corrupt ({error}); delete it to "
                "restart the search from scratch"
            ) from error
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version!r}")
        state = CheckpointState(
            fingerprint=payload["fingerprint"],
            proposals=[params_from_jsonable(p, space) for p in payload.get("proposals", [])],
            history=[trial_metrics_from_dict(m) for m in payload.get("history", [])],
            optimizer_state=payload.get("optimizer", {}),
        )
        self._last_saved = state.num_completed
        return state
