"""Batched ask/tell adapter over the single-proposal optimizer interface.

Evaluating trials in parallel requires asking the optimizer for several
proposals *before* any of their results are known.  :class:`BatchedOptimizer`
adapts any :class:`~repro.search.optimizer.Optimizer` to that pattern:

* ``ask_batch(n)`` prefers the optimizer's native ``ask_batch`` (population /
  neighborhood / acquisition-ranked proposals generated in one pass, see
  :meth:`repro.search.optimizer.Optimizer.ask_batch`) and falls back to
  repeated ``ask()`` calls for duck-typed optimizers without one.  Either
  way every proposal passes tabu-style de-duplication — a proposal identical
  to anything already proposed in this run is re-asked a few times and
  finally diversified with a local mutation, so a batch never wastes
  parallel slots on duplicate configurations.
* ``tell_batch`` replays the measured outcomes in proposal order, which keeps
  the optimizer's observation log — and therefore its future trajectory —
  independent of the order in which workers happened to finish.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence, Tuple

from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.reporting.serialization import params_to_jsonable
from repro.search.optimizer import Observation, Optimizer

__all__ = ["proposal_key", "BatchedOptimizer"]


def proposal_key(params: ParameterValues) -> str:
    """Canonical string identity of a parameter assignment."""
    return json.dumps(params_to_jsonable(params), sort_keys=True)


class BatchedOptimizer:
    """Ask/tell batching wrapper for a black-box optimizer.

    Args:
        optimizer: The wrapped optimizer (its ``rng`` drives diversification,
            so the batched trajectory stays deterministic for a fixed seed).
        space: Search space used for fallback mutations; defaults to the
            optimizer's own space.
        max_retries: Times a duplicate proposal is re-asked before falling
            back to mutation.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        space: DatapathSearchSpace = None,
        max_retries: int = 8,
    ) -> None:
        self.optimizer = optimizer
        self.space = space or optimizer.space
        self.max_retries = max(0, int(max_retries))
        self._seen_keys = set()
        self.num_duplicates_avoided = 0

    # ------------------------------------------------------------------
    def note_proposed(self, params: ParameterValues) -> None:
        """Mark a proposal as used without asking for it (seeds, resumed runs)."""
        self._seen_keys.add(proposal_key(params))

    def ask_batch(self, n: int) -> List[ParameterValues]:
        """Propose ``n`` de-duplicated parameter assignments."""
        native = getattr(self.optimizer, "ask_batch", None)
        if callable(native):
            raw = list(native(n))
        else:
            raw = [self.optimizer.ask() for _ in range(n)]
        return [self._dedup(params) for params in raw]

    def _dedup(self, params: ParameterValues) -> ParameterValues:
        key = proposal_key(params)
        retries = 0
        while key in self._seen_keys and retries < self.max_retries:
            self.num_duplicates_avoided += 1
            # Mutate first, re-ask only for persistent duplicates: a local
            # mutation usually suffices and costs nothing, while a re-ask can
            # be expensive (e.g. a full surrogate refit for the Bayesian
            # optimizer) but lets guided optimizers move on their own when
            # mutations keep landing on seen configurations.
            if retries % 2 == 0:
                params = self.space.mutate(params, self.optimizer.rng, num_mutations=2)
            else:
                params = self.optimizer.ask()
            key = proposal_key(params)
            retries += 1
        self._seen_keys.add(key)
        return params

    # ------------------------------------------------------------------
    def tell_batch(
        self,
        proposals: Sequence[ParameterValues],
        outcomes: Iterable[Tuple[float, bool]],
    ) -> List[Observation]:
        """Report ``(objective, feasible)`` outcomes in proposal order."""
        observations = []
        for params, (objective, feasible) in zip(proposals, outcomes):
            observations.append(self.optimizer.tell(params, objective, feasible=feasible))
        return observations

    def tell(self, params: ParameterValues, objective: float, feasible: bool = True) -> Observation:
        """Single-result passthrough (also records the proposal as seen)."""
        self.note_proposed(params)
        return self.optimizer.tell(params, objective, feasible=feasible)
