"""Tracing and metrics telemetry for the search runtime.

This module is the observability substrate every other runtime layer reports
through: a dependency-free span tracer plus a Prometheus-style metrics
registry.  It deliberately imports nothing from the rest of the package (and
nothing beyond the stdlib), so any module — the simulator's inner loop, the
executor workers, the HTTP service — can instrument itself without creating
import cycles.

Tracing
-------
A :class:`Tracer` records :class:`SpanRecord` entries — named, monotonic-
timed intervals with attributes, parent links, and process/thread ids — into
a bounded in-memory ring buffer:

* ``with tracer.span("simulate", workload=name) as sp`` opens a span; spans
  opened inside it (same thread/async context, via :mod:`contextvars`)
  become its children automatically.
* The **global tracer is disabled by default** and ``span()`` then returns a
  shared no-op handle, so instrumented hot paths cost one attribute check
  when tracing is off — search histories are bit-for-bit identical either
  way because the tracer never touches any search RNG (it keeps a private
  ``random.Random`` used only for sampling decisions).
* ``sample_rate`` bounds overhead: the sampling decision is made once per
  *root* span from the tracer's seeded private RNG (children always follow
  their root), so a given seed reproduces the identical kept/dropped
  sequence.
* Spans cross process boundaries as plain dicts: executor workers ``drain()``
  their buffer after each task and the parent ``ingest()`` merges them
  (idempotently — re-ingesting a span id is a no-op, so hedged or retried
  deliveries can never duplicate a span).
* ``context_header()`` / ``parent_header=`` propagate a ``trace_id:span_id``
  pair over the wire (the ``X-Repro-Trace-Context`` HTTP header), letting a
  service parent its server-side spans under the client's request span.

Trace sinks: the ring buffer itself (``drain()``/``snapshot()``), a
streaming :class:`JsonlSpanSink`, and :func:`write_chrome_trace`, whose
output loads directly into ``about://tracing`` / Perfetto.
:func:`load_trace` reads both file forms back into records.

Metrics
-------
:class:`MetricsRegistry` holds counters, gauges, and histograms with label
support and renders them in the Prometheus text exposition format
(``expose()``), which is what ``repro serve`` returns from ``GET /metrics``.
Metrics are get-or-create by name, so call sites never need module-level
handles::

    get_metrics().counter(
        "repro_remote_requests_total", "Remote requests.", ("endpoint", "status")
    ).inc(endpoint=url, status="ok")
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "TRACE_CONTEXT_HEADER",
    "SpanRecord",
    "Span",
    "NULL_SPAN",
    "Tracer",
    "JsonlSpanSink",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl_trace",
    "load_trace",
    "get_tracer",
    "set_tracer",
    "configure_tracer",
    "telemetry_config",
    "apply_telemetry_config",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
]

#: HTTP header carrying ``trace_id:span_id`` from a client request span to
#: the service, so server-side spans link into the client's trace.
TRACE_CONTEXT_HEADER = "X-Repro-Trace-Context"


# ---------------------------------------------------------------------------
# Span records
# ---------------------------------------------------------------------------
@dataclass
class SpanRecord:
    """One finished span: a named, timed interval with attributes.

    ``start_unix`` is wall-clock (``time.time``) so spans from different
    processes and hosts land on one shared timeline; ``duration`` is measured
    with ``time.perf_counter`` so the interval itself is monotonic and
    immune to clock steps.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start_unix: float
    duration: float
    category: str = "app"
    pid: int = 0
    tid: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible wire form (worker deltas, service responses)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration": self.duration,
            "category": self.category,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpanRecord":
        """Rebuild a record from :meth:`to_dict` output (extras ignored)."""
        return cls(
            name=str(data["name"]),
            trace_id=str(data.get("trace_id") or ""),
            span_id=str(data.get("span_id") or ""),
            parent_id=(
                str(data["parent_id"]) if data.get("parent_id") is not None else None
            ),
            start_unix=float(data.get("start_unix", 0.0)),
            duration=float(data.get("duration", 0.0)),
            category=str(data.get("category", "app")),
            pid=int(data.get("pid", 0)),
            tid=int(data.get("tid", 0)),
            attrs=dict(data.get("attrs") or {}),
        )


class Span:
    """Live handle of an in-flight span; also a context manager.

    Entering sets the span as the current context parent (new spans opened
    in the same thread/async context nest under it); exiting restores the
    previous parent and records the span.  ``sampled=False`` spans go
    through all the motions except the final record, so an unsampled root
    silently drops its whole subtree.
    """

    __slots__ = ("_tracer", "record", "sampled", "_t0", "_token", "finished")

    def __init__(self, tracer: "Tracer", record: SpanRecord, sampled: bool) -> None:
        self._tracer = tracer
        self.record = record
        self.sampled = sampled
        self._t0 = time.perf_counter()
        self._token: Optional[contextvars.Token] = None
        self.finished = False

    def set_attr(self, key: str, value: object) -> "Span":
        """Attach one attribute; returns self for chaining."""
        self.record.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        self._token = self._tracer._current.set(self)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._token is not None:
            self._tracer._current.reset(self._token)
            self._token = None
        self._tracer.finish(self)


class _NullSpan:
    """Shared no-op span handle returned while tracing is disabled."""

    __slots__ = ()
    record = None
    sampled = False
    finished = True

    def set_attr(self, key: str, value: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpan()

SpanHandle = Union[Span, _NullSpan]


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
class Tracer:
    """Thread-safe span tracer with a bounded ring buffer.

    Args:
        enabled: Record spans at all (off by default; ``span()`` is then a
            near-free no-op).
        sample_rate: Probability a *root* span (and hence its subtree) is
            kept.  Decisions come from a private ``random.Random(seed)``,
            so they are deterministic per seed and never perturb search RNG
            state.
        seed: Seed of the sampling RNG.
        capacity: Ring-buffer size; the oldest spans are evicted first
            (``dropped`` counts evictions) so tracing memory stays bounded
            on arbitrarily long runs.
        trace_id: Trace identity shared by every root span this tracer
            records; defaults to a fresh random id.  Executor workers adopt
            the parent's trace id through :func:`apply_telemetry_config`.
    """

    def __init__(
        self,
        enabled: bool = False,
        sample_rate: float = 1.0,
        seed: int = 0,
        capacity: int = 65536,
        trace_id: Optional[str] = None,
    ) -> None:
        self.enabled = bool(enabled)
        self.sample_rate = min(1.0, max(0.0, float(sample_rate)))
        self.seed = int(seed)
        self.capacity = max(1, int(capacity))
        # Private RNG: used ONLY for sampling decisions, so tracing can
        # never perturb the search trajectory.
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._buffer: deque = deque(maxlen=self.capacity)
        self._current: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
            "repro_current_span", default=None
        )
        # Span ids are unique across processes: pid + per-tracer random salt
        # + a monotonic counter.  (A forked child that keeps the parent's
        # tracer still differs by pid; re-initialized workers get a fresh
        # salt through apply_telemetry_config.)
        self._salt = os.urandom(4).hex()
        self._pid = os.getpid()
        self._id_prefix = f"{self._pid:x}-{self._salt}-"
        self._ids = itertools.count(1)
        self.trace_id = trace_id or self._new_id()
        self._seen: set = set()
        self._seen_order: deque = deque()
        self.total_recorded = 0
        self.dropped = 0
        self.sinks: List = []

    # ------------------------------------------------------------------
    def _new_id(self) -> str:
        # itertools.count is atomic under the GIL, so the id hot path needs
        # no lock.
        return f"{self._id_prefix}{next(self._ids):x}"

    def current_span(self) -> Optional[Span]:
        """The innermost open span of this context, or None."""
        return self._current.get()

    def context_header(self) -> Optional[str]:
        """``trace_id:span_id`` of the current span, for wire propagation."""
        span = self._current.get()
        if span is None or span.record is None:
            return None
        return f"{span.record.trace_id}:{span.record.span_id}"

    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "app", **attrs: object) -> SpanHandle:
        """Open a span as a context manager (the common instrumentation API).

        Returns :data:`NULL_SPAN` when tracing is disabled, so call sites
        never need their own enabled check.
        """
        if not self.enabled:
            return NULL_SPAN
        return self.start(name, category, None, None, attrs)

    def start(
        self,
        name: str,
        category: str = "app",
        parent: Optional[SpanHandle] = None,
        parent_header: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> SpanHandle:
        """Open a span with explicit parentage (handler / non-``with`` use).

        Parent resolution order: an explicit ``parent`` span, a wire
        ``parent_header`` (``trace_id:span_id``), then the current context
        span.  The caller must :meth:`finish` the span (or use it as a
        context manager).
        """
        if not self.enabled:
            return NULL_SPAN
        trace_id = self.trace_id
        parent_id: Optional[str] = None
        sampled: Optional[bool] = None
        if parent is None and parent_header is None:
            parent = self._current.get()
        if isinstance(parent, Span):
            parent_id = parent.record.span_id
            trace_id = parent.record.trace_id
            sampled = parent.sampled
        elif parent_header:
            pieces = str(parent_header).split(":", 1)
            if len(pieces) == 2 and pieces[0] and pieces[1]:
                trace_id, parent_id = pieces[0], pieces[1]
                sampled = True  # the remote side already made the decision
        if sampled is None:  # root span: one deterministic sampling decision
            if self.sample_rate >= 1.0:
                sampled = True
            else:
                with self._lock:
                    sampled = self._rng.random() < self.sample_rate
        # Positional construction: keyword passing costs ~2x as much per
        # record, and this runs once per span.  The span takes ownership of
        # `attrs` (every caller passes a fresh dict), skipping a copy.
        record = SpanRecord(
            name,
            trace_id,
            self._new_id(),
            parent_id,
            time.time(),
            0.0,
            category,
            self._pid,
            threading.get_ident() & 0xFFFFFFFF,
            attrs if attrs is not None else {},
        )
        return Span(self, record, sampled)

    def finish(self, span: SpanHandle) -> None:
        """Close a span: stamp its duration and record it (if sampled)."""
        if span.finished:  # also covers NULL_SPAN, whose finished is True
            return
        span.finished = True
        span.record.duration = time.perf_counter() - span._t0
        if not span.sampled:
            return
        self._append(span.record)
        for sink in self.sinks:
            try:
                sink(span.record)
            except Exception:
                pass  # a broken sink must never break the traced code

    def record_span(
        self,
        name: str,
        start_unix: float,
        duration: float,
        category: str = "app",
        parent_id: Optional[str] = None,
        **attrs: object,
    ) -> Optional[SpanRecord]:
        """Record an already-measured interval as a span (no context games).

        Used to synthesize run-level spans from existing timings (e.g. the
        ``search`` root span from the loop's elapsed time) without wrapping
        large code blocks.
        """
        if not self.enabled:
            return None
        record = SpanRecord(
            name=name,
            trace_id=self.trace_id,
            span_id=self._new_id(),
            parent_id=parent_id,
            start_unix=float(start_unix),
            duration=max(0.0, float(duration)),
            category=category,
            pid=self._pid,
            tid=threading.get_ident() & 0xFFFFFFFF,
            attrs=dict(attrs),
        )
        self._append(record)
        return record

    # ------------------------------------------------------------------
    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._buffer) == self._buffer.maxlen:
                self.dropped += 1
            self._buffer.append(record)
            self.total_recorded += 1

    def ingest(self, records: Iterable[Union[SpanRecord, Dict[str, object]]]) -> int:
        """Merge foreign spans (worker deltas, service responses); dedup.

        Spans are identified by ``(trace_id, span_id)``; re-ingesting an id
        already seen is a no-op, so hedged requests, retries, and repeated
        deliveries can never make a span appear twice.  Returns the number
        of spans actually added.
        """
        added = 0
        for raw in records or ():
            record = raw if isinstance(raw, SpanRecord) else SpanRecord.from_dict(raw)
            key = (record.trace_id, record.span_id)
            with self._lock:
                if key in self._seen:
                    continue
                self._seen.add(key)
                self._seen_order.append(key)
                while len(self._seen_order) > 4 * self.capacity:
                    self._seen.discard(self._seen_order.popleft())
                if len(self._buffer) == self._buffer.maxlen:
                    self.dropped += 1
                self._buffer.append(record)
                self.total_recorded += 1
                added += 1
        return added

    def drain(self) -> List[SpanRecord]:
        """Return all buffered spans and clear the buffer."""
        with self._lock:
            records = list(self._buffer)
            self._buffer.clear()
        return records

    def snapshot(self) -> List[SpanRecord]:
        """All buffered spans without clearing (tests, live inspection)."""
        with self._lock:
            return list(self._buffer)

    def clear(self) -> None:
        """Drop all buffered spans and dedup state."""
        with self._lock:
            self._buffer.clear()
            self._seen.clear()
            self._seen_order.clear()

    # ------------------------------------------------------------------
    def config(self) -> Dict[str, object]:
        """Serializable configuration (shipped to executor workers)."""
        return {
            "enabled": self.enabled,
            "sample_rate": self.sample_rate,
            "seed": self.seed,
            "capacity": self.capacity,
            "trace_id": self.trace_id,
        }


# ---------------------------------------------------------------------------
# Trace sinks / exporters
# ---------------------------------------------------------------------------
class JsonlSpanSink:
    """Streaming sink appending each finished span as one JSON line.

    Attach with ``tracer.sinks.append(sink)``; call :meth:`close` (or use as
    a context manager) to flush.  The resulting file is what
    :func:`load_trace` reads back.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = open(self.path, "a")
        self._lock = threading.Lock()
        self.written = 0

    def __call__(self, record: SpanRecord) -> None:
        with self._lock:
            self._handle.write(json.dumps(record.to_dict()) + "\n")
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self) -> "JsonlSpanSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def chrome_trace_events(records: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """Convert spans to Chrome ``trace_event`` dicts (complete ``X`` events).

    Timestamps are microseconds relative to the earliest span, so the trace
    opens at t=0 in ``about://tracing`` / Perfetto.  Span identity and
    attributes ride in ``args`` so :func:`load_trace` can reconstruct the
    hierarchy from the exported file.
    """
    events: List[Dict[str, object]] = []
    if not records:
        return events
    base = min(r.start_unix for r in records)
    for pid in sorted({r.pid for r in records}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    for r in records:
        events.append(
            {
                "name": r.name,
                "cat": r.category,
                "ph": "X",
                "ts": round((r.start_unix - base) * 1e6, 3),
                "dur": round(r.duration * 1e6, 3),
                "pid": r.pid,
                "tid": r.tid,
                "args": {
                    "trace_id": r.trace_id,
                    "span_id": r.span_id,
                    "parent_id": r.parent_id,
                    **r.attrs,
                },
            }
        )
    return events


def write_chrome_trace(records: Sequence[SpanRecord], path: str) -> int:
    """Write spans as a Chrome-trace JSON file; returns the span count."""
    payload = {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro telemetry"},
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(records)


def write_jsonl_trace(records: Sequence[SpanRecord], path: str) -> int:
    """Write spans as JSON lines (one span per line); returns the count."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict()) + "\n")
    return len(records)


def load_trace(path: str) -> List[SpanRecord]:
    """Read spans back from a JSONL or Chrome-trace file (``repro trace``)."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        return []
    # Chrome-trace files are one JSON document; JSONL lines each start with
    # "{" too, so distinguish by whether the whole file parses as one value.
    payload = None
    if stripped.startswith(("{", "[")):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
    if isinstance(payload, dict) and "traceEvents" not in payload:
        payload = None  # a single-line JSONL file: treat as JSONL below
    if payload is not None:
        events = payload.get("traceEvents", []) if isinstance(payload, dict) else payload
        records = []
        for event in events:
            if event.get("ph") != "X":
                continue
            args = dict(event.get("args") or {})
            records.append(
                SpanRecord(
                    name=str(event.get("name", "")),
                    trace_id=str(args.pop("trace_id", "") or ""),
                    span_id=str(args.pop("span_id", "") or ""),
                    parent_id=args.pop("parent_id", None),
                    start_unix=float(event.get("ts", 0.0)) / 1e6,
                    duration=float(event.get("dur", 0.0)) / 1e6,
                    category=str(event.get("cat", "app")),
                    pid=int(event.get("pid", 0)),
                    tid=int(event.get("tid", 0)),
                    attrs=args,
                )
            )
        return records
    return [
        SpanRecord.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


# ---------------------------------------------------------------------------
# Global tracer
# ---------------------------------------------------------------------------
_GLOBAL_TRACER = Tracer(enabled=False)
_GLOBAL_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The process-global tracer (disabled until :func:`configure_tracer`)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install a tracer as the process-global one; returns it."""
    global _GLOBAL_TRACER
    with _GLOBAL_LOCK:
        _GLOBAL_TRACER = tracer
    return tracer


def configure_tracer(
    enabled: bool = True,
    sample_rate: float = 1.0,
    seed: int = 0,
    capacity: int = 65536,
    trace_id: Optional[str] = None,
) -> Tracer:
    """Replace the global tracer with a freshly configured one."""
    return set_tracer(
        Tracer(
            enabled=enabled,
            sample_rate=sample_rate,
            seed=seed,
            capacity=capacity,
            trace_id=trace_id,
        )
    )


def telemetry_config() -> Optional[Dict[str, object]]:
    """The global tracer's config, or None when tracing is off.

    This is what executor pools ship to worker initializers: ``None`` keeps
    workers untraced, a dict makes them trace into the same trace id.
    """
    tracer = get_tracer()
    return tracer.config() if tracer.enabled else None


def apply_telemetry_config(config: Optional[Dict[str, object]]) -> Tracer:
    """Install a fresh global tracer from a :func:`telemetry_config` dict.

    Always replaces the tracer (disabled when ``config`` is falsy), so a
    fork-inherited parent buffer can never leak parent spans out of a
    worker — worker spans appear exactly once, via the per-task drain.
    """
    if not config:
        return set_tracer(Tracer(enabled=False))
    return set_tracer(
        Tracer(
            enabled=bool(config.get("enabled", True)),
            sample_rate=float(config.get("sample_rate", 1.0)),
            seed=int(config.get("seed", 0)),
            capacity=int(config.get("capacity", 65536)),
            trace_id=str(config.get("trace_id")) if config.get("trace_id") else None,
        )
    )


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats via repr."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _MetricBase:
    """Shared label plumbing of all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, ...], float] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        extra = set(labels) - set(self.labelnames)
        if extra:
            raise ValueError(
                f"metric {self.name!r} has no label(s) {sorted(extra)}; "
                f"declared: {list(self.labelnames)}"
            )
        return tuple(str(labels.get(name, "")) for name in self.labelnames)

    def _label_suffix(self, key: Tuple[str, ...], extra: str = "") -> str:
        pairs = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def samples(self) -> Dict[Tuple[str, ...], float]:
        """Label-key -> value snapshot (counters and gauges)."""
        with self._lock:
            return dict(self._values)

    def value(self, **labels: object) -> float:
        """Current value for one label combination (0 if never touched)."""
        return self.samples().get(self._key(labels), 0.0)

    def expose_lines(self) -> List[str]:
        lines = []
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(f"{self.name}{self._label_suffix(key)} {_format_value(value)}")
        return lines


class Counter(_MetricBase):
    """Monotonically increasing counter."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_MetricBase):
    """Value that can go up and down (set or adjusted)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


#: Latency-oriented default buckets, in seconds.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Histogram(_MetricBase):
    """Cumulative histogram with ``_bucket``/``_sum``/``_count`` exposition."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}
        self._totals: Dict[Tuple[str, ...], int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: object) -> int:
        """Total observations for one label combination."""
        with self._lock:
            return self._totals.get(self._key(labels), 0)

    def expose_lines(self) -> List[str]:
        lines = []
        with self._lock:
            keys = sorted(self._totals)
            counts = {k: list(v) for k, v in self._counts.items()}
            sums = dict(self._sums)
            totals = dict(self._totals)
        for key in keys:
            for bound, cumulative in zip(self.buckets, counts[key]):
                suffix = self._label_suffix(key, f'le="{_format_value(bound)}"')
                lines.append(f"{self.name}_bucket{suffix} {cumulative}")
            inf_suffix = self._label_suffix(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{inf_suffix} {totals[key]}")
            lines.append(
                f"{self.name}_sum{self._label_suffix(key)} {_format_value(sums[key])}"
            )
            lines.append(f"{self.name}_count{self._label_suffix(key)} {totals[key]}")
        return lines


class MetricsRegistry:
    """Named metrics with get-or-create registration and text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _MetricBase] = {}

    def _get_or_create(self, cls, name: str, help_text: str, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {list(existing.labelnames)}"
                    )
                return existing
            metric = cls(name, help_text, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_MetricBase]:
        """Look a metric up by name (None if absent)."""
        with self._lock:
            return self._metrics.get(name)

    def expose(self) -> str:
        """Prometheus text exposition format of every registered metric."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.expose_lines())
        return "\n".join(lines) + ("\n" if lines else "")


_GLOBAL_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL_METRICS


def reset_metrics() -> MetricsRegistry:
    """Replace the global registry with an empty one (tests)."""
    global _GLOBAL_METRICS
    _GLOBAL_METRICS = MetricsRegistry()
    return _GLOBAL_METRICS
