"""Live cross-shard best-score exchange for guided optimizers.

Shards of a sweep normally search in complete isolation; guided optimizers
(annealing, Bayesian EI) could converge faster if they knew the best score —
and best design — any *other* shard has found so far.  This module provides
a small shared *scoreboard* with two interchangeable backings:

* :class:`FileScoreboard` — one JSON file per shard next to a common prefix
  (``<path>.shard-<k>``), written atomically (temp file + rename) so
  concurrent shards on one filesystem never observe torn records.
* :class:`ServiceScoreboard` — the ``/scoreboard`` routes of a running
  :mod:`repro.runtime.service` endpoint, for multi-host sweeps without a
  shared filesystem.

:class:`ExchangeClient` binds a scoreboard to one shard: the search loop
publishes its best-so-far after every batch and polls the best score among
the *other* shards before asking the next one, feeding what it finds to
:meth:`repro.search.optimizer.Optimizer.observe_external_best` (annealing
adopts a better external incumbent; Bayesian EI tightens its incumbent
``best_y``).  The exchange is **off by default** and deliberately excludes
the shard's own records, so a 1-shard sweep with exchange enabled — and any
sweep with it disabled — reproduces the plain search bit-for-bit.

All scoreboard I/O is best-effort: a missing file, unreachable service, or
malformed record never fails a shard (errors are counted, not raised).
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.runtime.cache import _pid_alive

__all__ = [
    "ScoreRecord",
    "Scoreboard",
    "FileScoreboard",
    "ServiceScoreboard",
    "ExchangeClient",
    "make_scoreboard",
]


@dataclass(frozen=True)
class ScoreRecord:
    """One shard's published best result.

    ``objective`` is the *minimized* value (what optimizers compare);
    ``score`` is the human-facing aggregate score.  ``params`` is the
    jsonable parameter assignment of the best design, so a receiving
    optimizer can adopt it, not just know it exists.
    """

    shard_id: int
    objective: float
    score: float
    params: Optional[dict] = None
    trials: int = 0

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "objective": self.objective,
            "score": self.score,
            "params": self.params,
            "trials": self.trials,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScoreRecord":
        return cls(
            shard_id=int(data["shard_id"]),
            objective=float(data["objective"]),
            score=float(data.get("score", 0.0)),
            params=data.get("params"),
            trials=int(data.get("trials", 0)),
        )


class Scoreboard(ABC):
    """Shared best-score store a sweep's shards publish to and poll."""

    errors: int = 0

    @abstractmethod
    def publish(self, record: ScoreRecord) -> None:
        """Publish one shard's best (keeps the better of old and new)."""

    @abstractmethod
    def poll(self) -> Dict[int, ScoreRecord]:
        """Current best record per shard (may be empty)."""

    def best_external(self, shard_id: int) -> Optional[ScoreRecord]:
        """Best record among all *other* shards, or ``None``."""
        others = [r for sid, r in self.poll().items() if sid != shard_id]
        if not others:
            return None
        return min(others, key=lambda r: r.objective)


class FileScoreboard(Scoreboard):
    """File-backed scoreboard: one atomic JSON file per shard.

    A publish writes a per-pid temp file, fsyncs it, and renames it over
    the shard file, so readers never see torn records even across power
    loss.  Temp files orphaned by *crashed* writers (the rename never
    happened) are swept on :meth:`poll` once their writer pid is dead;
    ``stale_tmp_swept`` counts them.

    Args:
        path: Common prefix; shard ``k`` owns ``<path>.shard-<k>``.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.errors = 0
        self.stale_tmp_swept = 0

    def _shard_file(self, shard_id: int) -> Path:
        return self.path.with_name(f"{self.path.name}.shard-{shard_id}")

    def publish(self, record: ScoreRecord) -> None:
        target = self._shard_file(record.shard_id)
        try:
            incumbent = self._read(target)
            if incumbent is not None and incumbent.objective <= record.objective:
                return
            target.parent.mkdir(parents=True, exist_ok=True)
            # Leading dot keeps the temp file out of the ``.shard-*`` glob.
            tmp = target.with_name(f".{target.name}.tmp-{os.getpid()}")
            with tmp.open("w") as handle:
                handle.write(json.dumps(record.to_dict()))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, target)
        except OSError:
            self.errors += 1

    def _sweep_stale_tmp(self) -> None:
        """Remove ``.tmp-<pid>`` leftovers whose writer process is dead.

        A live writer's temp file exists only for the instant between write
        and rename; anything owned by a dead pid (or unparseable) is debris
        from a crashed publish and would otherwise accumulate forever.
        """
        try:
            leftovers = list(self.path.parent.glob(f".{self.path.name}.shard-*.tmp-*"))
        except OSError:
            return
        for tmp in leftovers:
            pid = tmp.name.rpartition(".tmp-")[2]
            if pid.isdigit() and _pid_alive(int(pid)):
                continue
            try:
                tmp.unlink()
                self.stale_tmp_swept += 1
            except OSError:
                pass  # best effort; retried on the next poll

    def poll(self) -> Dict[int, ScoreRecord]:
        records: Dict[int, ScoreRecord] = {}
        self._sweep_stale_tmp()
        try:
            files = sorted(self.path.parent.glob(f"{self.path.name}.shard-*"))
        except OSError:
            self.errors += 1
            return records
        for file in files:
            record = self._read(file)
            if record is not None:
                records[record.shard_id] = record
        return records

    def _read(self, file: Path) -> Optional[ScoreRecord]:
        try:
            return ScoreRecord.from_dict(json.loads(file.read_text()))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            self.errors += 1
            return None


class ServiceScoreboard(Scoreboard):
    """Scoreboard backed by a :mod:`repro.runtime.service` endpoint."""

    def __init__(self, endpoint: str, timeout: float = 5.0) -> None:
        self.endpoint = endpoint.rstrip("/")
        self.timeout = float(timeout)
        self.errors = 0

    def publish(self, record: ScoreRecord) -> None:
        request = urllib.request.Request(
            self.endpoint + "/scoreboard",
            data=json.dumps(record.to_dict()).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout):
                pass
        except (OSError, urllib.error.URLError):
            self.errors += 1

    def poll(self) -> Dict[int, ScoreRecord]:
        try:
            with urllib.request.urlopen(
                self.endpoint + "/scoreboard", timeout=self.timeout
            ) as response:
                body = json.loads(response.read())
        except (OSError, urllib.error.URLError, json.JSONDecodeError):
            self.errors += 1
            return {}
        records: Dict[int, ScoreRecord] = {}
        for raw in (body.get("scores") or {}).values():
            try:
                record = ScoreRecord.from_dict(raw)
            except (KeyError, TypeError, ValueError):
                self.errors += 1
                continue
            records[record.shard_id] = record
        return records


def make_scoreboard(spec: Union[str, Path, Scoreboard]) -> Scoreboard:
    """Build a scoreboard from a ``--exchange`` value.

    ``http(s)://...`` URLs select the service backing; anything else is a
    file prefix.  An existing :class:`Scoreboard` instance passes through.
    """
    if isinstance(spec, Scoreboard):
        return spec
    text = str(spec)
    if text.startswith("http://") or text.startswith("https://"):
        return ServiceScoreboard(text)
    return FileScoreboard(text)


class ExchangeClient:
    """One shard's view of the exchange: publish own best, poll the others.

    The client remembers the last external objective it fed to the optimizer
    and only re-feeds on *improvement*, so optimizers see a monotone stream
    of external bests (at most one per batch).
    """

    def __init__(self, scoreboard: Scoreboard, shard_id: int) -> None:
        self.scoreboard = scoreboard
        self.shard_id = int(shard_id)
        self.published: int = 0
        self.adopted: int = 0
        self._last_published_objective = float("inf")
        self._last_external_objective = float("inf")

    # ------------------------------------------------------------------
    def publish_best(
        self,
        objective: float,
        score: float,
        params_jsonable: Optional[dict],
        trials: int,
    ) -> None:
        """Publish this shard's best-so-far (no-op unless it improved)."""
        if not objective < self._last_published_objective:
            return
        self._last_published_objective = objective
        self.scoreboard.publish(
            ScoreRecord(
                shard_id=self.shard_id,
                objective=objective,
                score=score,
                params=params_jsonable,
                trials=trials,
            )
        )
        self.published += 1

    def poll_external_best(self) -> Optional[ScoreRecord]:
        """Best *improved* record from other shards since the last poll."""
        record = self.scoreboard.best_external(self.shard_id)
        if record is None or not record.objective < self._last_external_objective:
            return None
        self._last_external_objective = record.objective
        self.adopted += 1
        return record
