"""Trial executors: evaluate batches of proposals serially or in parallel.

A :class:`TrialExecutor` turns a batch of search-space proposals into
:class:`~repro.core.trial.TrialMetrics`, decoupling *how* trials run from the
search loop that proposes them.  :class:`SerialExecutor` evaluates in-process;
:class:`ParallelExecutor` fans the batch out to a pool of worker processes
(the evaluator and space are shipped to each worker once, at pool start).

Both executors return results **in proposal order**, so a parallel run feeds
the optimizer the exact same tell sequence as a serial run and the search
history is bit-for-bit reproducible for a fixed seed and batch size.

The process pool is *supervised*: a worker dying mid-batch (OOM kill,
segfault, injected ``worker-crash`` fault) breaks the pool, which the
executor detects, rebuilds — re-warming worker caches through the same
initializer — and re-dispatches the in-flight batch on.  Evaluation is
deterministic, so the re-dispatched batch returns the same metrics and the
search history stays bit-for-bit equal to a fault-free run; the recovery is
visible only in ``runtime_counters()`` (``worker_restarts``).
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.trial import TrialEvaluator, TrialMetrics
from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.runtime.faults import crash_process, get_fault_plan
from repro.simulator.enginespec import EngineSpec
from repro.runtime.telemetry import (
    apply_telemetry_config,
    get_metrics,
    get_tracer,
    telemetry_config,
)

__all__ = [
    "TrialExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "WorkerCrashError",
    "EXECUTOR_KINDS",
    "register_executor",
    "executor_kinds",
    "make_executor",
]


class WorkerCrashError(RuntimeError):
    """A batch kept crashing pool workers past the restart budget."""


# ---------------------------------------------------------------------------
# Worker-process plumbing.  The evaluator/space are installed once per worker
# by the pool initializer, which also pre-warms the worker's caches: the
# workload graphs and compiled regions (a no-op under fork, where the warm
# parent entries are inherited outright) and the shared op / region cost
# caches, including loading the persistent op store from disk when the
# evaluator is configured with one.  Per-task payloads are just the
# parameter dicts; graphs are never pickled.
#
# Each task returns its metrics together with a small dict of counter deltas
# (op/region-cache hits and misses, per-stage seconds) measured around the
# evaluation, so the parent can aggregate worker-side runtime statistics
# that previously stayed invisible (parallel runs used to report
# ``op_cache_hits: 0`` no matter how warm the workers were).
# ---------------------------------------------------------------------------
_WORKER_EVALUATOR: Optional[TrialEvaluator] = None
_WORKER_SPACE: Optional[DatapathSearchSpace] = None
# 1 on the first task after this worker attached a parent-published
# shared-memory cache segment, then cleared: the parent sums these into
# ``shared_cache_attached`` (how many workers started on the zero-copy tier).
_WORKER_SHARED_ATTACH_PENDING: int = 0


def _worker_caches(
    evaluator: TrialEvaluator,
    op_preload: bool = True,
    region_preload: bool = True,
):
    """(op cache, region cache) this worker's evaluator uses, or Nones.

    The preload flags only matter for the call that constructs a cache: a
    worker that just attached a shared-memory segment already covering the
    persistent store passes False so it never duplicates the parent's disk
    load (fork-started workers inherit an already-constructed cache and are
    unaffected either way).
    """
    options = getattr(evaluator, "simulation_options", None)
    op_cache = region_cache = None
    if options is not None and getattr(options, "op_cache_enabled", False):
        from repro.runtime.opcache import get_op_cache

        op_cache = get_op_cache(
            getattr(options, "op_cache_path", None), preload=op_preload
        )
    if options is not None and getattr(options, "region_cache_enabled", False):
        from repro.runtime.opcache import get_region_cache

        region_cache = get_region_cache(
            getattr(options, "region_store_path", None), preload=region_preload
        )
    return op_cache, region_cache


def _init_worker(
    evaluator: TrialEvaluator,
    space: DatapathSearchSpace,
    warm_start: bool = True,
    telemetry: Optional[dict] = None,
    shared_index=None,
) -> None:
    global _WORKER_EVALUATOR, _WORKER_SPACE, _WORKER_SHARED_ATTACH_PENDING
    _WORKER_EVALUATOR = evaluator
    _WORKER_SPACE = space
    # Always install a fresh worker tracer (disabled when telemetry is None):
    # a fork-inherited parent buffer must never leak parent spans back with
    # a task delta, and fresh construction gives each worker its own span-id
    # salt, so span ids stay unique across the pool.
    apply_telemetry_config(telemetry)
    if shared_index is not None:
        # Zero-copy tier: attach the parent-published cache segment instead
        # of re-warming privately.  Any failure (no /dev/shm, the parent
        # unlinked early, ...) falls back to the private path below.
        try:
            from repro.runtime.shmcache import attach_shared_cache

            view = attach_shared_cache(shared_index)
            if view is not None:
                # A table in the segment carries every raw entry the parent
                # held — including its warm-loaded persistent store — so a
                # fresh (spawn-started) worker skips its own disk load for
                # any cache the segment covers.
                op_cache, region_cache = _worker_caches(
                    evaluator,
                    op_preload=not shared_index.op_index,
                    region_preload=not shared_index.region_index,
                )
                if op_cache is not None:
                    op_cache.attach_shared(view.op_lookup)
                if region_cache is not None:
                    region_cache.attach_shared(view.region_lookup)
                if op_cache is not None or region_cache is not None:
                    _WORKER_SHARED_ATTACH_PENDING = 1
        except Exception:
            pass  # shared tier is best effort; private warm path follows
    if warm_start:
        warm = getattr(evaluator, "warm_caches", None)
        if callable(warm):
            try:
                warm()
            except Exception:
                pass  # warm-up is best effort; evaluation must still start


def cache_counter_snapshot(op_cache, region_cache) -> dict:
    """Tier-level cache counters, keyed like ``RuntimeStats`` fields."""
    snap: dict = {}
    if op_cache is not None:
        stats = op_cache.stats
        snap["op_cache_hits"] = stats.hits
        snap["op_cache_misses"] = stats.misses
        snap["op_cache_disk_hits"] = stats.disk_hits
        snap["op_cache_shared_hits"] = stats.shared_hits
    if region_cache is not None:
        stats = region_cache.stats
        snap["region_cache_hits"] = stats.hits
        snap["region_cache_misses"] = stats.misses
        snap["region_cache_disk_hits"] = stats.disk_hits
        snap["region_cache_shared_hits"] = stats.shared_hits
        snap["remote_cache_hits"] = stats.remote_hits
        snap["remote_cache_misses"] = stats.remote_misses
        snap["remote_cache_puts"] = stats.remote_puts
        snap["remote_cache_requests"] = stats.remote_requests
        snap["remote_cache_failures"] = stats.remote_failures
    return snap


def _evaluate_in_worker(task):
    global _WORKER_SHARED_ATTACH_PENDING
    params, crash = task
    if crash:
        # Injected worker death (``worker-crash`` fault): die the way an OOM
        # kill would, before any evaluation work.  The decision was made in
        # the parent, so the re-dispatched task arrives with crash=False.
        crash_process()
    if _WORKER_EVALUATOR is None or _WORKER_SPACE is None:
        raise RuntimeError("worker process was not initialized with an evaluator")
    evaluator = _WORKER_EVALUATOR
    op_cache, region_cache = _worker_caches(evaluator)
    stage_before = dict(getattr(evaluator, "stage_seconds", None) or {})
    cache_before = cache_counter_snapshot(op_cache, region_cache)
    metrics = evaluator.evaluate_params(params, _WORKER_SPACE)
    if region_cache is not None and region_cache.remote is not None:
        # Push this task's freshly computed regions to the cluster tier
        # before the counter snapshot, so ``remote_cache_puts`` lands in
        # this task's delta instead of trickling out with the next one.
        region_cache.flush_remote()
    stage_after = getattr(evaluator, "stage_seconds", None) or {}
    cache_after = cache_counter_snapshot(op_cache, region_cache)
    delta = {
        key: cache_after[key] - cache_before.get(key, 0) for key in cache_after
    }
    delta.update({
        "mapper_seconds": stage_after.get("mapper", 0.0) - stage_before.get("mapper", 0.0),
        "vector_seconds": stage_after.get("vector", 0.0) - stage_before.get("vector", 0.0),
        "fusion_seconds": stage_after.get("fusion", 0.0) - stage_before.get("fusion", 0.0),
        "eval_seconds": stage_after.get("evaluate", 0.0) - stage_before.get("evaluate", 0.0),
    })
    if _WORKER_SHARED_ATTACH_PENDING:
        # Reported exactly once per attach, with the worker's first task.
        delta["shared_cache_attached"] = _WORKER_SHARED_ATTACH_PENDING
        _WORKER_SHARED_ATTACH_PENDING = 0
    # Named engine echo: proof the worker inherited the parent's EngineSpec
    # through the initializer (a forked pool silently falling back to the
    # default backend would show up here and in ``repro profile``).
    options = getattr(evaluator, "simulation_options", None)
    if options is not None:
        try:
            delta["engine"] = str(EngineSpec.from_simulation_options(options))
        except Exception:
            pass  # echo is informational; evaluation results matter more
    tracer = get_tracer()
    if tracer.enabled:
        # Ship this task's spans home with the delta; draining means each
        # span leaves the worker exactly once even when the process is
        # reused across many tasks.
        delta["spans"] = [record.to_dict() for record in tracer.drain()]
    return metrics, delta


# ---------------------------------------------------------------------------
class TrialExecutor(ABC):
    """Evaluates batches of proposals; results come back in proposal order."""

    name: str = "executor"

    @abstractmethod
    def evaluate_batch(
        self,
        evaluator: TrialEvaluator,
        space: DatapathSearchSpace,
        batch: Sequence[ParameterValues],
    ) -> List[TrialMetrics]:
        """Evaluate every proposal in ``batch``, preserving order."""

    def close(self) -> None:
        """Release any resources (worker processes, ...)."""

    # Executors can be used as context managers: ``with ParallelExecutor(4) as ex``.
    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(TrialExecutor):
    """Evaluates trials in the calling process.

    Prefers the evaluator's batch entry point
    (:meth:`~repro.core.trial.TrialEvaluator.evaluate_params_batch`) when it
    exists — the hook the trial-batched mapping engine hangs off; with trial
    batching disabled that entry point degrades to the per-trial loop, so
    results are identical either way.
    """

    name = "serial"

    def evaluate_batch(
        self,
        evaluator: TrialEvaluator,
        space: DatapathSearchSpace,
        batch: Sequence[ParameterValues],
    ) -> List[TrialMetrics]:
        batch_eval = getattr(evaluator, "evaluate_params_batch", None)
        if callable(batch_eval):
            return batch_eval(batch, space)
        return [evaluator.evaluate_params(params, space) for params in batch]


class ParallelExecutor(TrialExecutor):
    """Evaluates trials on a pool of warm worker processes.

    The pool is created lazily on the first batch and reused across batches;
    it is re-created only if the evaluator or space object changes.  Results
    are collected with an order-preserving ``map``, so trial ordering (and
    hence the optimizer trajectory) is identical to a serial run.

    Workers start *warm*: the pool initializer pre-builds the problem's
    workload graphs and compiled regions and attaches the shared op / region
    cost caches — loading the persistent op store from disk when the
    evaluator is configured with one (``--op-cache PATH``), which is how a
    pool shares one op store across workers, searches, and sweep shards.
    Worker-side cache hits and per-stage timings flow back with every result
    and surface through :meth:`runtime_counters`.

    The pool is supervised: worker death mid-batch (detected as
    ``BrokenProcessPool``) tears the broken pool down, spawns a fresh one —
    whose initializer re-warms the caches exactly like the first start —
    and re-dispatches the whole in-flight batch, up to
    ``max_worker_restarts`` times per batch.  Evaluation is deterministic,
    so re-dispatch returns identical metrics and the history matches a
    fault-free run bit-for-bit; ``worker_restarts`` in
    :meth:`runtime_counters` reports how many times it happened.

    Args:
        num_workers: Worker process count (defaults to the CPU count).
        chunk_size: Proposals per worker task; 1 gives the best load balance
            for heterogeneous trial costs.
        warm_start: Pre-warm worker caches in the pool initializer (on by
            default; results are identical either way).
        max_worker_restarts: Pool rebuilds tolerated for one batch before
            :class:`WorkerCrashError` is raised (a batch that *always*
            kills its worker would otherwise respawn forever).
        shared_cache: Publish the parent's warm op / region cache entries
            into a ``multiprocessing.shared_memory`` segment that workers
            attach zero-copy (on by default; bit-for-bit neutral).  Workers
            of a pool built (or respawned) from a warm parent then serve
            their first batch from cache with no per-fork re-warm compute
            and no duplicated cache RSS; any publish or attach failure
            falls back to the private warm path.
    """

    name = "parallel"

    def __init__(
        self,
        num_workers: Optional[int] = None,
        chunk_size: int = 1,
        warm_start: bool = True,
        max_worker_restarts: int = 3,
        shared_cache: bool = True,
    ) -> None:
        self.num_workers = max(1, int(num_workers or os.cpu_count() or 1))
        self.chunk_size = max(1, int(chunk_size))
        self.warm_start = bool(warm_start)
        self.max_worker_restarts = max(0, int(max_worker_restarts))
        self.shared_cache = bool(shared_cache)
        self.worker_restarts = 0
        self._shared_publisher = None
        self._pool: Optional[ProcessPoolExecutor] = None
        # Strong references to the objects the pool was initialized with;
        # identity is checked with ``is`` (never id() of possibly-collected
        # objects, whose addresses can be reused by new allocations).
        self._pool_args: Optional[tuple] = None
        self._pool_telemetry: Optional[dict] = None
        self._worker_totals: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def _ensure_pool(
        self, evaluator: TrialEvaluator, space: DatapathSearchSpace
    ) -> ProcessPoolExecutor:
        telemetry = telemetry_config()
        if self._pool is not None and (
            self._pool_args is None
            or self._pool_args[0] is not evaluator
            or self._pool_args[1] is not space
            or self._pool_telemetry != telemetry
        ):
            self.close()
        if self._pool is None:
            shared_index = None
            if self.shared_cache:
                shared_index = self._publish_shared_cache(evaluator)
            self._pool = ProcessPoolExecutor(
                max_workers=self.num_workers,
                initializer=_init_worker,
                initargs=(evaluator, space, self.warm_start, telemetry, shared_index),
            )
            self._pool_args = (evaluator, space)
            self._pool_telemetry = telemetry
        return self._pool

    def _publish_shared_cache(self, evaluator: TrialEvaluator):
        """Publish the parent's warm cache entries for this pool (best effort).

        Runs on every pool (re)build: a respawned pool republishes from the
        parent's current caches, so crash-respawned workers attach a live
        segment and start hot exactly like first-start workers.  Returns the
        picklable index for the initializer, or None to use the private
        warm path.
        """
        try:
            from repro.runtime.shmcache import publish_shared_cache

            op_cache, region_cache = _worker_caches(evaluator)
            publisher = publish_shared_cache(op_cache, region_cache)
        except Exception:
            return None
        if publisher is None:
            return None
        if self._shared_publisher is not None:
            self._shared_publisher.close()
        self._shared_publisher = publisher
        return publisher.index

    def evaluate_batch(
        self,
        evaluator: TrialEvaluator,
        space: DatapathSearchSpace,
        batch: Sequence[ParameterValues],
    ) -> List[TrialMetrics]:
        if not batch:
            return []
        plan = get_fault_plan()
        restarts = 0
        while True:
            pool = self._ensure_pool(evaluator, space)
            # Crash decisions are drawn per dispatch attempt, in the parent:
            # a re-dispatched batch consumes *fresh* opportunities, so a
            # budgeted (n=K) crash plan converges instead of killing every
            # respawned pool forever.
            tasks = [
                (params, plan is not None and plan.fire("worker-crash") is not None)
                for params in batch
            ]
            try:
                outcomes = list(
                    pool.map(_evaluate_in_worker, tasks, chunksize=self.chunk_size)
                )
                break
            except BrokenProcessPool as error:
                self.close()  # the broken pool's workers are already gone
                self.worker_restarts += 1
                restarts += 1
                get_metrics().counter(
                    "repro_worker_restarts_total",
                    "Process-pool rebuilds after a worker died mid-batch.",
                ).inc()
                get_tracer().record_span(
                    "worker_restart",
                    start_unix=time.time(),
                    duration=0.0,
                    category="executor",
                    restarts_this_batch=restarts,
                    batch_size=len(batch),
                )
                if restarts > self.max_worker_restarts:
                    raise WorkerCrashError(
                        f"batch of {len(batch)} kept killing workers through "
                        f"{restarts} pool restarts"
                    ) from error
        totals = self._worker_totals
        tracer = get_tracer()
        for _, delta in outcomes:
            spans = delta.pop("spans", None)
            if spans and tracer.enabled:
                tracer.ingest(spans)
            engine = delta.pop("engine", None)
            if engine is not None:
                totals["engine"] = engine  # config echo, not a counter
            for key, value in delta.items():
                totals[key] = totals.get(key, 0) + value
        return [metrics for metrics, _ in outcomes]

    def runtime_counters(self) -> Dict[str, float]:
        """Lifetime worker-side counters, keyed like ``RuntimeStats`` fields.

        The search loop snapshots this before and after a run and reports
        the delta, so op/region-cache hit counters and per-stage timings no
        longer read zero just because evaluation happened in worker
        processes.  ``worker_restarts`` counts supervised pool rebuilds
        after worker deaths.  One entry is non-numeric: ``engine`` echoes the
        worker-resolved :class:`~repro.simulator.enginespec.EngineSpec`
        string, proof the pool inherited the parent's engine configuration.
        """
        counters: Dict[str, float] = dict(self._worker_totals)
        counters["worker_restarts"] = self.worker_restarts
        if self._shared_publisher is not None:
            counters["shared_cache_entries"] = self._shared_publisher.index.num_entries
        return counters

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_args = None
            self._pool_telemetry = None
        if self._shared_publisher is not None:
            # Unlink the published segment; workers that attached keep their
            # mappings, and a respawn republishes from the parent's caches.
            self._shared_publisher.close()
            self._shared_publisher = None


# ---------------------------------------------------------------------------
# Registry / factory.  Executors register under a short kind name so the CLI
# (``repro search --executor serial|process|remote``) and programmatic callers
# build them uniformly; out-of-tree executors can plug in the same way.
# ---------------------------------------------------------------------------
def _make_serial(**_options) -> TrialExecutor:
    return SerialExecutor()


def _make_process(
    workers: int = 1,
    chunk_size: Optional[int] = None,
    shared_cache: bool = True,
    **_options,
) -> TrialExecutor:
    return ParallelExecutor(
        num_workers=workers, chunk_size=chunk_size or 1, shared_cache=shared_cache
    )


def _make_remote(endpoints: Optional[Sequence[str]] = None, **options) -> TrialExecutor:
    from repro.runtime.remote import AsyncRemoteExecutor  # avoid an import cycle

    if not endpoints:
        raise ValueError("the remote executor needs at least one endpoint URL")
    known = {
        "timeout",
        "max_retries",
        "backoff",
        "backoff_cap",
        "hedge_after",
        "hedge_k",
        "chunk_size",
        "blacklist_after",
        "local_fallback",
    }
    kwargs = {key: value for key, value in options.items() if key in known}
    return AsyncRemoteExecutor(endpoints, **kwargs)


EXECUTOR_KINDS: Dict[str, Callable[..., TrialExecutor]] = {
    "serial": _make_serial,
    "process": _make_process,
    "remote": _make_remote,
}


def register_executor(kind: str, factory: Callable[..., TrialExecutor]) -> None:
    """Register an executor factory under a kind name (overwrites)."""
    EXECUTOR_KINDS[kind] = factory


def executor_kinds() -> List[str]:
    """Registered executor kind names, sorted."""
    return sorted(EXECUTOR_KINDS)


def make_executor(
    workers: int = 1,
    chunk_size: Optional[int] = None,
    kind: Optional[str] = None,
    **options,
) -> TrialExecutor:
    """Build an executor by kind, or by worker count when ``kind`` is None.

    Without ``kind`` this keeps the original behavior: more than one worker
    selects the process pool, otherwise serial.  With ``kind`` the matching
    registered factory is called with ``workers``/``chunk_size`` plus any
    extra options (e.g. ``endpoints=[...]``, ``timeout=...`` for
    ``kind='remote'``).
    """
    if kind is None:
        kind = "process" if workers and workers > 1 else "serial"
    factory = EXECUTOR_KINDS.get(kind)
    if factory is None:
        raise ValueError(
            f"unknown executor kind {kind!r}; registered: {', '.join(executor_kinds())}"
        )
    return factory(workers=workers, chunk_size=chunk_size, **options)
