"""Sharded sweep orchestration: split one search into shards and merge them.

The paper's headline results come from large accelerator-design sweeps
(thousands of Vizier trials per study).  This module splits one logical
search into ``N`` independent *shards* that can run in separate processes —
or on separate hosts — and merges their outcomes back into a single
deduplicated result:

* :func:`plan_shards` carves a total trial budget into per-shard
  :class:`ShardSpec`\\ s.  Shards are decorrelated either by **seed stream**
  (each shard searches the full space from a distinct seed derived with
  ``numpy.random.SeedSequence``, so shard streams never collide) or by
  **design-space partition** (one categorical axis is split round-robin
  across shards, giving each shard a disjoint slice of the space).
* :func:`run_shard` executes one shard as a plain
  :class:`~repro.core.fast.FASTSearch` on the existing executor layer —
  a single-shard sweep therefore reproduces the plain search history
  bit-for-bit, and every shard inherits batching, caching (with shard-safe
  ``writer_id`` sidecar files), and parallel trial evaluation for free.
* :func:`merge_shard_results` folds any number of shard results (fresh or
  loaded from JSON written on other hosts) into one
  :class:`SweepResult`: the union of trial histories deduplicated by
  canonical parameter identity, a merged :class:`~repro.search.pareto.ParetoFront`
  whose payloads carry shard/trial provenance, the overall best design, and
  aggregated runtime statistics.  Shards are merged in ``shard_id`` order
  regardless of the order passed in, so the merge is order-independent.

Because every shard is itself deterministic for its (seed, budget, batch
size), the merged sweep is reproducible end-to-end: ``N`` shards merged
equal the union of the same ``N`` searches run one after another in a single
process.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.fast import FASTSearch, FASTSearchResult, RuntimeStats
from repro.core.problem import SearchProblem
from repro.core.trial import TrialMetrics
from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.reporting.serialization import (
    params_from_jsonable,
    params_to_jsonable,
    runtime_stats_from_dict,
    runtime_stats_to_dict,
    trial_metrics_from_dict,
    trial_metrics_to_dict,
)
from repro.runtime.batching import proposal_key
from repro.runtime.cache import TrialCache
from repro.runtime.exchange import ExchangeClient, Scoreboard, make_scoreboard
from repro.runtime.executor import TrialExecutor
from repro.search.pareto import ParetoFront

__all__ = [
    "ShardSpec",
    "ShardResult",
    "SweepTrial",
    "SweepResult",
    "shard_seed",
    "plan_shards",
    "shard_space",
    "run_shard",
    "merge_shard_results",
    "run_sharded_sweep",
    "save_shard_result",
    "load_shard_result",
    "sweep_result_to_dict",
]

_SHARD_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One shard of a sharded sweep."""

    shard_id: int
    num_shards: int
    seed: int
    num_trials: int
    mode: str = "seed"  # "seed" (seed-stream split) or "space" (axis partition)
    partition_axis: Optional[str] = None


def shard_seed(base_seed: int, shard_id: int, num_shards: int) -> int:
    """Deterministic, collision-free seed for one shard.

    A single shard keeps the base seed untouched (so a 1-shard sweep is the
    plain search).  Multiple shards derive child seeds from a
    :class:`numpy.random.SeedSequence` keyed by ``(base_seed, shard_id)``,
    which decorrelates the shard streams without any chance of two shards
    reusing one another's trivially-shifted seed.
    """
    if num_shards == 1:
        return int(base_seed)
    return int(np.random.SeedSequence([int(base_seed), int(shard_id)]).generate_state(1)[0])


def plan_shards(
    total_trials: int,
    num_shards: int,
    seed: int = 0,
    mode: str = "seed",
    partition_axis: Optional[str] = None,
) -> List[ShardSpec]:
    """Split a total trial budget into per-shard specs.

    The budget is divided as evenly as possible (earlier shards take the
    remainder), so the shard budgets always sum to ``total_trials``.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if total_trials < 0:
        raise ValueError("total_trials must be non-negative")
    if mode not in ("seed", "space"):
        raise ValueError(f"unknown shard mode {mode!r}; expected 'seed' or 'space'")
    if mode == "space" and partition_axis is None:
        raise ValueError("mode='space' requires a partition_axis")
    base, remainder = divmod(total_trials, num_shards)
    return [
        ShardSpec(
            shard_id=shard_id,
            num_shards=num_shards,
            seed=shard_seed(seed, shard_id, num_shards),
            num_trials=base + (1 if shard_id < remainder else 0),
            mode=mode,
            partition_axis=partition_axis,
        )
        for shard_id in range(num_shards)
    ]


def shard_space(space: DatapathSearchSpace, spec: ShardSpec) -> DatapathSearchSpace:
    """Search space one shard explores (restricted for ``mode='space'``).

    Seed-mode shards share the full space.  Space-mode shards get a copy in
    which the partition axis keeps only every ``num_shards``-th choice
    starting at ``shard_id`` (round-robin), so the shard slices are disjoint
    and jointly cover the axis.
    """
    if spec.mode != "space":
        return space
    import copy

    axis = space.spec(spec.partition_axis)  # raises KeyError for unknown axes
    if spec.num_shards > axis.cardinality:
        raise ValueError(
            f"cannot split axis {axis.name!r} ({axis.cardinality} choices) "
            f"across {spec.num_shards} shards"
        )
    restricted = copy.copy(space)
    restricted._specs = [
        dataclasses.replace(s, choices=s.choices[spec.shard_id :: spec.num_shards])
        if s.name == axis.name
        else s
        for s in space.specs
    ]
    return restricted


# ---------------------------------------------------------------------------
# Per-shard execution
# ---------------------------------------------------------------------------
@dataclass
class ShardResult:
    """Outcome of one shard, carrying everything the merge needs."""

    spec: ShardSpec
    proposals: List[ParameterValues] = field(default_factory=list)
    history: List[TrialMetrics] = field(default_factory=list)
    runtime: Optional[RuntimeStats] = None

    @property
    def num_trials(self) -> int:
        """Trials this shard completed."""
        return len(self.history)

    @classmethod
    def from_search_result(cls, spec: ShardSpec, result: FASTSearchResult) -> "ShardResult":
        """Wrap a finished :class:`FASTSearchResult` with shard provenance."""
        return cls(
            spec=spec,
            proposals=[dict(p) for p in result.proposals],
            history=list(result.history),
            runtime=result.runtime,
        )


def run_shard(
    problem: SearchProblem,
    spec: ShardSpec,
    optimizer: str = "lcs",
    space: Optional[DatapathSearchSpace] = None,
    batch_size: int = 8,
    executor: Optional[TrialExecutor] = None,
    cache_path: Optional[Union[str, Path]] = None,
    cache_max_entries: Optional[int] = None,
    exchange: Optional[Union[str, Path, Scoreboard]] = None,
    op_cache_path: Optional[Union[str, Path]] = None,
    op_cache_enabled: bool = True,
    engine: Optional[object] = None,
) -> ShardResult:
    """Run one shard as a plain :class:`FASTSearch` and wrap the result.

    The shard search runs with the shard's own seed (and, in space mode, its
    restricted space) on whatever executor is supplied.  A shared cache path
    is opened with ``writer_id=spec.shard_id`` so concurrent shards append
    to disjoint sidecar files of one logical store.

    Shards share the per-op cost store by default: every shard's evaluator
    keeps the process-local op cache enabled, and ``op_cache_path`` names
    one persistent store they (and their pool workers) all attach to —
    neighboring shards reuse each other's mapped op costs instead of
    re-running the candidate sweep.  ``op_cache_enabled=False`` opts out
    (``repro sweep --no-op-cache``); results are identical either way.

    ``exchange`` (off by default) enables live cross-shard best-score
    exchange: a scoreboard instance, file prefix, or service URL (see
    :func:`repro.runtime.exchange.make_scoreboard`) that this shard
    publishes its best to after every batch and polls for *other* shards'
    bests before asking the next one — guided optimizers fold what they
    learn into their proposals via ``observe_external_best``.  A shard that
    never sees an external best (including any 1-shard sweep) is bit-for-bit
    identical to an exchange-free run.

    ``engine`` (an :class:`~repro.simulator.enginespec.EngineSpec`) selects
    the evaluation engine for every shard; when set it supersedes the legacy
    ``op_cache_enabled`` toggle.  All NumPy engines are bit-for-bit
    equivalent, so the merged sweep result is engine-independent.  An
    engine with ``region_store=PATH`` gives every shard (and its pool
    workers) one shared persistent region store the same way
    ``op_cache_path`` shares op costs — appends are single-write and
    duplicate-tolerant, so concurrent shards racing the same region key
    are safe and compaction later folds the duplicates; ``cache_service=URL``
    attaches each shard to a cluster cache service instead.
    """
    from repro.core.trial import TrialEvaluator
    from repro.simulator.engine import SimulationOptions

    space = shard_space(space or DatapathSearchSpace(), spec)
    cache = (
        TrialCache(cache_path, writer_id=spec.shard_id, max_disk_entries=cache_max_entries)
        if cache_path is not None
        else None
    )
    client = (
        ExchangeClient(make_scoreboard(exchange), spec.shard_id)
        if exchange is not None
        else None
    )
    resolved_path = str(op_cache_path) if op_cache_path is not None else None
    if engine is not None:
        options = engine.to_simulation_options(
            fusion_solver="greedy", op_cache_path=resolved_path
        )
    else:
        options = SimulationOptions(
            fusion_solver="greedy",
            op_cache_enabled=op_cache_enabled,
            op_cache_path=resolved_path,
        )
    evaluator = TrialEvaluator(problem, simulation_options=options)
    search = FASTSearch(
        problem,
        optimizer=optimizer,
        space=space,
        seed=spec.seed,
        evaluator=evaluator,
        executor=executor,
        cache=cache,
        exchange=client,
    )
    from repro.runtime.telemetry import get_tracer

    try:
        with get_tracer().span(
            "shard",
            category="sweep",
            shard_id=spec.shard_id,
            mode=spec.mode,
            num_trials=spec.num_trials,
        ):
            result = search.run(num_trials=spec.num_trials, batch_size=batch_size)
    finally:
        if cache is not None:
            cache.release()  # finished shards must not block later compaction
    return ShardResult.from_search_result(spec, result)


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepTrial:
    """One deduplicated trial of the merged sweep, with provenance."""

    shard_id: int
    trial_index: int
    params: ParameterValues
    metrics: TrialMetrics


@dataclass
class SweepResult:
    """Merged outcome of a sharded sweep."""

    shards: List[ShardSpec] = field(default_factory=list)
    trials: List[SweepTrial] = field(default_factory=list)
    pareto_front: ParetoFront = field(default_factory=ParetoFront)
    best_trial: Optional[SweepTrial] = None
    duplicates_removed: int = 0
    shard_best_scores: Dict[int, float] = field(default_factory=dict)
    runtime: Optional[RuntimeStats] = None

    @property
    def num_trials(self) -> int:
        """Unique trials across all shards after deduplication."""
        return len(self.trials)

    @property
    def best_score(self) -> float:
        """Best aggregate score across shards (``nan`` when nothing feasible)."""
        if self.best_trial is None:
            return float("nan")
        return self.best_trial.metrics.aggregate_score

    @property
    def best_params(self) -> Optional[ParameterValues]:
        """Parameters of the best design across all shards."""
        return dict(self.best_trial.params) if self.best_trial is not None else None

    @property
    def best_metrics(self) -> Optional[TrialMetrics]:
        """Metrics of the best design across all shards."""
        return self.best_trial.metrics if self.best_trial is not None else None


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def merge_shard_results(shard_results: Sequence[ShardResult]) -> SweepResult:
    """Merge shard results into one deduplicated sweep result.

    Shards are processed in ``shard_id`` order regardless of the order given,
    so the merge is order-independent.  Trials proposing an identical
    parameter assignment (canonical ``proposal_key`` identity) are collapsed
    to their first occurrence — the evaluator is deterministic, so duplicate
    assignments carry identical metrics.  The merged Pareto front replays
    every unique feasible trial with the same (mean latency, TDP, area)
    objectives the single-search front uses, tagging each point's payload
    with its originating shard and trial index.
    """
    ordered = sorted(shard_results, key=lambda r: r.spec.shard_id)
    merged = SweepResult(shards=[r.spec for r in ordered])

    seen_keys: Dict[str, SweepTrial] = {}
    total = RuntimeStats()
    best: Optional[SweepTrial] = None
    for shard in ordered:
        shard_best = float("nan")
        for trial_index, (params, metrics) in enumerate(zip(shard.proposals, shard.history)):
            if metrics.feasible and np.isfinite(metrics.objective_value):
                score = metrics.aggregate_score
                if math.isnan(shard_best) or score > shard_best:
                    shard_best = score
            key = proposal_key(params)
            if key in seen_keys:
                merged.duplicates_removed += 1
                continue
            trial = SweepTrial(
                shard_id=shard.spec.shard_id,
                trial_index=trial_index,
                params=dict(params),
                metrics=metrics,
            )
            seen_keys[key] = trial
            merged.trials.append(trial)
            if metrics.feasible and np.isfinite(metrics.objective_value):
                if best is None or metrics.aggregate_score > best.metrics.aggregate_score:
                    best = trial
                merged.pareto_front.add(
                    (
                        _mean(metrics.per_workload_latency_ms.values()),
                        metrics.tdp_w,
                        metrics.area_mm2,
                    ),
                    payload={
                        "params": dict(params),
                        "score": metrics.aggregate_score,
                        "shard": shard.spec.shard_id,
                        "trial": trial_index,
                    },
                )
        merged.shard_best_scores[shard.spec.shard_id] = shard_best
        if shard.runtime is not None:
            _accumulate_runtime(total, shard.runtime)
    merged.best_trial = best
    merged.runtime = total
    return merged


def _accumulate_runtime(total: RuntimeStats, shard: RuntimeStats) -> None:
    """Fold one shard's runtime stats into the sweep total.

    Numeric counters/timings sum; the per-endpoint counter maps merge by
    endpoint URL (counters sum, the ``blacklisted`` flag keeps its latest
    truthy value).  Iterating the dataclass fields keeps the merge complete
    as new counters are added.
    """
    for stats_field in dataclasses.fields(RuntimeStats):
        value = getattr(shard, stats_field.name)
        if isinstance(value, (int, float)):
            setattr(total, stats_field.name, getattr(total, stats_field.name) + value)
        elif isinstance(value, dict):
            merged_map = getattr(total, stats_field.name)
            for url, counters in value.items():
                into = merged_map.setdefault(url, {})
                for key, amount in counters.items():
                    if key == "blacklisted":
                        into[key] = max(into.get(key, 0.0), amount)
                    else:
                        into[key] = into.get(key, 0.0) + amount


def run_sharded_sweep(
    problem: SearchProblem,
    total_trials: int,
    num_shards: int,
    optimizer: str = "lcs",
    seed: int = 0,
    space: Optional[DatapathSearchSpace] = None,
    mode: str = "seed",
    partition_axis: Optional[str] = None,
    batch_size: int = 8,
    executor: Optional[TrialExecutor] = None,
    cache_path: Optional[Union[str, Path]] = None,
    cache_max_entries: Optional[int] = None,
    exchange: Optional[Union[str, Path, Scoreboard]] = None,
    op_cache_path: Optional[Union[str, Path]] = None,
    op_cache_enabled: bool = True,
    engine: Optional[object] = None,
) -> SweepResult:
    """Plan, run, and merge a sharded sweep in one call.

    Shards run one after another in this process (each using ``executor``
    for its trial batches — pass a
    :class:`~repro.runtime.executor.ParallelExecutor` to parallelize the
    evaluations); for multi-host execution run individual shards with
    :func:`run_shard` / ``repro sweep --shard-index`` instead and merge the
    saved files with :func:`merge_shard_results` / ``repro sweep --merge``.

    The persistent per-op cost store is shared across shards by default:
    pass ``op_cache_path`` and every shard (and every pool worker, via the
    warm-start initializer) attaches to the same store, so later shards run
    on the op costs earlier shards already mapped.  Even without a path the
    shards share the process-local op cache.  ``op_cache_enabled=False``
    opts out entirely; results are identical either way.

    With ``exchange`` set (a scoreboard, file prefix, or service URL), each
    shard publishes its running best between batches and later shards — or,
    for concurrent multi-host shards, *live* shards — fold the best external
    score into their guided optimizers.  Off by default; a 1-shard sweep
    stays bit-for-bit equal to the plain search either way.
    """
    specs = plan_shards(
        total_trials, num_shards, seed=seed, mode=mode, partition_axis=partition_axis
    )
    scoreboard = make_scoreboard(exchange) if exchange is not None else None
    results = [
        run_shard(
            problem,
            spec,
            optimizer=optimizer,
            space=space,
            batch_size=batch_size,
            executor=executor,
            cache_path=cache_path,
            cache_max_entries=cache_max_entries,
            exchange=scoreboard,
            op_cache_path=op_cache_path,
            op_cache_enabled=op_cache_enabled,
            engine=engine,
        )
        for spec in specs
    ]
    return merge_shard_results(results)


# ---------------------------------------------------------------------------
# Shard/sweep serialization (multi-host workflows)
# ---------------------------------------------------------------------------
def shard_result_to_dict(result: ShardResult) -> Dict[str, object]:
    """JSON-compatible form of one shard result."""
    return {
        "version": _SHARD_FORMAT_VERSION,
        "spec": dataclasses.asdict(result.spec),
        "proposals": [params_to_jsonable(p) for p in result.proposals],
        "history": [trial_metrics_to_dict(m) for m in result.history],
        "runtime": runtime_stats_to_dict(result.runtime) if result.runtime is not None else None,
    }


def shard_result_from_dict(
    data: Dict[str, object], space: Optional[DatapathSearchSpace] = None
) -> ShardResult:
    """Inverse of :func:`shard_result_to_dict`.

    ``space`` (default: the full Table 3 space) resolves raw parameter
    values back to choice objects; space-mode shard files decode against the
    full space because every proposal is a complete assignment.
    """
    version = data.get("version")
    if version != _SHARD_FORMAT_VERSION:
        raise ValueError(f"unsupported shard file version {version!r}")
    space = space or DatapathSearchSpace()
    spec = ShardSpec(**data["spec"])
    runtime = data.get("runtime")
    return ShardResult(
        spec=spec,
        proposals=[params_from_jsonable(p, space) for p in data.get("proposals", [])],
        history=[trial_metrics_from_dict(m) for m in data.get("history", [])],
        runtime=runtime_stats_from_dict(runtime) if runtime else None,
    )


def save_shard_result(result: ShardResult, path: Union[str, Path]) -> Path:
    """Write one shard result to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(shard_result_to_dict(result)))
    return path


def load_shard_result(
    path: Union[str, Path], space: Optional[DatapathSearchSpace] = None
) -> ShardResult:
    """Read a shard result previously written by :func:`save_shard_result`."""
    return shard_result_from_dict(json.loads(Path(path).read_text()), space)


def sweep_result_to_dict(result: SweepResult) -> Dict[str, object]:
    """JSON-compatible summary of a merged sweep (for ``--output``)."""
    payload: Dict[str, object] = {
        "shards": [dataclasses.asdict(spec) for spec in result.shards],
        "num_trials": result.num_trials,
        "duplicates_removed": result.duplicates_removed,
        "shard_best_scores": {
            str(shard_id): (None if math.isnan(score) else score)
            for shard_id, score in result.shard_best_scores.items()
        },
        "best_score": None if result.best_trial is None else result.best_score,
        "best_shard": None if result.best_trial is None else result.best_trial.shard_id,
        "best_params": (
            params_to_jsonable(result.best_params) if result.best_params is not None else None
        ),
        "best_metrics": (
            trial_metrics_to_dict(result.best_metrics)
            if result.best_metrics is not None
            else None
        ),
        "pareto_front": [
            {
                "objectives": list(point.objectives),
                "shard": point.payload.get("shard"),
                "trial": point.payload.get("trial"),
                "score": point.payload.get("score"),
                "params": (
                    params_to_jsonable(point.payload["params"])
                    if isinstance(point.payload.get("params"), dict)
                    else None
                ),
            }
            for point in result.pareto_front.sorted_by(0)
        ],
    }
    if result.runtime is not None:
        payload["runtime"] = runtime_stats_to_dict(result.runtime)
    return payload
