"""Cross-trial memoization of mapping costs: the shared cost-cache tier.

The second-level cache of the mapping engine: while each
:class:`~repro.mapping.mapper.Mapper` memoizes problems *within* one trial,
an :class:`OpCostCache` is shared across trials (and, when persistent, across
processes and restarts) and keyed by the pair

``(mapping-relevant datapath sub-config, op shape fingerprint)``

so neighboring design points that agree on the mapping-relevant slice of the
configuration — no matter how their fusion, memory, or batch parameters
differ — reuse each other's mapped op costs instead of re-running the
candidate sweep.  Vector-op costs are cached the same way under a
``(graph fingerprint, op, VPU lanes, softmax factors)`` key built by
:func:`repro.simulator.vector_ops.vector_cost_cache_key`.  One level up,
:class:`RegionCostCache` memoizes whole fusion-region evaluations.

Both caches are **tiered**.  A lookup falls through, in order:

1. the in-process memory LRU (private, per process);
2. the digest-keyed raw index, backed by an append-only JSONL store when a
   path is configured (``--op-cache`` / ``--engine region_store=PATH``) —
   records are written with a single ``write`` call each, so concurrent
   appends from multiple processes sharing a path never interleave partial
   lines on POSIX filesystems, and torn tails left by crashes are
   quarantined (``corrupt_records``) rather than trusted;
3. an attached read-only shared-memory segment published by a parent process
   (:mod:`repro.runtime.shmcache`) — the zero-copy tier that lets freshly
   spawned or respawned executor workers start hot without re-warm compute
   or duplicated RSS;
4. for region results only, an attached :class:`~repro.runtime.remote.RemoteCostCache`
   cluster client (batched ``prefetch``), the fleet-wide tier served by
   ``repro serve``'s ``/cache/region`` routes.

Every tier returns bit-identical payloads (JSON float encoding round-trips
exactly), so the tier an entry came from can never change a search history —
only how fast it arrives.  Caches are process-local singletons obtained
through :func:`get_op_cache` / :func:`get_region_cache`; worker processes of
a :class:`~repro.runtime.executor.ParallelExecutor` each build their own
lazily (the evaluator ships only the cache *settings*, never the cache),
exactly like the per-process workload-graph cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.fusion.fast_fusion import FusionDecision, RegionStats
from repro.mapping.costmodel import OpCost
from repro.mapping.dataflow import Dataflow
from repro.mapping.tiling import Tiling
from repro.simulator.result import RegionPerformance
from repro.workloads.ops import OpType

__all__ = [
    "CostCacheBase",
    "OpCacheStats",
    "OpCostCache",
    "RegionCacheStats",
    "RegionCostCache",
    "get_op_cache",
    "get_region_cache",
    "reset_op_caches",
    "reset_region_caches",
    "opcost_to_dict",
    "opcost_from_dict",
    "region_entry_to_dict",
    "region_entry_from_dict",
]


@dataclass
class OpCacheStats:
    """Hit/miss counters for one op-cost cache.

    ``hits`` counts every lookup served from *any* tier; ``disk_hits`` and
    ``shared_hits`` break out the subset served from the persistent raw
    index and the attached shared-memory segment respectively (a pure
    memory-LRU hit is ``hits`` minus both).  ``corrupt_records`` counts
    torn/undecodable JSONL lines quarantined while loading the store (the
    tail a crash mid-append leaves); ``stale_tmp_swept`` counts leftover
    compaction temp files removed.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    disk_hits: int = 0
    shared_hits: int = 0
    disk_entries_loaded: int = 0
    corrupt_records: int = 0
    stale_tmp_swept: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class RegionCacheStats:
    """Hit/miss counters for one region-cost cache.

    Shares the tier breakdown of :class:`OpCacheStats` and adds the cluster
    tier: ``remote_hits``/``remote_misses`` count batched ``prefetch``
    lookups against an attached cache service, ``remote_puts`` the entries
    pushed back, ``remote_requests``/``remote_failures`` the HTTP round
    trips behind them.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    disk_hits: int = 0
    shared_hits: int = 0
    disk_entries_loaded: int = 0
    corrupt_records: int = 0
    stale_tmp_swept: int = 0
    remote_hits: int = 0
    remote_misses: int = 0
    remote_puts: int = 0
    remote_requests: int = 0
    remote_failures: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of region lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# ---------------------------------------------------------------------------
# Payload codecs.  JSON floats round-trip exactly (repr-based shortest float
# encoding), which is what keeps every persistent / shared / remote tier
# bit-for-bit neutral to search histories.
# ---------------------------------------------------------------------------
def opcost_to_dict(cost: OpCost) -> Dict[str, object]:
    """JSON-compatible encoding of an :class:`OpCost` (exact float round-trip)."""
    return {
        "op_name": cost.op_name,
        "op_type": cost.op_type.value,
        "flops": cost.flops,
        "padded_flops": cost.padded_flops,
        "compute_cycles": cost.compute_cycles,
        "vector_cycles": cost.vector_cycles,
        "dram_input_bytes": cost.dram_input_bytes,
        "dram_weight_bytes": cost.dram_weight_bytes,
        "dram_output_bytes": cost.dram_output_bytes,
        "utilization": cost.utilization,
        "dataflow": cost.dataflow.value if cost.dataflow is not None else None,
        "tiling": (
            [cost.tiling.m_tile, cost.tiling.n_tile, cost.tiling.k_tile]
            if cost.tiling is not None
            else None
        ),
        "schedule_failed": cost.schedule_failed,
    }


def opcost_from_dict(data: Dict[str, object]) -> OpCost:
    """Inverse of :func:`opcost_to_dict`."""
    tiling = data.get("tiling")
    dataflow = data.get("dataflow")
    return OpCost(
        op_name=str(data["op_name"]),
        op_type=OpType(data["op_type"]),
        flops=int(data["flops"]),
        padded_flops=int(data["padded_flops"]),
        compute_cycles=float(data["compute_cycles"]),
        vector_cycles=float(data["vector_cycles"]),
        dram_input_bytes=float(data["dram_input_bytes"]),
        dram_weight_bytes=float(data["dram_weight_bytes"]),
        dram_output_bytes=float(data["dram_output_bytes"]),
        utilization=float(data["utilization"]),
        dataflow=Dataflow(dataflow) if dataflow is not None else None,
        tiling=Tiling(*tiling) if tiling is not None else None,
        schedule_failed=bool(data["schedule_failed"]),
    )


def region_entry_to_dict(entry: tuple) -> Dict[str, object]:
    """JSON-compatible encoding of a cached region entry.

    Entries are either the ``(None,)`` schedule-failure sentinel or a
    ``(RegionPerformance, RegionStats)`` pair as normalized by the
    simulator's ``_copy_region_entry`` (default :class:`FusionDecision`,
    ``post_fusion_cycles == pre_fusion_cycles``); floats round-trip exactly.
    """
    if entry[0] is None:
        return {"failed": True}
    record, stats = entry
    return {
        "record": {
            "index": record.index,
            "name": record.name,
            "op_names": list(record.op_names),
            "primary_op_type": record.primary_op_type.value,
            "flops": record.flops,
            "compute_cycles": record.compute_cycles,
            "vector_cycles": record.vector_cycles,
            "dram_input_bytes": record.dram_input_bytes,
            "dram_weight_bytes": record.dram_weight_bytes,
            "dram_output_bytes": record.dram_output_bytes,
            "pre_fusion_cycles": record.pre_fusion_cycles,
            "post_fusion_cycles": record.post_fusion_cycles,
            "matrix_utilization": record.matrix_utilization,
            "op_busy_cycles": dict(record.op_busy_cycles),
        },
        "stats": {
            "index": stats.index,
            "name": stats.name,
            "busy_cycles": stats.busy_cycles,
            "t_max_cycles": stats.t_max_cycles,
            "input_dram_cycles": stats.input_dram_cycles,
            "weight_dram_cycles": stats.weight_dram_cycles,
            "output_dram_cycles": stats.output_dram_cycles,
            "input_bytes": stats.input_bytes,
            "weight_bytes": stats.weight_bytes,
            "output_bytes": stats.output_bytes,
            "blocking_gm_bytes": stats.blocking_gm_bytes,
            "predecessor": stats.predecessor,
            "is_graph_output": stats.is_graph_output,
        },
    }


def region_entry_from_dict(data: Dict[str, object]) -> tuple:
    """Inverse of :func:`region_entry_to_dict`."""
    if data.get("failed"):
        return (None,)
    record = data["record"]
    stats = data["stats"]
    predecessor = stats.get("predecessor")
    return (
        RegionPerformance(
            index=int(record["index"]),
            name=str(record["name"]),
            op_names=[str(name) for name in record["op_names"]],
            primary_op_type=OpType(record["primary_op_type"]),
            flops=int(record["flops"]),
            compute_cycles=float(record["compute_cycles"]),
            vector_cycles=float(record["vector_cycles"]),
            dram_input_bytes=float(record["dram_input_bytes"]),
            dram_weight_bytes=float(record["dram_weight_bytes"]),
            dram_output_bytes=float(record["dram_output_bytes"]),
            pre_fusion_cycles=float(record["pre_fusion_cycles"]),
            post_fusion_cycles=float(record["post_fusion_cycles"]),
            matrix_utilization=float(record["matrix_utilization"]),
            fusion=FusionDecision(),
            op_busy_cycles={
                str(name): float(value)
                for name, value in record["op_busy_cycles"].items()
            },
        ),
        RegionStats(
            index=int(stats["index"]),
            name=str(stats["name"]),
            busy_cycles=float(stats["busy_cycles"]),
            t_max_cycles=float(stats["t_max_cycles"]),
            input_dram_cycles=float(stats["input_dram_cycles"]),
            weight_dram_cycles=float(stats["weight_dram_cycles"]),
            output_dram_cycles=float(stats["output_dram_cycles"]),
            input_bytes=int(stats["input_bytes"]),
            weight_bytes=int(stats["weight_bytes"]),
            output_bytes=int(stats["output_bytes"]),
            blocking_gm_bytes=int(stats["blocking_gm_bytes"]),
            predecessor=int(predecessor) if predecessor is not None else None,
            is_graph_output=bool(stats["is_graph_output"]),
        ),
    )


# ---------------------------------------------------------------------------
# The shared store base.  Everything path-related — digest index, streamed
# load, torn-tail quarantine, stale-tmp sweep, single-write appends, atomic
# compaction — lives here once; OpCostCache and RegionCostCache differ only
# in their payload codec and extra tiers.
# ---------------------------------------------------------------------------
class CostCacheBase:
    """Tiered cost cache: memory LRU + digest-keyed raw index + JSONL store.

    Keys are hashable tuples built by the mapper / simulator; the raw index
    (and the persistent store behind it) keys them by a SHA-256 digest of
    their canonical JSON form, so any process that derives the same key
    reads the same record.  Subclasses set :attr:`_PAYLOAD_FIELD` and the
    ``_encode``/``_decode`` codec; an optional shared-memory tier is wired
    in with :meth:`attach_shared`.

    Args:
        path: Optional JSON-lines store; created on first put.
        max_memory_entries: LRU capacity of the in-memory front.
        preload: Load an existing store into the raw index on construction.
            Pass False when another tier already carries the store's entries
            (an executor worker attaching a parent-published shared-memory
            segment skips N redundant disk loads this way); puts still
            append to the store.
    """

    _PAYLOAD_FIELD = "cost"
    _STATS_FACTORY = OpCacheStats

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        max_memory_entries: int = 65536,
        preload: bool = True,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.max_memory_entries = max(1, int(max_memory_entries))
        self.stats = self._STATS_FACTORY()
        self._memory: "OrderedDict[Tuple, object]" = OrderedDict()
        # digest -> raw payload dict.  Mirrors the JSONL store when a path
        # is configured; also populated without one when raw payloads are
        # needed in RAM (cluster-cache publishing, remote put dedup).
        self._disk_index: Dict[str, dict] = {}
        # Optional zero-copy tier: digest -> raw payload dict (or None),
        # reading from an attached shared-memory segment.
        self._shared: Optional[Callable[[str], Optional[dict]]] = None
        # Keep raw payloads in ``_disk_index`` even without a store path
        # (lets a path-less ``repro serve`` answer /cache/region lookups).
        self.publish_raw = False
        if preload and self.path is not None and self.path.exists():
            self._load_disk_index()

    # -- codec hooks ---------------------------------------------------
    def _encode(self, value) -> dict:
        raise NotImplementedError

    def _decode(self, raw: dict):
        raise NotImplementedError

    # -- persistence ---------------------------------------------------
    def _sweep_stale_tmp(self) -> None:
        """Remove a leftover ``.tmp`` from a compaction that crashed mid-write."""
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        try:
            if tmp_path.exists():
                tmp_path.unlink()
                self.stats.stale_tmp_swept += 1
        except OSError:
            pass  # best effort; a stale tmp is inert

    def _load_disk_index(self) -> None:
        # Streamed line-by-line: a multi-GB store must never be buffered
        # whole (read_text doubles peak RSS) just to build its index.
        self._sweep_stale_tmp()
        payload = self._PAYLOAD_FIELD
        with self.path.open("r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    self._disk_index[record["key"]] = record[payload]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # Quarantine the torn line a killed run left behind:
                    # count it, keep loading, let compaction drop it.
                    self.stats.corrupt_records += 1
                    continue
        self.stats.disk_entries_loaded = len(self._disk_index)

    @staticmethod
    def digest(key: Tuple) -> str:
        """Stable string form of a cache key (for the persistent store)."""
        canonical = json.dumps(key, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- shared-memory tier --------------------------------------------
    def attach_shared(self, lookup: Optional[Callable[[str], Optional[dict]]]) -> None:
        """Attach (or detach, with None) a digest -> raw payload tier.

        The lookup is expected to read a parent-published shared-memory
        segment (:mod:`repro.runtime.shmcache`); entries it serves decode to
        bit-identical values, so attaching is invisible to search results.
        """
        self._shared = lookup

    # -- lookup / store ------------------------------------------------
    def get(self, key: Tuple):
        """Look up a cached value; returns None on a miss."""
        value = self._memory.get(key)
        if value is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return value
        digest: Optional[str] = None
        if self._disk_index:
            digest = self.digest(key)
            raw = self._disk_index.get(digest)
            if raw is not None:
                value = self._decode(raw)
                self._remember(key, value)
                self.stats.hits += 1
                self.stats.disk_hits += 1
                return value
        if self._shared is not None:
            if digest is None:
                digest = self.digest(key)
            raw = self._shared(digest)
            if raw is not None:
                value = self._decode(raw)
                self._remember(key, value)
                self.stats.hits += 1
                self.stats.shared_hits += 1
                return value
        self.stats.misses += 1
        return None

    def put(self, key: Tuple, value) -> None:
        """Store a value in memory and (when configured) append to disk.

        Cached values are a deterministic function of their key, so a key
        already present in the raw index is never re-appended — the store
        only grows by records this process has not seen, keeping it
        duplicate-free for a single writer (concurrent processes can still
        race the same key; :meth:`compact` folds such duplicates away).
        """
        self._remember(key, value)
        self.stats.puts += 1
        if self.path is None and not self.publish_raw:
            return
        digest = self.digest(key)
        if digest in self._disk_index:
            return
        self._store_raw(digest, self._encode(value))

    def _store_raw(self, digest: str, raw: dict) -> None:
        """Record a raw payload in the index, appending to the store if any."""
        if self.path is not None:
            record = {"key": digest, self._PAYLOAD_FIELD: raw}
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # One write call per record: appends from concurrent processes
            # can never split a line.
            with self.path.open("a") as handle:
                handle.write(json.dumps(record) + "\n")
        self._disk_index[digest] = raw

    def raw_lookup(self, digest: str) -> Optional[dict]:
        """Raw payload for a digest, if the index holds one (cluster serving)."""
        return self._disk_index.get(digest)

    def compact(self) -> int:
        """Rewrite the store with one record per key; returns records kept.

        Records are deterministic per key, so compaction simply keeps the
        first occurrence of each key.  The rewrite is atomic (temp file +
        fsync + rename).  Run it only while no other process is appending to
        the store — appends racing the rename window would be lost.
        """
        if self.path is None:
            raise ValueError("compaction requires a cache path")
        self._disk_index = {}
        if self.path.exists():
            self._load_disk_index()
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        payload = self._PAYLOAD_FIELD
        with tmp_path.open("w") as handle:
            for digest, raw in self._disk_index.items():
                handle.write(json.dumps({"key": digest, payload: raw}) + "\n")
            # Durable before the rename, so the promoted file can never
            # lose its data to a power failure after the replace.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        return len(self._disk_index)

    def _remember(self, key: Tuple, value) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory) if not self._disk_index else len(
            {self.digest(k) for k in self._memory} | set(self._disk_index)
        )

    def snapshot_counters(self) -> Tuple[int, int]:
        """(hits, misses) counters, for delta accounting across a run."""
        return self.stats.hits, self.stats.misses


class OpCostCache(CostCacheBase):
    """Tiered cache of per-op mapping / vector costs (see module docstring)."""

    _PAYLOAD_FIELD = "cost"
    _STATS_FACTORY = OpCacheStats

    def _encode(self, value: OpCost) -> dict:
        return opcost_to_dict(value)

    def _decode(self, raw: dict) -> OpCost:
        return opcost_from_dict(raw)


# ---------------------------------------------------------------------------
# Region-level result cache.  One level above the op cache: the simulator
# memoizes whole fusion-region evaluations — (RegionPerformance, RegionStats)
# pairs — keyed by (graph fingerprint, region index, mapping-relevant
# datapath sub-config).  A warm trial whose region key matches skips even the
# gather step of the graph-batched mapper: no problem extraction, no op-cache
# lookups, no traffic sweep.  The cache stores opaque entries; the simulator
# owns the key construction and copies mutable payloads on every hit, so
# cached records are never aliased into live simulation results.
# ---------------------------------------------------------------------------
class RegionCostCache(CostCacheBase):
    """Tiered cache of fully evaluated fusion regions.

    Adds two tiers on top of :class:`CostCacheBase`: persistence (the region
    store, ``--engine region_store=PATH``, same JSONL machinery as the op
    store) and an optional cluster tier — a
    :class:`~repro.runtime.remote.RemoteCostCache` attached with
    :meth:`attach_remote` and consulted in digest batches by
    :meth:`prefetch` before the simulator walks a graph's regions.

    Args:
        path: Optional JSON-lines region store; created on first put.
        max_entries: Memory-LRU capacity; least-recently-used regions are
            evicted once the cache grows past it (store entries remain
            reachable through the raw index).
    """

    _PAYLOAD_FIELD = "entry"
    _STATS_FACTORY = RegionCacheStats
    #: Buffered remote puts are flushed at this many pending entries (and on
    #: every prefetch, so a steady search drains the buffer continuously).
    REMOTE_PUT_FLUSH = 32

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        max_entries: int = 16384,
        preload: bool = True,
    ) -> None:
        super().__init__(path=path, max_memory_entries=max_entries, preload=preload)
        self.max_entries = self.max_memory_entries
        self._remote = None
        self._remote_puts: Dict[str, dict] = {}

    def _encode(self, value: tuple) -> dict:
        return region_entry_to_dict(value)

    def _decode(self, raw: dict) -> tuple:
        return region_entry_from_dict(raw)

    # ------------------------------------------------------------------
    def peek(self, key: Tuple):
        """Probe for an entry without touching stats or LRU order.

        The trial-batched gather phase uses this to decide which regions
        still need mapping; the later accounted :meth:`get` during
        ``simulate`` keeps hit/miss statistics identical to per-trial runs.
        A store or shared-segment entry found here is promoted into memory
        (still unaccounted), so the accounted lookup that follows sees it.
        """
        entry = self._memory.get(key)
        if entry is not None:
            return entry
        if not self._disk_index and self._shared is None:
            return None
        digest = self.digest(key)
        raw = self._disk_index.get(digest) if self._disk_index else None
        if raw is None and self._shared is not None:
            raw = self._shared(digest)
        if raw is None:
            return None
        entry = self._decode(raw)
        self._remember(key, entry)
        return entry

    def put(self, key: Tuple, entry: tuple) -> None:
        """Store one evaluated region, evicting the LRU tail past capacity."""
        self._remember(key, entry)
        self.stats.puts += 1
        if self.path is None and not self.publish_raw and self._remote is None:
            return
        digest = self.digest(key)
        if digest in self._disk_index:
            return
        raw = self._encode(entry)
        self._store_raw(digest, raw)
        if self._remote is not None:
            self._remote_puts[digest] = raw
            if len(self._remote_puts) >= self.REMOTE_PUT_FLUSH:
                self.flush_remote()

    # -- cluster tier --------------------------------------------------
    def attach_remote(self, client) -> None:
        """Attach (or detach, with None) a cluster cache client.

        ``client`` is duck-typed: ``get_many(digests) -> {digest: raw}`` and
        ``put_many({digest: raw}) -> int`` (see
        :class:`~repro.runtime.remote.RemoteCostCache`).  Batched lookups
        happen only through :meth:`prefetch`; the per-key :meth:`get` path
        never blocks on the network.
        """
        if client is not self._remote:
            self.flush_remote()
        self._remote = client

    @property
    def remote(self):
        """The attached cluster cache client, or None."""
        return self._remote

    def prefetch(self, keys: Iterable[Tuple]) -> int:
        """Batch-resolve keys against the cluster tier; returns new entries.

        Looks up every key that no local tier can serve in one batched
        remote round trip and promotes the results into memory (and the
        local store, so a fetched region survives restarts).  Counted in
        ``stats.remote_hits``/``remote_misses``; the promoted entries then
        surface as ordinary hits in the accounted lookups that follow, so
        histories stay bit-for-bit identical with or without the tier.
        """
        if self._remote is None:
            return 0
        self.flush_remote()  # piggyback pending puts on the round trip
        need: List[Tuple[Tuple, str]] = []
        seen: set = set()
        for key in keys:
            if self._memory.get(key) is not None:
                continue
            digest = self.digest(key)
            if digest in seen or digest in self._disk_index:
                continue
            if self._shared is not None and self._shared(digest) is not None:
                continue
            seen.add(digest)
            need.append((key, digest))
        if not need:
            return 0
        self.stats.remote_requests += 1
        try:
            found = self._remote.get_many([digest for _, digest in need])
        except Exception:
            self.stats.remote_failures += 1
            return 0
        fetched = 0
        for key, digest in need:
            raw = found.get(digest)
            if raw is None:
                self.stats.remote_misses += 1
                continue
            try:
                entry = self._decode(raw)
            except Exception:
                self.stats.remote_misses += 1
                continue
            self._remember(key, entry)
            self._store_raw(digest, raw)
            self.stats.remote_hits += 1
            fetched += 1
        return fetched

    def flush_remote(self) -> int:
        """Push buffered local results to the cluster tier; returns count."""
        if self._remote is None or not self._remote_puts:
            return 0
        pending, self._remote_puts = self._remote_puts, {}
        self.stats.remote_requests += 1
        try:
            stored = self._remote.put_many(pending)
        except Exception:
            self.stats.remote_failures += 1
            return 0
        self.stats.remote_puts += len(pending)
        return stored if isinstance(stored, int) else len(pending)


# ---------------------------------------------------------------------------
# Process-local registries.  Keyed by store path (None = anonymous in-memory
# cache).  A PID change means this process was forked from a warm parent (or
# the registry is simply stale in tests): the *entries* are deterministic
# results and stay perfectly valid, so they are retained — this is what lets
# fork-started executor workers begin life with the parent's warm op and
# region caches — while the *statistics* are zeroed so workers never
# double-count lookups the parent already reported.  A forked region cache
# also drops its buffered remote puts (the parent owns those) and its remote
# client, which the child's own initialization re-attaches if configured.
# ---------------------------------------------------------------------------
_CACHES: Dict[Optional[str], OpCostCache] = {}
_CACHES_PID: Optional[int] = None
_REGION_CACHES: Dict[Optional[str], RegionCostCache] = {}
_REGION_CACHES_PID: Optional[int] = None


def get_op_cache(
    path: Optional[Union[str, Path]] = None, preload: bool = True
) -> OpCostCache:
    """The process-local shared op-cost cache for a store path.

    Every caller passing the same ``path`` (or ``None``) within one process
    receives the same instance, which is what makes op costs flow between
    trials, shards, and sequential searches.  After a fork the inherited
    entries are kept (warm workers) but the counters restart at zero.
    ``preload`` applies only when this call constructs the instance (see
    :class:`CostCacheBase`).
    """
    global _CACHES_PID
    pid = os.getpid()
    if _CACHES_PID != pid:
        for cache in _CACHES.values():
            cache.stats = OpCacheStats()
        _CACHES_PID = pid
    key = str(Path(path)) if path is not None else None
    cache = _CACHES.get(key)
    if cache is None:
        cache = OpCostCache(path=path, preload=preload)
        _CACHES[key] = cache
    return cache


def get_region_cache(
    path: Optional[Union[str, Path]] = None, preload: bool = True
) -> RegionCostCache:
    """The process-local shared region-cost cache for a store path.

    Shared by every simulator in the process that names the same region
    store (or none — the key carries the full mapping-relevant context, so
    unrelated graphs or configs never collide).  After a fork the inherited
    entries are kept but the counters restart at zero, mirroring
    :func:`get_op_cache`.
    """
    global _REGION_CACHES_PID
    pid = os.getpid()
    if _REGION_CACHES_PID != pid:
        for cache in _REGION_CACHES.values():
            cache.stats = RegionCacheStats()
            cache._remote = None
            cache._remote_puts = {}
        _REGION_CACHES_PID = pid
    key = str(Path(path)) if path is not None else None
    cache = _REGION_CACHES.get(key)
    if cache is None:
        cache = RegionCostCache(path=path, preload=preload)
        _REGION_CACHES[key] = cache
    return cache


def reset_region_caches() -> None:
    """Drop every process-local region cache (for tests and benchmarks)."""
    global _REGION_CACHES_PID
    _REGION_CACHES.clear()
    _REGION_CACHES_PID = None


def reset_op_caches() -> None:
    """Drop every process-local op *and* region cache (tests, benchmarks)."""
    global _CACHES_PID
    _CACHES.clear()
    _CACHES_PID = None
    reset_region_caches()
