"""Cross-trial memoization of per-op mapping costs.

The second-level cache of the mapping engine: while each
:class:`~repro.mapping.mapper.Mapper` memoizes problems *within* one trial,
an :class:`OpCostCache` is shared across trials (and, when persistent, across
processes and restarts) and keyed by the pair

``(mapping-relevant datapath sub-config, op shape fingerprint)``

so neighboring design points that agree on the mapping-relevant slice of the
configuration — no matter how their fusion, memory, or batch parameters
differ — reuse each other's mapped op costs instead of re-running the
candidate sweep.  Vector-op costs are cached the same way under a
``(graph fingerprint, op, VPU lanes, softmax factors)`` key built by
:func:`repro.simulator.vector_ops.vector_cost_cache_key`.

Caches are process-local singletons obtained through :func:`get_op_cache`;
worker processes of a :class:`~repro.runtime.executor.ParallelExecutor` each
build their own lazily (the evaluator ships only the cache *settings*, never
the cache), exactly like the per-process workload-graph cache.  Persistence
is an append-only JSON-lines store: records are written with a single
``write`` call each, so concurrent appends from multiple processes sharing a
path never interleave partial lines on POSIX filesystems.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.mapping.costmodel import OpCost
from repro.mapping.dataflow import Dataflow
from repro.mapping.tiling import Tiling
from repro.workloads.ops import OpType

__all__ = [
    "OpCacheStats",
    "OpCostCache",
    "RegionCacheStats",
    "RegionCostCache",
    "get_op_cache",
    "get_region_cache",
    "reset_op_caches",
    "reset_region_caches",
    "opcost_to_dict",
    "opcost_from_dict",
]


@dataclass
class OpCacheStats:
    """Hit/miss counters for one op-cost cache.

    ``corrupt_records`` counts torn/undecodable JSONL lines quarantined
    while loading the store (the tail a crash mid-append leaves);
    ``stale_tmp_swept`` counts leftover compaction temp files removed.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    disk_entries_loaded: int = 0
    corrupt_records: int = 0
    stale_tmp_swept: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def opcost_to_dict(cost: OpCost) -> Dict[str, object]:
    """JSON-compatible encoding of an :class:`OpCost` (exact float round-trip)."""
    return {
        "op_name": cost.op_name,
        "op_type": cost.op_type.value,
        "flops": cost.flops,
        "padded_flops": cost.padded_flops,
        "compute_cycles": cost.compute_cycles,
        "vector_cycles": cost.vector_cycles,
        "dram_input_bytes": cost.dram_input_bytes,
        "dram_weight_bytes": cost.dram_weight_bytes,
        "dram_output_bytes": cost.dram_output_bytes,
        "utilization": cost.utilization,
        "dataflow": cost.dataflow.value if cost.dataflow is not None else None,
        "tiling": (
            [cost.tiling.m_tile, cost.tiling.n_tile, cost.tiling.k_tile]
            if cost.tiling is not None
            else None
        ),
        "schedule_failed": cost.schedule_failed,
    }


def opcost_from_dict(data: Dict[str, object]) -> OpCost:
    """Inverse of :func:`opcost_to_dict`."""
    tiling = data.get("tiling")
    dataflow = data.get("dataflow")
    return OpCost(
        op_name=str(data["op_name"]),
        op_type=OpType(data["op_type"]),
        flops=int(data["flops"]),
        padded_flops=int(data["padded_flops"]),
        compute_cycles=float(data["compute_cycles"]),
        vector_cycles=float(data["vector_cycles"]),
        dram_input_bytes=float(data["dram_input_bytes"]),
        dram_weight_bytes=float(data["dram_weight_bytes"]),
        dram_output_bytes=float(data["dram_output_bytes"]),
        utilization=float(data["utilization"]),
        dataflow=Dataflow(dataflow) if dataflow is not None else None,
        tiling=Tiling(*tiling) if tiling is not None else None,
        schedule_failed=bool(data["schedule_failed"]),
    )


class OpCostCache:
    """Two-level (memory LRU + optional JSONL store) cache of op costs.

    Keys are hashable tuples built by the mapper / vector-op cost model; the
    persistent store indexes them by a SHA-256 digest of their canonical JSON
    form, so any process that derives the same key reads the same record.

    Args:
        path: Optional JSON-lines store; created on first put.
        max_memory_entries: LRU capacity of the in-memory front.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        max_memory_entries: int = 65536,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.max_memory_entries = max(1, int(max_memory_entries))
        self.stats = OpCacheStats()
        self._memory: "OrderedDict[Tuple, OpCost]" = OrderedDict()
        self._disk_index: Dict[str, dict] = {}
        if self.path is not None and self.path.exists():
            self._load_disk_index()

    # ------------------------------------------------------------------
    def _sweep_stale_tmp(self) -> None:
        """Remove a leftover ``.tmp`` from a compaction that crashed mid-write."""
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        try:
            if tmp_path.exists():
                tmp_path.unlink()
                self.stats.stale_tmp_swept += 1
        except OSError:
            pass  # best effort; a stale tmp is inert

    def _load_disk_index(self) -> None:
        self._sweep_stale_tmp()
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                self._disk_index[record["key"]] = record["cost"]
            except (json.JSONDecodeError, KeyError, TypeError):
                # Quarantine the torn line a killed run left behind: count
                # it, keep loading, let compaction drop it.
                self.stats.corrupt_records += 1
                continue
        self.stats.disk_entries_loaded = len(self._disk_index)

    @staticmethod
    def digest(key: Tuple) -> str:
        """Stable string form of a cache key (for the persistent store)."""
        canonical = json.dumps(key, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode()).hexdigest()

    # ------------------------------------------------------------------
    def get(self, key: Tuple) -> Optional[OpCost]:
        """Look up a cached op cost; returns None on a miss."""
        cost = self._memory.get(key)
        if cost is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return cost
        if self._disk_index:
            raw = self._disk_index.get(self.digest(key))
            if raw is not None:
                cost = opcost_from_dict(raw)
                self._remember(key, cost)
                self.stats.hits += 1
                return cost
        self.stats.misses += 1
        return None

    def put(self, key: Tuple, cost: OpCost) -> None:
        """Store an op cost in memory and (when configured) append to disk.

        Op costs are a deterministic function of their key, so a key already
        present in the disk index is never re-appended — the store only grows
        by records this process has not seen, keeping it duplicate-free for
        a single writer (concurrent processes can still race the same key;
        :meth:`compact` folds such duplicates away).
        """
        self._remember(key, cost)
        self.stats.puts += 1
        if self.path is not None:
            digest = self.digest(key)
            if digest in self._disk_index:
                return
            record_cost = opcost_to_dict(cost)
            record = {"key": digest, "cost": record_cost}
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # One write call per record: appends from concurrent processes
            # can never split a line.
            with self.path.open("a") as handle:
                handle.write(json.dumps(record) + "\n")
            self._disk_index[digest] = record_cost

    def compact(self) -> int:
        """Rewrite the store with one record per key; returns records kept.

        Records are deterministic per key, so compaction simply keeps the
        first occurrence of each key.  The rewrite is atomic (temp file +
        rename).  Run it only while no other process is appending to the
        store — appends racing the rename window would be lost.
        """
        if self.path is None:
            raise ValueError("compaction requires a cache path")
        self._disk_index = {}
        if self.path.exists():
            self._load_disk_index()
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        with tmp_path.open("w") as handle:
            for digest, cost in self._disk_index.items():
                handle.write(json.dumps({"key": digest, "cost": cost}) + "\n")
            # Durable before the rename, so the promoted file can never
            # lose its data to a power failure after the replace.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        return len(self._disk_index)

    def _remember(self, key: Tuple, cost: OpCost) -> None:
        self._memory[key] = cost
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory) if not self._disk_index else len(
            {self.digest(k) for k in self._memory} | set(self._disk_index)
        )

    def snapshot_counters(self) -> Tuple[int, int]:
        """(hits, misses) counters, for delta accounting across a run."""
        return self.stats.hits, self.stats.misses


# ---------------------------------------------------------------------------
# Region-level result cache.  One level above the op cache: the simulator
# memoizes whole fusion-region evaluations — (RegionPerformance, RegionStats)
# pairs — keyed by (graph fingerprint, region index, mapping-relevant
# datapath sub-config).  A warm trial whose region key matches skips even the
# gather step of the graph-batched mapper: no problem extraction, no op-cache
# lookups, no traffic sweep.  The cache stores opaque entries; the simulator
# owns the key construction and copies mutable payloads on every hit, so
# cached records are never aliased into live simulation results.
# ---------------------------------------------------------------------------
@dataclass
class RegionCacheStats:
    """Hit/miss counters for one region-cost cache."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of region lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RegionCostCache:
    """In-memory LRU of fully evaluated fusion regions.

    Args:
        max_entries: LRU capacity; least-recently-used regions are evicted
            once the cache grows past it.
    """

    def __init__(self, max_entries: int = 16384) -> None:
        self.max_entries = max(1, int(max_entries))
        self.stats = RegionCacheStats()
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()

    def get(self, key: Tuple):
        """Look up a cached region entry; returns None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def peek(self, key: Tuple):
        """Probe for an entry without touching stats or LRU order.

        The trial-batched gather phase uses this to decide which regions
        still need mapping; the later accounted :meth:`get` during
        ``simulate`` keeps hit/miss statistics identical to per-trial runs.
        """
        return self._entries.get(key)

    def put(self, key: Tuple, entry: object) -> None:
        """Store one evaluated region, evicting the LRU tail past capacity."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.stats.puts += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot_counters(self) -> Tuple[int, int]:
        """(hits, misses) counters, for delta accounting across a run."""
        return self.stats.hits, self.stats.misses


# ---------------------------------------------------------------------------
# Process-local registries.  Keyed by store path (None = anonymous in-memory
# cache).  A PID change means this process was forked from a warm parent (or
# the registry is simply stale in tests): the *entries* are deterministic
# results and stay perfectly valid, so they are retained — this is what lets
# fork-started executor workers begin life with the parent's warm op and
# region caches — while the *statistics* are zeroed so workers never
# double-count lookups the parent already reported.
# ---------------------------------------------------------------------------
_CACHES: Dict[Optional[str], OpCostCache] = {}
_CACHES_PID: Optional[int] = None
_REGION_CACHES: Dict[None, RegionCostCache] = {}
_REGION_CACHES_PID: Optional[int] = None


def get_op_cache(path: Optional[Union[str, Path]] = None) -> OpCostCache:
    """The process-local shared op-cost cache for a store path.

    Every caller passing the same ``path`` (or ``None``) within one process
    receives the same instance, which is what makes op costs flow between
    trials, shards, and sequential searches.  After a fork the inherited
    entries are kept (warm workers) but the counters restart at zero.
    """
    global _CACHES_PID
    pid = os.getpid()
    if _CACHES_PID != pid:
        for cache in _CACHES.values():
            cache.stats = OpCacheStats()
        _CACHES_PID = pid
    key = str(Path(path)) if path is not None else None
    cache = _CACHES.get(key)
    if cache is None:
        cache = OpCostCache(path=path)
        _CACHES[key] = cache
    return cache


def get_region_cache() -> RegionCostCache:
    """The process-local shared region-cost cache.

    Shared by every simulator in the process (the key carries the full
    mapping-relevant context, so unrelated graphs or configs never collide).
    After a fork the inherited entries are kept but the counters restart at
    zero, mirroring :func:`get_op_cache`.
    """
    global _REGION_CACHES_PID
    pid = os.getpid()
    if _REGION_CACHES_PID != pid:
        for cache in _REGION_CACHES.values():
            cache.stats = RegionCacheStats()
        _REGION_CACHES_PID = pid
    cache = _REGION_CACHES.get(None)
    if cache is None:
        cache = RegionCostCache()
        _REGION_CACHES[None] = cache
    return cache


def reset_region_caches() -> None:
    """Drop every process-local region cache (for tests and benchmarks)."""
    global _REGION_CACHES_PID
    _REGION_CACHES.clear()
    _REGION_CACHES_PID = None


def reset_op_caches() -> None:
    """Drop every process-local op *and* region cache (tests, benchmarks)."""
    global _CACHES_PID
    _CACHES.clear()
    _CACHES_PID = None
    reset_region_caches()
