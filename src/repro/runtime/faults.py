"""Seeded, deterministic fault injection for chaos-testing the runtime.

Partial failure is the steady state of a scaled-out search: pool workers get
OOM-killed, evaluation services drop connections or answer 5xx, appends are
torn mid-line by a crash.  The runtime promises that none of this changes
*what* a search computes — the trial history is bit-for-bit identical to a
fault-free run — and this module makes that promise testable by injecting
the failures on purpose, deterministically, from a seed.

A :class:`FaultPlan` is a set of named *fault points*, each an arm/decide
counter the runtime consults at its failure sites:

======================  ====================================================
``worker-crash``        A process-pool worker SIGKILLs itself instead of
                        evaluating its task (decided in the parent, per
                        task, so a respawned pool does not re-crash once
                        the budget is spent).
``remote-drop``         A remote request attempt is abandoned before it is
                        sent, as if the connection dropped.
``remote-timeout``      A remote request attempt is treated as timed out.
``remote-slow``         A remote request attempt sleeps ``delay`` seconds
                        before being sent (straggler simulation).
``service-error``       The evaluation service answers HTTP 500.
``service-drop``        The evaluation service closes the socket without a
                        response.
``service-delay``       The evaluation service sleeps ``delay`` seconds
                        before handling the request.
``torn-write``          A JSONL cache / op-store append writes a truncated
                        record, and a checkpoint save leaves a partial
                        ``.tmp`` file behind, as a crash mid-write would.
======================  ====================================================

Plans are built from a compact spec string (``--inject-faults``)::

    worker-crash:n=1,remote-drop:p=0.25:n=4,torn-write:at=0|3

Points are comma-separated; each takes colon-separated ``key=value`` params:
``p`` (fire probability per opportunity, default 1.0), ``n`` (total fire
budget, default unlimited), ``at`` (pinned opportunity indices, ``|``- or
``+``-separated; overrides ``p``), and ``delay`` (seconds, for the slow /
delay points).  Every random decision comes from a per-point
``random.Random`` stream derived from the plan seed, so the same spec and
seed fire the same faults in the same opportunity order — chaos runs are
reproducible.

A plan is also a valid :attr:`EvaluationService.fault_injector
<repro.runtime.service.EvaluationService.fault_injector>`: calling it as
``plan(request_index, path)`` returns the service action tuple
(``("error",)``, ``("drop",)``, ``("delay", seconds)``) for the configured
``service-*`` points, and the :meth:`at` / :attr:`default` hooks preserve
the request-pinned protocol the remote-executor tests were built on.
"""

from __future__ import annotations

import os
import random
import signal
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "KNOWN_FAULT_POINTS",
    "FaultPoint",
    "FaultPlan",
    "parse_fault_spec",
    "configure_faults",
    "get_fault_plan",
    "set_fault_plan",
    "clear_faults",
    "crash_process",
]

#: Fault point names the runtime consults; parse errors name this set.
KNOWN_FAULT_POINTS = frozenset(
    {
        "worker-crash",
        "remote-drop",
        "remote-timeout",
        "remote-slow",
        "service-error",
        "service-drop",
        "service-delay",
        "torn-write",
    }
)


@dataclass
class FaultPoint:
    """One configured failure site: when (and how often) it fires.

    ``at`` pins firing to exact opportunity indices and overrides ``p``;
    otherwise each opportunity fires with probability ``p`` until the
    ``budget`` (total fires) is spent.  ``opportunities``/``fired`` are the
    live counters.
    """

    name: str
    probability: float = 1.0
    budget: Optional[int] = None
    at: Optional[frozenset] = None
    delay: float = 0.05
    opportunities: int = 0
    fired: int = 0

    def spec(self) -> str:
        """Canonical spec fragment rebuilding this point."""
        parts = [self.name]
        if self.at is not None:
            parts.append("at=" + "|".join(str(i) for i in sorted(self.at)))
        elif self.probability != 1.0:
            parts.append(f"p={self.probability:g}")
        if self.budget is not None:
            parts.append(f"n={self.budget}")
        if self.delay != 0.05:
            parts.append(f"delay={self.delay:g}")
        return ":".join(parts)


def parse_fault_spec(spec: str) -> Dict[str, FaultPoint]:
    """Parse an ``--inject-faults`` spec string into fault points.

    Raises :class:`ValueError` on unknown point names, unknown params, or
    malformed values, naming what it understood — a chaos run with a typo'd
    spec silently injecting nothing would defeat its purpose.
    """
    points: Dict[str, FaultPoint] = {}
    for chunk in (spec or "").split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, _, param_text = chunk.partition(":")
        name = name.strip()
        if name not in KNOWN_FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {name!r}; known: "
                + ", ".join(sorted(KNOWN_FAULT_POINTS))
            )
        point = FaultPoint(name=name)
        for param in filter(None, (p.strip() for p in param_text.split(":"))):
            key, sep, value = param.partition("=")
            if not sep:
                raise ValueError(f"fault param {param!r} is not key=value")
            try:
                if key == "p":
                    point.probability = min(1.0, max(0.0, float(value)))
                elif key == "n":
                    point.budget = max(0, int(value))
                elif key == "at":
                    point.at = frozenset(
                        int(i) for i in value.replace("+", "|").split("|") if i
                    )
                elif key == "delay":
                    point.delay = max(0.0, float(value))
                else:
                    raise ValueError(
                        f"unknown fault param {key!r} (known: p, n, at, delay)"
                    )
            except (TypeError, ValueError) as error:
                if "unknown fault param" in str(error):
                    raise
                raise ValueError(f"bad value for fault param {param!r}") from error
        points[name] = point
    return points


class FaultPlan:
    """Deterministic, seeded decisions for every configured fault point.

    Thread-safe: remote attempts race on HTTP pool threads and service
    handlers race per request, so decisions are serialized by a lock — the
    fired pattern depends only on the seed and each point's opportunity
    order.

    Also implements the service fault-injector protocol
    (``plan(request_index, path) -> action``): request-pinned actions from
    :meth:`at` / :attr:`default` take precedence, then the seeded
    ``service-*`` points decide.
    """

    def __init__(
        self,
        spec: str = "",
        seed: int = 0,
        points: Optional[Dict[str, FaultPoint]] = None,
    ) -> None:
        self.spec = spec
        self.seed = int(seed)
        self.points = dict(points) if points is not None else parse_fault_spec(spec)
        # One independent stream per point: adding or triggering one point
        # never perturbs another point's decisions.
        self._rngs = {
            name: random.Random(f"{self.seed}:{name}") for name in self.points
        }
        self._lock = threading.Lock()
        # Service-injector protocol state (request-pinned actions).
        self.by_index: Dict[int, Optional[Tuple]] = {}
        self.default: Optional[Tuple] = None
        self.log: List[Tuple] = []

    # ------------------------------------------------------------------
    # Core decision procedure
    # ------------------------------------------------------------------
    def fire(self, name: str) -> Optional[FaultPoint]:
        """Consume one opportunity at a fault point; the point if it fired.

        Unconfigured points never fire (and consume nothing), so leaving
        fault injection off costs one dict lookup per failure site.
        """
        point = self.points.get(name)
        if point is None:
            return None
        with self._lock:
            index = point.opportunities
            point.opportunities += 1
            if point.budget is not None and point.fired >= point.budget:
                return None
            if point.at is not None:
                hit = index in point.at
            else:
                hit = self._rngs[name].random() < point.probability
            if hit:
                point.fired += 1
                return point
            return None

    @property
    def total_fired(self) -> int:
        """Total faults injected across every point so far."""
        return sum(point.fired for point in self.points.values())

    def counters(self) -> Dict[str, int]:
        """Per-point fired counts (spec-named keys) plus the total."""
        summary = {
            f"fault[{name}]": point.fired for name, point in sorted(self.points.items())
        }
        summary["faults_injected"] = self.total_fired
        return summary

    # ------------------------------------------------------------------
    # Service fault-injector protocol
    # ------------------------------------------------------------------
    def at(self, index: int, action: Optional[Tuple]) -> "FaultPlan":
        """Pin a service action to one request index (chainable)."""
        self.by_index[index] = action
        return self

    def __call__(self, index: int, path: str) -> Optional[Tuple]:
        action = self.by_index.get(index, self.default)
        if action is None:
            if self.fire("service-error") is not None:
                action = ("error",)
            elif self.fire("service-drop") is not None:
                action = ("drop",)
            else:
                delayed = self.fire("service-delay")
                if delayed is not None:
                    action = ("delay", delayed.delay)
        self.log.append((index, path, action))
        return action


def crash_process() -> None:
    """SIGKILL the current process — the ``worker-crash`` action.

    SIGKILL (not ``sys.exit``) so no cleanup handlers run: the pool sees
    the same abrupt death an OOM kill or power loss produces.
    """
    os.kill(os.getpid(), signal.SIGKILL)


# ---------------------------------------------------------------------------
# Process-global plan.  The CLI configures it once (``--inject-faults``);
# the executor, remote client, cache writers, and checkpoint writer consult
# it through get_fault_plan().  Decisions are made in the coordinating
# process (never inside pool workers), so respawned workers cannot re-draw a
# fresh budget and crash forever.
# ---------------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None


def configure_faults(spec: Optional[str], seed: int = 0) -> Optional[FaultPlan]:
    """Install the process-global fault plan from a spec (None/empty clears)."""
    global _PLAN
    _PLAN = FaultPlan(spec, seed=seed) if spec else None
    return _PLAN


def set_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install an already-built plan (tests compose plans directly)."""
    global _PLAN
    _PLAN = plan


def get_fault_plan() -> Optional[FaultPlan]:
    """The process-global fault plan, or None when injection is off."""
    return _PLAN


def clear_faults() -> None:
    """Remove the process-global fault plan."""
    set_fault_plan(None)
