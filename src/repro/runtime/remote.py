"""Async remote trial execution: fan batches out to evaluation services.

:class:`AsyncRemoteExecutor` implements the :class:`~repro.runtime.executor.
TrialExecutor` interface against a fleet of :mod:`repro.runtime.service`
endpoints instead of local worker processes.  Each batch is split into
chunks, dispatched concurrently over HTTP (asyncio orchestration, blocking
I/O in a small thread pool), and reassembled **in proposal order**, so a
remote run feeds the optimizer the exact same tell sequence — and therefore
reproduces the serial history bit-for-bit — for a fixed seed and batch size.

Failure handling, in increasing order of escalation:

* **Per-request timeout** — a request that exceeds ``timeout`` seconds is
  abandoned (the service may still finish it; the result is discarded).
* **Bounded retry with exponential backoff** — a failed or timed-out chunk
  is retried on the next live endpoint up to ``max_retries`` times, sleeping
  ``backoff * 2^attempt`` (capped) between attempts.
* **Hedged re-dispatch of stragglers** — when no chunk has completed for
  ``hedge_after`` seconds, the still-pending chunks (by definition the
  slowest) are duplicated onto different endpoints, at most ``hedge_k`` per
  stall; the first successful result per chunk wins and the loser is
  discarded, so a straggling service delays but never corrupts the batch.
* **Graceful endpoint blacklisting** — an endpoint failing
  ``blacklist_after`` consecutive requests stops receiving new dispatches.
  If every endpoint ends up blacklisted the executor forgives all of them
  and keeps going (better a slow fleet than a dead search); a chunk whose
  retry budget is exhausted never returns a partial or reordered batch.
* **Local-executor fallback** — when a batch still cannot be evaluated
  remotely (every endpoint burned through its retry and blacklist-
  forgiveness budgets), the executor degrades gracefully: the batch is
  evaluated on an in-process :class:`~repro.runtime.executor
  .SerialExecutor` instead of raising.  Evaluation is deterministic, so
  the history is unchanged; the degradation is visible as a
  ``remote_fallback`` telemetry span and the ``remote_fallbacks`` runtime
  counter.  Construct with ``local_fallback=False`` to get the old
  fail-fast :class:`RemoteExecutionError` behavior.

Per-endpoint request/retry/hedge/latency counters are exposed through
:meth:`AsyncRemoteExecutor.runtime_counters`, which the search loop folds
into :class:`~repro.core.fast.RuntimeStats`.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.trial import TrialEvaluator, TrialMetrics
from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.reporting.serialization import (
    params_to_jsonable,
    search_problem_to_dict,
    simulation_options_to_dict,
    trial_metrics_from_dict,
)
from repro.runtime.cache import problem_fingerprint
from repro.runtime.executor import SerialExecutor, TrialExecutor
from repro.runtime.faults import get_fault_plan
from repro.runtime.telemetry import (
    NULL_SPAN,
    TRACE_CONTEXT_HEADER,
    get_metrics,
    get_tracer,
)

__all__ = [
    "RemoteExecutionError",
    "EndpointStats",
    "AsyncRemoteExecutor",
    "RemoteCostCache",
]


class RemoteExecutionError(RuntimeError):
    """A chunk could not be evaluated by any endpoint within its budgets."""


@dataclass
class EndpointStats:
    """Lifetime counters for one service endpoint."""

    url: str
    requests: int = 0
    successes: int = 0
    failures: int = 0
    retries: int = 0
    hedges: int = 0
    timeouts: int = 0
    latency_seconds: float = 0.0
    consecutive_failures: int = 0
    blacklisted: bool = False

    @property
    def mean_latency_ms(self) -> float:
        """Mean latency of successful requests, in milliseconds."""
        return 1e3 * self.latency_seconds / self.successes if self.successes else 0.0

    def to_counters(self) -> Dict[str, float]:
        """Flat counter dict merged into ``RuntimeStats.endpoint_stats``."""
        return {
            "requests": self.requests,
            "successes": self.successes,
            "failures": self.failures,
            "retries": self.retries,
            "hedges": self.hedges,
            "timeouts": self.timeouts,
            "latency_seconds": self.latency_seconds,
            "blacklisted": 1.0 if self.blacklisted else 0.0,
        }


@dataclass
class _ChunkOutcome:
    """Result of one request attempt sequence for one chunk."""

    index: int
    metrics: List[TrialMetrics] = field(default_factory=list)


class AsyncRemoteExecutor(TrialExecutor):
    """Evaluates trial batches on remote :mod:`repro.runtime.service` fleets.

    Args:
        endpoints: Base URLs of running services (``http://host:port``).
        timeout: Per-request timeout in seconds.
        max_retries: Retry budget per chunk (beyond the first attempt).
        backoff: Initial retry backoff in seconds (doubles per attempt).
        backoff_cap: Upper bound on a single backoff sleep.
        hedge_after: Stall seconds without any chunk completion before the
            pending (slowest) chunks are hedged; ``None`` disables hedging.
        hedge_k: Most chunks duplicated per stall (``None`` = all pending).
        chunk_size: Proposals per request; ``None`` splits each batch evenly
            across the live endpoints (at least 1 per request).
        blacklist_after: Consecutive failures before an endpoint stops
            receiving new dispatches.
        local_fallback: Evaluate a batch locally (serial, in-process) when
            every endpoint exhausted its budgets, instead of raising
            :class:`RemoteExecutionError` (on by default; the history is
            identical either way).
    """

    name = "remote"

    def __init__(
        self,
        endpoints: Sequence[str],
        timeout: float = 60.0,
        max_retries: int = 3,
        backoff: float = 0.25,
        backoff_cap: float = 4.0,
        hedge_after: Optional[float] = 10.0,
        hedge_k: Optional[int] = None,
        chunk_size: Optional[int] = None,
        blacklist_after: int = 3,
        local_fallback: bool = True,
    ) -> None:
        urls = [url.rstrip("/") for url in endpoints if url]
        if not urls:
            raise ValueError("AsyncRemoteExecutor needs at least one endpoint URL")
        self.endpoints = [EndpointStats(url=url) for url in urls]
        self.timeout = float(timeout)
        self.max_retries = max(0, int(max_retries))
        self.backoff = max(0.0, float(backoff))
        self.backoff_cap = max(self.backoff, float(backoff_cap))
        self.hedge_after = hedge_after if hedge_after is None else max(0.01, float(hedge_after))
        self.hedge_k = hedge_k if hedge_k is None else max(1, int(hedge_k))
        self.chunk_size = chunk_size if chunk_size is None else max(1, int(chunk_size))
        self.blacklist_after = max(1, int(blacklist_after))
        self.local_fallback = bool(local_fallback)
        self.batches = 0
        self.blacklist_resets = 0
        self.fallbacks = 0
        self._fallback_executor: Optional[SerialExecutor] = None
        self._rotation = 0
        # Enough threads for a full fan-out plus hedges on every endpoint.
        self._http_pool_size = max(4, 2 * len(self.endpoints))
        self._http_pool = ThreadPoolExecutor(
            max_workers=self._http_pool_size,
            thread_name_prefix="remote-http",
        )

    # ------------------------------------------------------------------
    # Endpoint selection / bookkeeping
    # ------------------------------------------------------------------
    def _live_endpoints(self) -> List[EndpointStats]:
        live = [e for e in self.endpoints if not e.blacklisted]
        if not live:
            # Graceful degradation: forgive everyone rather than deadlock.
            for endpoint in self.endpoints:
                endpoint.blacklisted = False
                endpoint.consecutive_failures = 0
            self.blacklist_resets += 1
            live = list(self.endpoints)
        return live

    def _pick_endpoint(self, avoid: Optional[EndpointStats] = None) -> EndpointStats:
        live = self._live_endpoints()
        if avoid is not None and len(live) > 1:
            live = [e for e in live if e is not avoid]
        choice = live[self._rotation % len(live)]
        self._rotation += 1
        return choice

    def _record_failure(self, endpoint: EndpointStats, timed_out: bool) -> None:
        endpoint.failures += 1
        if timed_out:
            endpoint.timeouts += 1
        endpoint.consecutive_failures += 1
        if endpoint.consecutive_failures >= self.blacklist_after:
            if not endpoint.blacklisted:
                get_metrics().counter(
                    "repro_remote_blacklists_total",
                    "Endpoint transitions into the blacklist.",
                    ("endpoint",),
                ).inc(endpoint=endpoint.url)
            endpoint.blacklisted = True

    def _record_success(self, endpoint: EndpointStats, latency: float) -> None:
        endpoint.successes += 1
        endpoint.latency_seconds += latency
        endpoint.consecutive_failures = 0
        endpoint.blacklisted = False

    # ------------------------------------------------------------------
    # HTTP plumbing (blocking; runs on the thread pool)
    # ------------------------------------------------------------------
    def _post_evaluate(
        self,
        endpoint: EndpointStats,
        payload: dict,
        span_info: Optional[dict] = None,
    ) -> List[TrialMetrics]:
        # This runs on an HTTP pool thread, where contextvars set on the
        # asyncio side are invisible — so the request span is opened here,
        # parented explicitly through the ``parent_header`` captured on the
        # dispatching thread (evaluate_batch), and the same trace context is
        # forwarded to the service so its spans link into this trace.
        tracer = get_tracer()
        span = NULL_SPAN
        headers = {"Content-Type": "application/json"}
        if tracer.enabled:
            info = span_info or {}
            span = tracer.start(
                "remote_request",
                category="remote",
                parent_header=info.get("parent_header"),
                attrs={
                    "endpoint": endpoint.url,
                    "attempt": int(info.get("attempt", 0)),
                    "hedged": bool(info.get("hedged", False)),
                    "num_params": len(payload["params"]),
                    "blacklisted_endpoints": sum(
                        1 for e in self.endpoints if e.blacklisted
                    ),
                },
            )
            if span.record is not None:
                headers[TRACE_CONTEXT_HEADER] = (
                    f"{span.record.trace_id}:{span.record.span_id}"
                )
        status = "error"
        try:
            data = json.dumps(payload).encode()
            request = urllib.request.Request(
                endpoint.url + "/evaluate",
                data=data,
                headers=headers,
                method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    body = json.loads(response.read())
            except urllib.error.HTTPError as error:
                detail = ""
                try:
                    detail = json.loads(error.read()).get("error", "")
                except Exception:
                    pass
                raise RemoteExecutionError(
                    f"{endpoint.url} returned HTTP {error.code}"
                    + (f": {detail}" if detail else "")
                ) from error
            results = body.get("results")
            if not isinstance(results, list) or len(results) != len(payload["params"]):
                raise RemoteExecutionError(
                    f"{endpoint.url} returned {0 if not isinstance(results, list) else len(results)} "
                    f"results for {len(payload['params'])} params"
                )
            if tracer.enabled and body.get("spans"):
                # Server-side spans of this request; ingest() dedups by span
                # id, so a hedge loser delivering the same spans is harmless.
                tracer.ingest(body["spans"])
            status = "ok"
            return [trial_metrics_from_dict(raw) for raw in results]
        finally:
            span.set_attr("status", status)
            tracer.finish(span)
            get_metrics().counter(
                "repro_remote_requests_total",
                "Remote evaluate requests by endpoint and outcome.",
                ("endpoint", "status"),
            ).inc(endpoint=endpoint.url, status=status)

    # ------------------------------------------------------------------
    # Async orchestration
    # ------------------------------------------------------------------
    async def _attempt(
        self,
        endpoint: EndpointStats,
        payload: dict,
        gate: asyncio.Semaphore,
        span_info: Optional[dict] = None,
    ) -> List[TrialMetrics]:
        loop = asyncio.get_running_loop()
        async with gate:
            # The gate capacity equals the HTTP thread-pool size, so the
            # timeout clock below only ever covers a request that actually
            # holds a pool thread — never time spent queued behind one.
            endpoint.requests += 1
            started = time.monotonic()
            return await self._attempt_on_thread(endpoint, payload, loop, started, span_info)

    async def _attempt_on_thread(
        self,
        endpoint: EndpointStats,
        payload: dict,
        loop,
        started: float,
        span_info: Optional[dict] = None,
    ) -> List[TrialMetrics]:
        try:
            metrics = await asyncio.wait_for(
                loop.run_in_executor(
                    self._http_pool, self._post_evaluate, endpoint, payload, span_info
                ),
                timeout=self.timeout + 1.0,  # urllib enforces its own timeout
            )
        except asyncio.TimeoutError:
            self._record_failure(endpoint, timed_out=True)
            raise RemoteExecutionError(f"{endpoint.url} timed out after {self.timeout}s")
        except (OSError, urllib.error.URLError, RemoteExecutionError) as error:
            self._record_failure(
                endpoint, timed_out=isinstance(getattr(error, "reason", None), TimeoutError)
            )
            if isinstance(error, RemoteExecutionError):
                raise
            raise RemoteExecutionError(f"{endpoint.url} failed: {error}") from error
        self._record_success(endpoint, time.monotonic() - started)
        return metrics

    async def _eval_chunk(
        self,
        index: int,
        payload: dict,
        active_endpoint: Dict[int, EndpointStats],
        gate: asyncio.Semaphore,
        avoid: Optional[EndpointStats] = None,
        hedged: bool = False,
        parent_header: Optional[str] = None,
    ) -> _ChunkOutcome:
        delay = self.backoff
        last_error: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            endpoint = self._pick_endpoint(avoid=avoid)
            avoid = None  # only the first (hedge) attempt avoids the straggler
            active_endpoint[index] = endpoint
            if attempt:
                endpoint.retries += 1
                await asyncio.sleep(min(delay, self.backoff_cap))
                delay *= 2
            plan = get_fault_plan()
            if plan is not None:
                # Injected client-side faults (``remote-*`` points): the
                # attempt is consumed without touching the network, so the
                # retry / backoff / blacklist machinery is exercised
                # deterministically against a perfectly healthy service.
                slow = plan.fire("remote-slow")
                if slow is not None:
                    await asyncio.sleep(slow.delay)
                if plan.fire("remote-drop") is not None:
                    endpoint.requests += 1
                    self._record_failure(endpoint, timed_out=False)
                    last_error = RemoteExecutionError(
                        f"injected connection drop for {endpoint.url}"
                    )
                    continue
                if plan.fire("remote-timeout") is not None:
                    endpoint.requests += 1
                    self._record_failure(endpoint, timed_out=True)
                    last_error = RemoteExecutionError(
                        f"injected timeout for {endpoint.url}"
                    )
                    continue
            try:
                metrics = await self._attempt(
                    endpoint,
                    payload,
                    gate,
                    span_info={
                        "attempt": attempt,
                        "hedged": hedged,
                        "parent_header": parent_header,
                    },
                )
                return _ChunkOutcome(index=index, metrics=metrics)
            except RemoteExecutionError as error:
                last_error = error
        raise RemoteExecutionError(
            f"chunk {index} failed after {self.max_retries + 1} attempts: {last_error}"
        )

    async def _run_batch(
        self, payloads: List[dict], parent_header: Optional[str] = None
    ) -> List[List[TrialMetrics]]:
        results: List[Optional[List[TrialMetrics]]] = [None] * len(payloads)
        active_endpoint: Dict[int, EndpointStats] = {}
        gate = asyncio.Semaphore(self._http_pool_size)
        tasks: Dict[asyncio.Task, int] = {
            asyncio.ensure_future(
                self._eval_chunk(
                    i, payloads[i], active_endpoint, gate, parent_header=parent_header
                )
            ): i
            for i in range(len(payloads))
        }
        hedged: set = set()
        failure: Optional[Exception] = None
        while tasks:
            can_hedge = self.hedge_after is not None and any(
                tasks[t] not in hedged for t in tasks
            )
            done, _pending = await asyncio.wait(
                set(tasks),
                return_when=asyncio.FIRST_COMPLETED,
                timeout=self.hedge_after if can_hedge else None,
            )
            if not done:
                # Stall: duplicate the still-pending (slowest) chunks onto
                # other endpoints — first successful result per chunk wins.
                stragglers = sorted({tasks[t] for t in tasks} - hedged)
                if self.hedge_k is not None:
                    stragglers = stragglers[: self.hedge_k]
                for index in stragglers:
                    hedged.add(index)
                    straggling = active_endpoint.get(index)
                    if straggling is not None:
                        straggling.hedges += 1
                    hedge = asyncio.ensure_future(
                        self._eval_chunk(
                            index, payloads[index], active_endpoint, gate,
                            avoid=straggling, hedged=True,
                            parent_header=parent_header,
                        )
                    )
                    tasks[hedge] = index
                continue
            for task in done:
                index = tasks.pop(task)
                try:
                    outcome = task.result()
                except RemoteExecutionError as error:
                    # A hedge sibling may still succeed; fail only when no
                    # task for this chunk remains in flight.
                    if index not in tasks.values() and results[index] is None:
                        failure = failure or error
                    continue
                if results[index] is None:
                    results[index] = outcome.metrics
            if failure is not None:
                break
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if failure is not None:
            raise failure
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise RemoteExecutionError(f"chunks {missing} produced no result")
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # TrialExecutor interface
    # ------------------------------------------------------------------
    def evaluate_batch(
        self,
        evaluator: TrialEvaluator,
        space: DatapathSearchSpace,
        batch: Sequence[ParameterValues],
    ) -> List[TrialMetrics]:
        if not batch:
            return []
        fingerprint = problem_fingerprint(evaluator.problem, evaluator, space)
        base = {
            "fingerprint": fingerprint,
            "problem": search_problem_to_dict(evaluator.problem),
            "options": {
                "num_cores": evaluator.num_cores,
                "simulation_options": simulation_options_to_dict(
                    evaluator.simulation_options
                ),
            },
            # The space's choice lists travel with the request so the service
            # evaluates restricted spaces (e.g. space-mode sweep shards)
            # instead of rejecting their fingerprints against its default.
            "space": [
                [spec.name, [getattr(choice, "value", choice) for choice in spec.choices]]
                for spec in space.specs
            ],
        }
        size = self.chunk_size
        if size is None:
            live = max(1, len(self._live_endpoints()))
            size = max(1, -(-len(batch) // live))  # ceil division
        chunks = [list(batch[i : i + size]) for i in range(0, len(batch), size)]
        payloads = [
            dict(base, params=[params_to_jsonable(p) for p in chunk]) for chunk in chunks
        ]
        # Captured here, on the calling thread, where the search loop's
        # enclosing span is still visible; the HTTP threads parent their
        # request spans to it explicitly.
        parent_header = get_tracer().context_header()
        try:
            chunk_results = asyncio.run(self._run_batch(payloads, parent_header))
        except RemoteExecutionError as error:
            if not self.local_fallback:
                raise
            return self._evaluate_locally(evaluator, space, batch, error)
        self.batches += 1
        merged: List[TrialMetrics] = []
        for piece in chunk_results:
            merged.extend(piece)
        return merged

    def _evaluate_locally(
        self,
        evaluator: TrialEvaluator,
        space: DatapathSearchSpace,
        batch: Sequence[ParameterValues],
        error: RemoteExecutionError,
    ) -> List[TrialMetrics]:
        """Degrade gracefully: evaluate the batch in-process, serially.

        Reached only after the whole escalation ladder failed — retries,
        hedges, and blacklist forgiveness included.  Evaluation is
        deterministic, so the fallback batch is bit-for-bit what the fleet
        would have returned; the degradation shows up as a span and the
        ``remote_fallbacks`` counter, never in the history.
        """
        self.fallbacks += 1
        get_metrics().counter(
            "repro_remote_fallbacks_total",
            "Batches evaluated by the local fallback after remote failure.",
        ).inc()
        with get_tracer().span(
            "remote_fallback",
            category="remote",
            num_params=len(batch),
            reason=str(error)[:200],
        ):
            if self._fallback_executor is None:
                self._fallback_executor = SerialExecutor()
            merged = self._fallback_executor.evaluate_batch(evaluator, space, batch)
        self.batches += 1
        return merged

    def close(self) -> None:
        self._http_pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def runtime_counters(self) -> Dict[str, object]:
        """Counters the search loop folds into ``RuntimeStats``."""
        return {
            "remote_batches": self.batches,
            "remote_requests": sum(e.requests for e in self.endpoints),
            "remote_retries": sum(e.retries for e in self.endpoints),
            "remote_hedges": sum(e.hedges for e in self.endpoints),
            "remote_failures": sum(e.failures for e in self.endpoints),
            "remote_blacklist_resets": self.blacklist_resets,
            "remote_fallbacks": self.fallbacks,
            "endpoint_stats": {e.url: e.to_counters() for e in self.endpoints},
        }


# ---------------------------------------------------------------------------
# Cluster cost-cache client.  The top tier of the shared cost-cache stack
# (see repro.runtime.opcache): a RegionCostCache with this client attached
# batch-prefetches region results from a ``repro serve`` endpoint's
# ``/cache/region`` routes and pushes locally computed ones back, so every
# evaluator, sweep shard, and remote worker pointed at the same service
# shares one fingerprint-keyed, cluster-wide store.  Lookups and stores move
# raw JSON payloads — the exact encoding the persistent stores use — so a
# cluster hit is bit-identical to a private one.
# ---------------------------------------------------------------------------
class RemoteCostCache:
    """Batched HTTP client for the ``/cache/region`` routes of ``repro serve``.

    Args:
        base_url: Service base URL (``http://host:port``).
        fingerprint: Problem fingerprint declared on every request; the
            service rejects malformed fingerprints the way ``/evaluate``
            rejects mismatched ones, so a misconfigured client fails loudly
            instead of silently polluting the store.
        timeout: Per-request timeout in seconds.
        max_retries: Extra attempts after a failed request.
        backoff: Base sleep between attempts (doubles each retry).
    """

    def __init__(
        self,
        base_url: str,
        fingerprint: str,
        timeout: float = 15.0,
        max_retries: int = 1,
        backoff: float = 0.25,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.fingerprint = fingerprint
        self.timeout = float(timeout)
        self.max_retries = max(0, int(max_retries))
        self.backoff = float(backoff)
        self.requests = 0
        self.failures = 0

    # ------------------------------------------------------------------
    def _request(self, op: str, method: str, payload: dict) -> dict:
        """One traced, retried round trip to ``/cache/region``."""
        tracer = get_tracer()
        payload = dict(payload)
        payload["fingerprint"] = self.fingerprint
        data = json.dumps(payload).encode()
        last_error: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            self.requests += 1
            status = "error"
            span = tracer.start(
                "remote_cache",
                category="remote",
                attrs={"endpoint": self.base_url, "op": op, "attempt": attempt},
            ) if tracer.enabled else NULL_SPAN
            headers = {"Content-Type": "application/json"}
            if span.record is not None:
                headers[TRACE_CONTEXT_HEADER] = (
                    f"{span.record.trace_id}:{span.record.span_id}"
                )
            try:
                request = urllib.request.Request(
                    self.base_url + "/cache/region",
                    data=data,
                    headers=headers,
                    method=method,
                )
                try:
                    with urllib.request.urlopen(
                        request, timeout=self.timeout
                    ) as response:
                        body = json.loads(response.read())
                except urllib.error.HTTPError as error:
                    detail = ""
                    try:
                        detail = json.loads(error.read()).get("error", "")
                    except Exception:
                        pass
                    raise RemoteExecutionError(
                        f"{self.base_url} returned HTTP {error.code}"
                        + (f": {detail}" if detail else "")
                    ) from error
                status = "ok"
                return body
            except Exception as error:
                self.failures += 1
                last_error = error
            finally:
                span.set_attr("status", status)
                tracer.finish(span)
                get_metrics().counter(
                    "repro_remote_cache_requests_total",
                    "Cluster cost-cache round trips, by op and outcome.",
                    ("op", "status"),
                ).inc(op=op, status=status)
            if attempt < self.max_retries:
                time.sleep(self.backoff * (2**attempt))
        raise RemoteExecutionError(
            f"cache request to {self.base_url} failed: {last_error}"
        ) from last_error

    # ------------------------------------------------------------------
    def get_many(self, digests: Sequence[str]) -> Dict[str, dict]:
        """Batched lookup; returns only the digests the service holds."""
        digests = list(digests)
        if not digests:
            return {}
        body = self._request("get", "GET", {"digests": digests})
        entries = body.get("entries")
        return dict(entries) if isinstance(entries, dict) else {}

    def put_many(self, entries: Dict[str, dict]) -> int:
        """Batched store; returns how many entries were new to the service."""
        if not entries:
            return 0
        body = self._request("put", "PUT", {"entries": dict(entries)})
        stored = body.get("stored")
        return int(stored) if isinstance(stored, int) else len(entries)
