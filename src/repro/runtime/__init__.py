"""Parallel search runtime: batched execution, trial caching, checkpointing.

This package turns the serial FAST search loop into a scalable execution
engine, layered as:

* :mod:`repro.runtime.executor` — serial / process-pool batch evaluation,
* :mod:`repro.runtime.batching` — batched ask/tell over any optimizer,
* :mod:`repro.runtime.cache` — persistent memoization of trial metrics with
  shard-safe concurrent writers and compaction,
* :mod:`repro.runtime.checkpoint` — periodic save + ``--resume`` support,
* :mod:`repro.runtime.progress` — event bus for live progress reporting,
* :mod:`repro.runtime.sharding` — sharded sweep orchestration: split one
  search into N shards (seed stream or design-space partition) and merge
  their Pareto fronts, histories, and stats into one deduplicated result.

:class:`~repro.core.fast.FASTSearch` accepts instances of these pieces via
its ``executor=``, ``cache=``, ``checkpoint=``, and ``progress=`` arguments;
the ``repro search`` CLI exposes them as ``--workers``, ``--cache``,
``--checkpoint``/``--resume``, and ``--progress``.
"""

from repro.runtime.batching import BatchedOptimizer, proposal_key
from repro.runtime.cache import (
    CacheStats,
    CompactionStats,
    TrialCache,
    compact_cache,
    problem_fingerprint,
)
from repro.runtime.checkpoint import CheckpointState, SearchCheckpoint
from repro.runtime.executor import (
    ParallelExecutor,
    SerialExecutor,
    TrialExecutor,
    make_executor,
)
from repro.runtime.progress import ProgressBus, ProgressPrinter, SearchEvent
from repro.runtime.sharding import (
    ShardResult,
    ShardSpec,
    SweepResult,
    SweepTrial,
    load_shard_result,
    merge_shard_results,
    plan_shards,
    run_shard,
    run_sharded_sweep,
    save_shard_result,
    sweep_result_to_dict,
)

__all__ = [
    "BatchedOptimizer",
    "CacheStats",
    "CheckpointState",
    "CompactionStats",
    "ParallelExecutor",
    "ProgressBus",
    "ProgressPrinter",
    "SearchCheckpoint",
    "SearchEvent",
    "SerialExecutor",
    "ShardResult",
    "ShardSpec",
    "SweepResult",
    "SweepTrial",
    "TrialCache",
    "TrialExecutor",
    "compact_cache",
    "load_shard_result",
    "make_executor",
    "merge_shard_results",
    "plan_shards",
    "problem_fingerprint",
    "proposal_key",
    "run_shard",
    "run_sharded_sweep",
    "save_shard_result",
    "sweep_result_to_dict",
]
