"""Parallel search runtime: batched execution, trial caching, checkpointing.

This package turns the serial FAST search loop into a scalable execution
engine, layered as:

* :mod:`repro.runtime.executor` — serial / process-pool batch evaluation,
* :mod:`repro.runtime.batching` — batched ask/tell over any optimizer,
* :mod:`repro.runtime.cache` — persistent memoization of trial metrics,
* :mod:`repro.runtime.checkpoint` — periodic save + ``--resume`` support,
* :mod:`repro.runtime.progress` — event bus for live progress reporting.

:class:`~repro.core.fast.FASTSearch` accepts instances of these pieces via
its ``executor=``, ``cache=``, ``checkpoint=``, and ``progress=`` arguments;
the ``repro search`` CLI exposes them as ``--workers``, ``--cache``,
``--checkpoint``/``--resume``, and ``--progress``.
"""

from repro.runtime.batching import BatchedOptimizer, proposal_key
from repro.runtime.cache import CacheStats, TrialCache, problem_fingerprint
from repro.runtime.checkpoint import CheckpointState, SearchCheckpoint
from repro.runtime.executor import (
    ParallelExecutor,
    SerialExecutor,
    TrialExecutor,
    make_executor,
)
from repro.runtime.progress import ProgressBus, ProgressPrinter, SearchEvent

__all__ = [
    "BatchedOptimizer",
    "CacheStats",
    "CheckpointState",
    "ParallelExecutor",
    "ProgressBus",
    "ProgressPrinter",
    "SearchCheckpoint",
    "SearchEvent",
    "SerialExecutor",
    "TrialCache",
    "TrialExecutor",
    "make_executor",
    "problem_fingerprint",
    "proposal_key",
]
