"""Parallel search runtime: batched execution, trial caching, checkpointing.

This package turns the serial FAST search loop into a scalable execution
engine, layered as:

* :mod:`repro.runtime.executor` — serial / process-pool batch evaluation,
* :mod:`repro.runtime.batching` — batched ask/tell over any optimizer,
* :mod:`repro.runtime.cache` — persistent memoization of trial metrics with
  shard-safe concurrent writers, compaction, and size-cap auto-compaction,
* :mod:`repro.runtime.opcache` — cross-trial memoization of per-op mapping
  and vector costs plus whole evaluated fusion regions, keyed by problem
  fingerprint + mapping-relevant sub-config, optionally persisted as JSON
  lines (op store / region store) and optionally backed by a cluster cache
  service,
* :mod:`repro.runtime.shmcache` — zero-copy cross-worker cache sharing: the
  pool parent publishes its warm op/region entries into one
  ``multiprocessing.shared_memory`` segment that every worker attaches,
* :mod:`repro.runtime.checkpoint` — periodic save + ``--resume`` support,
* :mod:`repro.runtime.progress` — event bus for live progress reporting,
* :mod:`repro.runtime.service` — stdlib HTTP evaluation service
  (``repro serve``): accepts batches of trial params + a problem
  fingerprint and returns evaluated metrics,
* :mod:`repro.runtime.remote` — :class:`AsyncRemoteExecutor`: fans batches
  out to service endpoints with per-request timeouts, bounded retry with
  exponential backoff, hedged re-dispatch of stragglers, and graceful
  endpoint blacklisting, while preserving proposal order,
* :mod:`repro.runtime.exchange` — live cross-shard best-score exchange
  (file- or service-backed scoreboard) feeding guided optimizers,
* :mod:`repro.runtime.profiling` — per-stage timing harness comparing the
  scalar, vectorized, and op-cached evaluation modes (``repro profile``),
* :mod:`repro.runtime.sharding` — sharded sweep orchestration: split one
  search into N shards (seed stream or design-space partition) and merge
  their Pareto fronts, histories, and stats into one deduplicated result,
* :mod:`repro.runtime.telemetry` — dependency-free span tracer + metrics
  registry: end-to-end spans across search → executor → worker → remote
  service, Chrome-trace / JSONL export (``repro search --trace``,
  ``repro trace``), and Prometheus text exposition (``GET /metrics``),
* :mod:`repro.runtime.faults` — seeded deterministic fault injection
  (``repro search --inject-faults``): worker crashes, remote drops /
  timeouts / slowdowns, service errors, and torn writes, exercising the
  runtime's supervision, fallback, and quarantine paths reproducibly.

:class:`~repro.core.fast.FASTSearch` accepts instances of these pieces via
its ``executor=``, ``cache=``, ``checkpoint=``, and ``progress=`` arguments;
the ``repro search`` CLI exposes them as ``--workers``, ``--cache``,
``--checkpoint``/``--resume``, and ``--progress``.
"""

from repro.runtime.batching import BatchedOptimizer, proposal_key
from repro.runtime.cache import (
    CacheStats,
    CompactionStats,
    TrialCache,
    compact_cache,
    problem_fingerprint,
)
from repro.runtime.checkpoint import CheckpointState, SearchCheckpoint
from repro.runtime.exchange import (
    ExchangeClient,
    FileScoreboard,
    Scoreboard,
    ScoreRecord,
    ServiceScoreboard,
    make_scoreboard,
)
from repro.runtime.executor import (
    EXECUTOR_KINDS,
    ParallelExecutor,
    SerialExecutor,
    TrialExecutor,
    WorkerCrashError,
    executor_kinds,
    make_executor,
    register_executor,
)
from repro.runtime.faults import (
    KNOWN_FAULT_POINTS,
    FaultPlan,
    FaultPoint,
    clear_faults,
    configure_faults,
    get_fault_plan,
    parse_fault_spec,
    set_fault_plan,
)
from repro.runtime.remote import (
    AsyncRemoteExecutor,
    EndpointStats,
    RemoteCostCache,
    RemoteExecutionError,
)
from repro.runtime.opcache import (
    OpCacheStats,
    OpCostCache,
    RegionCacheStats,
    RegionCostCache,
    get_op_cache,
    get_region_cache,
    reset_op_caches,
    reset_region_caches,
)
from repro.runtime.shmcache import (
    SharedCacheView,
    attach_shared_cache,
    publish_shared_cache,
)
from repro.runtime.profiling import (
    PROFILE_MODES,
    ProfileMode,
    ProfileRecord,
    ProfileReport,
    StageStat,
    TraceSummary,
    profile_search,
    summarize_trace,
)
from repro.runtime.progress import ProgressBus, ProgressPrinter, SearchEvent
from repro.runtime.service import EvaluationService, ServiceStats, serve
from repro.runtime.telemetry import (
    MetricsRegistry,
    SpanRecord,
    Tracer,
    apply_telemetry_config,
    chrome_trace_events,
    configure_tracer,
    get_metrics,
    get_tracer,
    load_trace,
    reset_metrics,
    set_tracer,
    telemetry_config,
    write_chrome_trace,
    write_jsonl_trace,
)
from repro.runtime.sharding import (
    ShardResult,
    ShardSpec,
    SweepResult,
    SweepTrial,
    load_shard_result,
    merge_shard_results,
    plan_shards,
    run_shard,
    run_sharded_sweep,
    save_shard_result,
    sweep_result_to_dict,
)

__all__ = [
    "AsyncRemoteExecutor",
    "BatchedOptimizer",
    "CacheStats",
    "CheckpointState",
    "CompactionStats",
    "EXECUTOR_KINDS",
    "EndpointStats",
    "EvaluationService",
    "FaultPlan",
    "FaultPoint",
    "KNOWN_FAULT_POINTS",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "ExchangeClient",
    "FileScoreboard",
    "OpCacheStats",
    "OpCostCache",
    "PROFILE_MODES",
    "ParallelExecutor",
    "ProfileMode",
    "ProfileRecord",
    "ProfileReport",
    "ProgressBus",
    "ProgressPrinter",
    "RegionCacheStats",
    "RegionCostCache",
    "RemoteCostCache",
    "RemoteExecutionError",
    "SharedCacheView",
    "Scoreboard",
    "ScoreRecord",
    "SearchCheckpoint",
    "SearchEvent",
    "SerialExecutor",
    "ServiceScoreboard",
    "ServiceStats",
    "ShardResult",
    "ShardSpec",
    "StageStat",
    "SweepResult",
    "SweepTrial",
    "TraceSummary",
    "TrialCache",
    "TrialExecutor",
    "WorkerCrashError",
    "apply_telemetry_config",
    "attach_shared_cache",
    "chrome_trace_events",
    "clear_faults",
    "compact_cache",
    "configure_faults",
    "configure_tracer",
    "executor_kinds",
    "get_fault_plan",
    "get_metrics",
    "get_tracer",
    "load_trace",
    "get_op_cache",
    "get_region_cache",
    "load_shard_result",
    "make_executor",
    "make_scoreboard",
    "merge_shard_results",
    "parse_fault_spec",
    "plan_shards",
    "problem_fingerprint",
    "profile_search",
    "proposal_key",
    "publish_shared_cache",
    "register_executor",
    "reset_metrics",
    "reset_op_caches",
    "reset_region_caches",
    "run_shard",
    "run_sharded_sweep",
    "save_shard_result",
    "serve",
    "set_fault_plan",
    "set_tracer",
    "summarize_trace",
    "sweep_result_to_dict",
    "telemetry_config",
    "write_chrome_trace",
    "write_jsonl_trace",
]
