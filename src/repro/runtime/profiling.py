"""Profiling harness for the trial-evaluation pipeline.

``repro profile`` (and the ``bench_mapper_throughput`` benchmark) run the
same fixed-seed search under several evaluator configurations — the scalar
reference mapping engine, the per-op vectorized engine, the graph-batched
engine (with and without the region-level result cache), the cross-trial
op-cost cache, the trial-batched engine (including rows for the alternate
cupy / torch array backends, reported as skipped when not installed), and a
warm process-pool executor — and report trials/sec plus
a per-stage wall-clock breakdown (mapper / VPU cost model / fusion ILP /
other) and cache hit counters.  Because every NumPy mode is bit-for-bit
equivalent by design, the harness also verifies that those modes reproduce
the reference trial history and flags any divergence: it doubles as an
end-to-end equivalence check in CI.  (Non-NumPy backend rows are exempt from
the bitwise verdict; their gate is ``repro profile --check-backends``.)  The ``parallel`` row exists so a process-pool
regression (the PR 3 era's cold workers ran at 0.71x of scalar) can never
hide: its throughput and worker-side cache counters land in the same report
as every serial mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.fast import FASTSearch, RuntimeStats
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialEvaluator
from repro.reporting.serialization import trial_metrics_to_dict
from repro.runtime.opcache import reset_op_caches
from repro.runtime.telemetry import SpanRecord
from repro.simulator.engine import SimulationOptions

__all__ = [
    "ProfileMode",
    "ProfileRecord",
    "ProfileReport",
    "PROFILE_MODES",
    "StageStat",
    "TraceSummary",
    "profile_search",
    "summarize_trace",
]


@dataclass(frozen=True)
class ProfileMode:
    """One evaluator configuration to profile."""

    name: str
    vectorized_mapper: bool
    op_cache: bool
    graph_batched: bool = False
    region_cache: bool = False
    trial_batched: bool = False
    backend: str = "numpy"
    workers: int = 1
    #: Publish the parent's warm cache entries into a shared-memory segment
    #: that pool workers attach zero-copy (parallel modes only).  Off by
    #: default so ``parallel-2`` keeps its historical private-warm meaning
    #: and ``parallel-2+shared-cache`` measures the shared tier against it.
    shared_cache: bool = False


#: The standard comparison ladder, slowest first; the first mode is the
#: reference whose history every other mode must reproduce bit-for-bit.
#: ``trial-batched`` stacks all pending ops of a whole proposal batch into
#: one mapping pass; the ``+cupy`` / ``+torch`` rows rerun it on the
#: alternate array backends (reported as *skipped* when the library is not
#: installed, and excluded from the bitwise history verdict because float
#: kernels on other hardware are only tolerance-equal, not bit-equal).
#: ``parallel-2`` runs the default fast path on a 2-worker warm process
#: pool — the row that keeps executor regressions visible — and
#: ``parallel-2+shared-cache`` reruns it with the parent's warm cache
#: entries published to a shared-memory segment the workers attach
#: zero-copy, so the shared tier is always measured against the private
#: warm path it must not lose to.
PROFILE_MODES = (
    ProfileMode("scalar", vectorized_mapper=False, op_cache=False),
    ProfileMode("vectorized", vectorized_mapper=True, op_cache=False),
    ProfileMode("graph-batched", vectorized_mapper=True, op_cache=False, graph_batched=True),
    ProfileMode(
        "graph-batched+region-cache",
        vectorized_mapper=True,
        op_cache=False,
        graph_batched=True,
        region_cache=True,
    ),
    ProfileMode(
        "graph-batched+op-cache",
        vectorized_mapper=True,
        op_cache=True,
        graph_batched=True,
    ),
    ProfileMode(
        "trial-batched",
        vectorized_mapper=True,
        op_cache=True,
        graph_batched=True,
        region_cache=True,
        trial_batched=True,
    ),
    ProfileMode(
        "trial-batched+cupy",
        vectorized_mapper=True,
        op_cache=True,
        graph_batched=True,
        region_cache=True,
        trial_batched=True,
        backend="cupy",
    ),
    ProfileMode(
        "trial-batched+torch",
        vectorized_mapper=True,
        op_cache=True,
        graph_batched=True,
        region_cache=True,
        trial_batched=True,
        backend="torch",
    ),
    ProfileMode(
        "parallel-2",
        vectorized_mapper=True,
        op_cache=True,
        graph_batched=True,
        region_cache=True,
        workers=2,
    ),
    ProfileMode(
        "parallel-2+shared-cache",
        vectorized_mapper=True,
        op_cache=True,
        graph_batched=True,
        region_cache=True,
        workers=2,
        shared_cache=True,
    ),
)


@dataclass
class ProfileRecord:
    """Measured outcome of one profiled mode."""

    mode: str
    trials: int
    elapsed_seconds: float
    trials_per_second: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    op_cache_hits: int = 0
    op_cache_misses: int = 0
    op_cache_hit_rate: float = 0.0
    op_cache_disk_hits: int = 0
    region_cache_hits: int = 0
    region_cache_misses: int = 0
    region_cache_hit_rate: float = 0.0
    region_cache_disk_hits: int = 0
    shared_cache_attached: int = 0
    shared_cache_entries: int = 0
    workers: int = 1
    engine: str = ""
    skipped: bool = False
    skip_reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form of this record."""
        return {
            "mode": self.mode,
            "trials": self.trials,
            "elapsed_seconds": self.elapsed_seconds,
            "trials_per_second": self.trials_per_second,
            "stage_seconds": dict(self.stage_seconds),
            "op_cache_hits": self.op_cache_hits,
            "op_cache_misses": self.op_cache_misses,
            "op_cache_hit_rate": self.op_cache_hit_rate,
            "op_cache_disk_hits": self.op_cache_disk_hits,
            "region_cache_hits": self.region_cache_hits,
            "region_cache_misses": self.region_cache_misses,
            "region_cache_hit_rate": self.region_cache_hit_rate,
            "region_cache_disk_hits": self.region_cache_disk_hits,
            "shared_cache_attached": self.shared_cache_attached,
            "shared_cache_entries": self.shared_cache_entries,
            "workers": self.workers,
            "engine": self.engine,
            "skipped": self.skipped,
            "skip_reason": self.skip_reason,
        }


@dataclass
class ProfileReport:
    """All profiled modes plus the cross-mode equivalence verdict."""

    workloads: List[str]
    trials: int
    batch_size: int
    optimizer: str
    seed: int
    records: List[ProfileRecord] = field(default_factory=list)
    histories_match: bool = True

    def record(self, mode: str) -> ProfileRecord:
        """Look up a mode's record by name."""
        for record in self.records:
            if record.mode == mode:
                return record
        raise KeyError(f"no profiled mode named {mode!r}")

    def speedup(self, mode: str, baseline: str = "scalar") -> float:
        """Throughput of ``mode`` relative to ``baseline``."""
        base = self.record(baseline).trials_per_second
        return self.record(mode).trials_per_second / base if base > 0 else float("inf")

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form of the whole report."""
        return {
            "workloads": list(self.workloads),
            "trials": self.trials,
            "batch_size": self.batch_size,
            "optimizer": self.optimizer,
            "seed": self.seed,
            "histories_match": self.histories_match,
            "records": [record.to_dict() for record in self.records],
            "speedups_vs_scalar": {
                record.mode: self.speedup(record.mode)
                for record in self.records
                if not record.skipped
            },
        }


@dataclass
class StageStat:
    """Aggregated timing of one span name across a trace."""

    name: str
    category: str
    count: int
    total_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "category": self.category,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
        }


@dataclass
class TraceSummary:
    """Stage-timeline digest of a recorded trace (``repro trace``).

    ``coverage`` is the fraction of total trial wall time accounted for by
    the trial spans' direct children — the acceptance gauge that the spans
    actually explain where trial time goes instead of leaving dark matter.
    """

    num_spans: int
    num_trials: int
    trial_seconds: float
    coverage: float
    stages: List[StageStat] = field(default_factory=list)
    slowest: List[SpanRecord] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_spans": self.num_spans,
            "num_trials": self.num_trials,
            "trial_seconds": self.trial_seconds,
            "coverage": self.coverage,
            "stages": [stage.to_dict() for stage in self.stages],
            "slowest": [span.to_dict() for span in self.slowest],
        }


def summarize_trace(records: Sequence[SpanRecord], top_k: int = 10) -> TraceSummary:
    """Aggregate a span list into the per-stage timeline ``repro trace`` prints.

    Groups spans by name (count + total/mean seconds, sorted by total time
    descending), finds the ``trial`` spans, computes the direct-child
    coverage of trial wall time, and keeps the ``top_k`` slowest individual
    spans.  Works on the output of :func:`repro.runtime.telemetry.load_trace`
    for both Chrome-trace and JSONL files.
    """
    records = list(records)
    totals: Dict[str, StageStat] = {}
    for record in records:
        stat = totals.get(record.name)
        if stat is None:
            totals[record.name] = StageStat(
                name=record.name,
                category=record.category,
                count=1,
                total_seconds=record.duration,
            )
        else:
            stat.count += 1
            stat.total_seconds += record.duration

    trials = [r for r in records if r.name == "trial"]
    trial_ids = {r.span_id for r in trials}
    trial_seconds = sum(r.duration for r in trials)
    child_seconds = sum(
        r.duration for r in records if r.parent_id in trial_ids
    )
    coverage = child_seconds / trial_seconds if trial_seconds > 0 else 0.0

    stages = sorted(totals.values(), key=lambda s: (-s.total_seconds, s.name))
    slowest = sorted(records, key=lambda r: -r.duration)[: max(0, int(top_k))]
    return TraceSummary(
        num_spans=len(records),
        num_trials=len(trials),
        trial_seconds=trial_seconds,
        coverage=min(1.0, coverage),
        stages=stages,
        slowest=slowest,
    )


def _mode_options(mode: ProfileMode) -> SimulationOptions:
    return SimulationOptions(
        fusion_solver="greedy",
        vectorized_mapper=mode.vectorized_mapper,
        graph_batched_mapper=mode.graph_batched,
        trial_batched_mapper=mode.trial_batched,
        backend=mode.backend,
        region_cache_enabled=mode.region_cache,
        op_cache_enabled=mode.op_cache,
    )


def profile_search(
    workloads: Sequence[str],
    trials: int = 48,
    optimizer: str = "lcs",
    seed: int = 0,
    batch_size: int = 8,
    objective: ObjectiveKind = ObjectiveKind.PERF_PER_TDP,
    modes: Sequence[ProfileMode] = PROFILE_MODES,
    warm_op_cache: bool = False,
) -> ProfileReport:
    """Run the same fixed-seed search under every mode and time each stage.

    A throwaway warm-up pass populates the process-level workload-graph and
    compiled-graph caches first, so no mode is charged for one-time graph
    building and ordering does not bias the comparison.  The op and region
    caches are reset before each mode (cold by default; ``warm_op_cache=True``
    measures the steady-state regime of sweeps and repeated searches by
    running each cache-enabled or parallel mode twice and timing the second
    run — parallel pools inherit the warm parent caches through fork or load
    them via the warm-start initializer).

    Every mode must reproduce the first mode's trial history bit-for-bit;
    ``histories_match`` records the verdict.
    """
    from repro.runtime.executor import ParallelExecutor

    modes = list(modes)
    if not modes:
        raise ValueError("at least one profile mode is required")
    report = ProfileReport(
        workloads=list(workloads),
        trials=int(trials),
        batch_size=int(batch_size),
        optimizer=optimizer,
        seed=int(seed),
    )

    from repro.hardware.search_space import DatapathSearchSpace

    def run_once(mode: ProfileMode, problem, evaluator, space, executor=None):
        # A fresh FASTSearch per run (fresh optimizer state, same seed) over
        # a shared evaluator/space/executor: reruns retrace the identical
        # trajectory, and a parallel executor keeps its warm worker pool
        # alive between the cold and the timed run.
        search = FASTSearch(
            problem, optimizer=optimizer, space=space, seed=seed,
            evaluator=evaluator, executor=executor,
        )
        return search.run(num_trials=trials, batch_size=batch_size)

    def mode_fixture(mode: ProfileMode):
        problem = SearchProblem(list(workloads), objective)
        evaluator = TrialEvaluator(problem, simulation_options=_mode_options(mode))
        return problem, evaluator, DatapathSearchSpace()

    # Warm-up: populate graph/compile caches shared by every mode.
    reset_op_caches()
    run_once(modes[0], *mode_fixture(modes[0]))

    from repro.mapping.backend import backend_available
    from repro.simulator.enginespec import EngineSpec

    reference_history = None
    for mode in modes:
        if mode.backend != "numpy" and not backend_available(mode.backend):
            # Absent GPU/tensor libraries skip their row instead of failing
            # the whole ladder — the report keeps the slot visible.
            report.records.append(
                ProfileRecord(
                    mode=mode.name,
                    trials=0,
                    elapsed_seconds=0.0,
                    trials_per_second=0.0,
                    workers=mode.workers,
                    engine=str(
                        EngineSpec.from_simulation_options(_mode_options(mode))
                    ),
                    skipped=True,
                    skip_reason=f"backend {mode.backend!r} not installed",
                )
            )
            continue
        reset_op_caches()
        fixture = mode_fixture(mode)
        executor = (
            ParallelExecutor(num_workers=mode.workers, shared_cache=mode.shared_cache)
            if mode.workers > 1
            else None
        )
        try:
            # For the shared-cache mode the warm-up pass runs serially: a
            # parallel warm-up leaves the *parent* caches cold (workers do
            # all the evaluating), so the pool build would have nothing to
            # publish.  Warming the parent first means the timed run's pool
            # publishes a populated segment and every worker starts by
            # attaching it — the respawn scenario the shared tier exists for.
            warm_parent_serially = (
                warm_op_cache and mode.shared_cache and executor is not None
            )
            result = run_once(
                mode, *fixture, executor=None if warm_parent_serially else executor
            )
            warmable = mode.op_cache or mode.region_cache or mode.workers > 1
            if warmable and warm_op_cache:
                result = run_once(mode, *fixture, executor=executor)  # steady state
        finally:
            if executor is not None:
                executor.close()
        stats: RuntimeStats = result.runtime
        record = ProfileRecord(
            mode=mode.name,
            trials=result.num_trials,
            elapsed_seconds=stats.elapsed_seconds,
            trials_per_second=stats.trials_per_second,
            stage_seconds={
                "mapper": stats.mapper_seconds,
                "vector": stats.vector_seconds,
                "fusion": stats.fusion_seconds,
                "evaluate": stats.eval_seconds,
                "other": max(
                    0.0,
                    stats.eval_seconds
                    - stats.mapper_seconds
                    - stats.vector_seconds
                    - stats.fusion_seconds,
                ),
            },
            op_cache_hits=stats.op_cache_hits,
            op_cache_misses=stats.op_cache_misses,
            op_cache_hit_rate=stats.op_cache_hit_rate,
            op_cache_disk_hits=stats.op_cache_disk_hits,
            region_cache_hits=stats.region_cache_hits,
            region_cache_misses=stats.region_cache_misses,
            region_cache_hit_rate=stats.region_cache_hit_rate,
            region_cache_disk_hits=stats.region_cache_disk_hits,
            shared_cache_attached=stats.shared_cache_attached,
            shared_cache_entries=stats.shared_cache_entries,
            workers=mode.workers,
            engine=stats.engine
            or str(EngineSpec.from_simulation_options(_mode_options(mode))),
        )
        report.records.append(record)
        if mode.backend != "numpy":
            # Float-divergent backends are tolerance-equal, not bit-equal;
            # their equivalence gate is assert_backend_equivalence /
            # ``repro profile --check-backends``, not this bitwise verdict.
            continue
        history = [trial_metrics_to_dict(m) for m in result.history]
        if reference_history is None:
            reference_history = history
        elif history != reference_history:
            report.histories_match = False
    reset_op_caches()
    return report
