"""Zero-copy cross-worker sharing of cost-cache entries.

The middle tier of the shared cost-cache stack
(:mod:`repro.runtime.opcache`): a parent process about to start (or
restart) a worker pool serializes its warm op / region cost entries into
**one** ``multiprocessing.shared_memory`` segment — a flat blob of
JSON-encoded payloads plus a small digest -> (offset, length) index — and
ships only the index through the pool initializer.  Workers *attach* the
segment by name instead of copying it: the blob is mapped, not duplicated,
so a 100 MB warm cache costs 100 MB once per host rather than once per
worker, and a freshly spawned or crash-respawned worker serves its first
batch from cache with zero re-warm compute.  Individual entries materialize
lazily — only the digests a worker actually looks up are ever decoded.

Payloads cross the segment in the exact JSON encoding the persistent stores
use, so a shared-tier hit is bit-identical to a private one and search
histories cannot depend on which tier answered.  Everything here is best
effort: any failure to publish or attach (no /dev/shm, exhausted segment
space, a platform without the module) falls back to the private warm path —
correctness never depends on the segment existing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "SharedCacheIndex",
    "SharedCachePublisher",
    "SharedCacheView",
    "attach_shared_cache",
    "publish_shared_cache",
]


@dataclass
class SharedCacheIndex:
    """Picklable map from cache digests to segment offsets.

    ``segment`` names the shared-memory block; ``op_index`` /
    ``region_index`` map payload digests to ``(offset, length)`` byte spans
    inside it.  This is the only object shipped to workers — a few dozen
    bytes per entry, versus the payloads themselves which stay in the
    mapped segment.
    """

    segment: str
    size: int
    op_index: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    region_index: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def num_entries(self) -> int:
        return len(self.op_index) + len(self.region_index)


def _raw_items(cache) -> Dict[str, dict]:
    """Digest -> raw payload dict for every entry a cache can serve locally.

    Store-backed entries are already encoded in the raw index; memory-only
    entries (the common warm-parent case) are encoded here.  Encoding
    failures skip the entry — publishing is best effort.
    """
    if cache is None:
        return {}
    items: Dict[str, dict] = dict(cache._disk_index)
    for key, value in cache._memory.items():
        digest = cache.digest(key)
        if digest in items:
            continue
        try:
            items[digest] = cache._encode(value)
        except Exception:
            continue
    return items


class SharedCachePublisher:
    """Owns one published segment; unlink through :meth:`close`.

    The parent keeps the publisher alive for the lifetime of the worker
    pool.  Closing unlinks the segment; workers that already attached keep
    their mappings (POSIX shared memory is reference counted), so teardown
    can never crash an in-flight batch.
    """

    def __init__(self, shm, index: SharedCacheIndex) -> None:
        self._shm = shm
        self.index = index

    def close(self) -> None:
        try:
            self._shm.close()
            self._shm.unlink()
        except Exception:
            pass  # already unlinked / platform cleanup raced us


def publish_shared_cache(op_cache, region_cache) -> Optional[SharedCachePublisher]:
    """Publish both caches' entries into one shared segment (best effort).

    Returns None when there is nothing to share or shared memory is
    unavailable; callers treat that as "use the private warm path".
    """
    op_items = _raw_items(op_cache)
    region_items = _raw_items(region_cache)
    if not op_items and not region_items:
        return None
    try:
        from multiprocessing import shared_memory
    except ImportError:
        return None

    chunks = []
    op_index: Dict[str, Tuple[int, int]] = {}
    region_index: Dict[str, Tuple[int, int]] = {}
    offset = 0
    for table, items in ((op_index, op_items), (region_index, region_items)):
        for digest, raw in items.items():
            encoded = json.dumps(raw).encode()
            table[digest] = (offset, len(encoded))
            chunks.append(encoded)
            offset += len(encoded)
    blob = b"".join(chunks)
    if not blob:
        return None
    try:
        shm = shared_memory.SharedMemory(create=True, size=len(blob))
        shm.buf[: len(blob)] = blob
    except Exception:
        return None  # no /dev/shm, size limits, ... — private path still works
    index = SharedCacheIndex(
        segment=shm.name,
        size=len(blob),
        op_index=op_index,
        region_index=region_index,
    )
    return SharedCachePublisher(shm, index)


class SharedCacheView:
    """A worker's read-only attachment to a published segment.

    ``op_lookup`` / ``region_lookup`` have the ``digest -> raw dict | None``
    shape :meth:`repro.runtime.opcache.CostCacheBase.attach_shared` expects.
    Only the byte span of a requested entry is ever copied out of the
    mapping (to feed the JSON decoder); the segment itself is never
    duplicated.
    """

    def __init__(self, shm, index: SharedCacheIndex) -> None:
        self._shm = shm
        self._index = index

    def _lookup(self, table: Dict[str, Tuple[int, int]], digest: str) -> Optional[dict]:
        span = table.get(digest)
        if span is None:
            return None
        offset, length = span
        try:
            return json.loads(bytes(self._shm.buf[offset : offset + length]))
        except Exception:
            return None  # truncated / unmapped segment: treat as a miss

    def op_lookup(self, digest: str) -> Optional[dict]:
        return self._lookup(self._index.op_index, digest)

    def region_lookup(self, digest: str) -> Optional[dict]:
        return self._lookup(self._index.region_index, digest)


def attach_shared_cache(index: Optional[SharedCacheIndex]) -> Optional[SharedCacheView]:
    """Attach to a parent-published segment; None when unavailable.

    The attachment must not reach the ``resource_tracker``: the publisher
    owns the segment's lifetime, and on Python versions that track
    attachments (bpo-38119) a tracked attach would either destroy the
    segment out from under sibling workers at exit or — under fork, where
    all processes share one tracker — send duplicate UNREGISTERs that the
    tracker logs as KeyError tracebacks.  Registration is suppressed for
    the duration of the attach instead of undone after it.
    """
    if index is None:
        return None
    try:
        from multiprocessing import shared_memory

        try:
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register

            def _skip_shm_register(name, rtype):
                if rtype != "shared_memory":
                    original_register(name, rtype)

            resource_tracker.register = _skip_shm_register
        except Exception:
            resource_tracker = None  # tracker variants differ across versions
            original_register = None
        try:
            shm = shared_memory.SharedMemory(name=index.segment)
        finally:
            if original_register is not None:
                resource_tracker.register = original_register
    except Exception:
        return None
    return SharedCacheView(shm, index)
