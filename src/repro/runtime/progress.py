"""Progress events for the search runtime.

The runtime emits a stream of :class:`SearchEvent` records — search started,
batch dispatched, trial finished, cache hit, new best-so-far, checkpoint
saved — through a :class:`ProgressBus`.  Subscribers are plain callables, so
the CLI can attach a :class:`ProgressPrinter` for live progress lines while
tests attach a list-appending lambda; the search loop itself never knows who
is listening.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TextIO

__all__ = [
    "SEARCH_STARTED",
    "SEARCH_RESUMED",
    "SEARCH_FINISHED",
    "BATCH_STARTED",
    "TRIAL_FINISHED",
    "CACHE_HIT",
    "BEST_IMPROVED",
    "CHECKPOINT_SAVED",
    "EXTERNAL_BEST",
    "SearchEvent",
    "ProgressBus",
    "ProgressPrinter",
]

SEARCH_STARTED = "search_started"
SEARCH_RESUMED = "search_resumed"
SEARCH_FINISHED = "search_finished"
BATCH_STARTED = "batch_started"
TRIAL_FINISHED = "trial_finished"
CACHE_HIT = "cache_hit"
BEST_IMPROVED = "best_improved"
CHECKPOINT_SAVED = "checkpoint_saved"
EXTERNAL_BEST = "external_best"


@dataclass(frozen=True)
class SearchEvent:
    """One runtime event.

    Attributes:
        kind: Event kind (one of the module-level constants).
        trial_index: Trial the event refers to, or ``-1`` for run-level events.
        payload: Free-form event data (scores, batch sizes, paths, ...).
    """

    kind: str
    trial_index: int = -1
    payload: Dict[str, object] = field(default_factory=dict)


class ProgressBus:
    """Tiny synchronous publish/subscribe bus for search events.

    Subscriber exceptions are swallowed (and recorded on :attr:`errors`) so a
    broken progress hook can never abort a long search.
    """

    def __init__(self) -> None:
        self._subscribers: List[Callable[[SearchEvent], None]] = []
        self.errors: List[Exception] = []

    def subscribe(self, subscriber: Callable[[SearchEvent], None]) -> Callable[[SearchEvent], None]:
        """Register a subscriber; returns it so the call can be used inline."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Callable[[SearchEvent], None]) -> None:
        """Remove a previously registered subscriber (no-op if absent)."""
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)

    def emit(self, kind: str, trial_index: int = -1, **payload: object) -> SearchEvent:
        """Build an event and deliver it to every subscriber."""
        event = SearchEvent(kind=kind, trial_index=trial_index, payload=payload)
        for subscriber in list(self._subscribers):
            try:
                subscriber(event)
            except Exception as error:  # progress must never kill the search
                self.errors.append(error)
        return event


class ProgressPrinter:
    """Formats search events as single-line progress output.

    Attach to a :class:`ProgressBus` with ``bus.subscribe(ProgressPrinter())``.
    ``every`` thins per-trial lines (1 = every trial); run-level events and
    best-so-far improvements are always printed.
    """

    def __init__(self, stream: Optional[TextIO] = None, every: int = 1) -> None:
        self.stream = stream or sys.stdout
        self.every = max(1, every)
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    def __call__(self, event: SearchEvent) -> None:
        line = self._format(event)
        if line is not None:
            print(line, file=self.stream, flush=True)

    def _format(self, event: SearchEvent) -> Optional[str]:
        payload = event.payload
        if event.kind == SEARCH_STARTED:
            self._started_at = time.monotonic()
            return (
                f"search: {payload.get('num_trials', '?')} trials, "
                f"batch={payload.get('batch_size', '?')}, "
                f"executor={payload.get('executor', 'serial')}"
            )
        if event.kind == SEARCH_RESUMED:
            return f"resume: {payload.get('num_completed', 0)} trials restored from checkpoint"
        if event.kind == TRIAL_FINISHED:
            if (event.trial_index + 1) % self.every:
                return None
            score = payload.get("score", 0.0)
            best = payload.get("best_score", float("nan"))
            status = "ok" if payload.get("feasible") else "infeasible"
            # Live op/region cache hit rates, when the search loop knows
            # them: long sweeps show cache warm-up as it happens instead of
            # only in the final summary.
            caches = ""
            op_rate = payload.get("op_cache_hit_rate")
            if op_rate is not None:
                caches += f" oc={100 * op_rate:.0f}%"
            region_rate = payload.get("region_cache_hit_rate")
            if region_rate is not None:
                caches += f" rc={100 * region_rate:.0f}%"
            return (
                f"[trial {event.trial_index + 1}] {status} "
                f"score={score:.4g} best={best:.4g}{caches}"
            )
        if event.kind == CACHE_HIT:
            return f"[trial {event.trial_index + 1}] cache hit"
        if event.kind == BEST_IMPROVED:
            return f"[trial {event.trial_index + 1}] new best score={payload.get('score', 0.0):.4g}"
        if event.kind == CHECKPOINT_SAVED:
            return f"checkpoint: {payload.get('num_completed', '?')} trials -> {payload.get('path', '')}"
        if event.kind == EXTERNAL_BEST:
            return (
                f"[trial {event.trial_index + 1}] external best from shard "
                f"{payload.get('shard', '?')}: score={payload.get('score', 0.0):.4g}"
            )
        if event.kind == SEARCH_FINISHED:
            elapsed = (
                time.monotonic() - self._started_at if self._started_at is not None else None
            )
            rate = ""
            if elapsed and payload.get("num_trials"):
                rate = f" ({payload['num_trials'] / elapsed:.1f} trials/s)"
            op_hits = payload.get("op_cache_hits", 0)
            op_part = f"{op_hits} op-cache hits, " if op_hits else ""
            remote_part = ""
            if payload.get("remote_retries") or payload.get("remote_hedges"):
                remote_part = (
                    f"{payload.get('remote_retries', 0)} retries, "
                    f"{payload.get('remote_hedges', 0)} hedges, "
                )
            return (
                f"done: {payload.get('num_trials', '?')} trials, "
                f"{payload.get('cache_hits', 0)} cache hits, "
                f"{op_part}"
                f"{remote_part}"
                f"best={payload.get('best_score', float('nan')):.4g}{rate}"
            )
        return None
