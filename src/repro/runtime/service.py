"""Stdlib-only HTTP simulator evaluation service (``repro serve``).

The service turns one host into a remote trial evaluator: it accepts batches
of search-space parameter assignments plus a *problem fingerprint* over HTTP
and returns the evaluated :class:`~repro.core.trial.TrialMetrics`, letting
:class:`~repro.runtime.remote.AsyncRemoteExecutor` fan a search's batches out
to a fleet of such services instead of local worker processes.

Wire protocol (all bodies are JSON):

* ``POST /evaluate`` — request ``{"fingerprint", "problem", "options",
  "params": [...]}`` where ``problem`` / ``options`` are the
  :func:`~repro.reporting.serialization.search_problem_to_dict` /
  :func:`~repro.reporting.serialization.simulation_options_to_dict` forms and
  ``params`` is a list of jsonable parameter assignments.  The service
  rebuilds the evaluator, recomputes the fingerprint from what it rebuilt,
  and refuses (HTTP 409) on a mismatch — so a client can never silently mix
  histories from services running a different problem, space, or simulator
  configuration.  Response: ``{"fingerprint", "results": [metrics...]}`` in
  request order.
* ``GET /cache/region`` / ``PUT /cache/region`` — the cluster tier of the
  shared cost-cache (see :mod:`repro.runtime.opcache`): GET takes
  ``{"fingerprint", "digests": [...]}`` and returns the known subset as
  ``{"entries": {digest: raw, ...}}``; PUT takes ``{"fingerprint",
  "entries": {...}}`` and answers ``{"stored": n}``.  Region digests are
  self-authenticating (each hashes the graph fingerprint plus the full
  mapping-relevant configuration), so the declared fingerprint is checked
  for form (16 lowercase hex digits, HTTP 400 otherwise) rather than
  recomputed; entries are served from — and persisted to, when
  ``--engine region_store=`` is set — the service's process-local
  :class:`~repro.runtime.opcache.RegionCostCache`.
* ``GET /scoreboard`` / ``POST /scoreboard`` — the service-backed
  cross-shard best-score exchange (see :mod:`repro.runtime.exchange`):
  shards POST ``{"shard_id", "objective", "score", "params", "trials"}``
  records and GET the per-shard best map back.
* ``GET /health`` — liveness plus request/trial counters, uptime, and
  per-route request counts.
* ``GET /metrics`` — Prometheus text exposition of the service's
  request/trial/cache/evaluation metrics (see
  :mod:`repro.runtime.telemetry`), ready for scraping.

Every request is wrapped in a ``serve_request`` telemetry span; when the
client sends an ``X-Repro-Trace-Context`` header (the remote executor does,
whenever its own tracing is on), the span is parented to the client's
request span and returned in the ``/evaluate`` response body, so one trace
shows the request on both sides of the wire.  Access logs are routed
through the ``repro.runtime.service`` logger at DEBUG instead of being
swallowed (``repro serve --verbose`` turns them on).

Evaluation is deterministic, so any mix of services and local executors
produces bit-for-bit identical metrics for the same parameters; ordering is
the *client's* responsibility (the remote executor reassembles responses in
proposal order).

The server is intentionally stdlib-only (:mod:`http.server`): it needs no
dependencies beyond what the library already uses, and a
:class:`ThreadingHTTPServer` is enough because trial evaluation — the actual
work — runs under an internal executor guarded by a lock (``--workers N``
parallelizes *within* a batch via the process-pool executor).
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.core.trial import TrialEvaluator
from repro.hardware.search_space import DatapathSearchSpace
from repro.reporting.serialization import (
    params_from_jsonable,
    search_problem_from_dict,
    simulation_options_from_dict,
    trial_metrics_to_dict,
)
from repro.runtime.cache import problem_fingerprint
from repro.runtime.exchange import ScoreRecord
from repro.runtime.executor import TrialExecutor, make_executor
from repro.runtime.telemetry import (
    TRACE_CONTEXT_HEADER,
    MetricsRegistry,
    Tracer,
)

__all__ = ["ServiceStats", "EvaluationService", "serve"]

# Access logs and handler diagnostics.  DEBUG by default so tests and smoke
# runs stay quiet; ``repro serve --verbose`` raises the level to show them.
logger = logging.getLogger("repro.runtime.service")

#: Declared problem fingerprints are 16 lowercase hex digits (see
#: :func:`repro.runtime.cache.problem_fingerprint`).  Cache routes check the
#: form only: region digests are self-authenticating, but a malformed
#: fingerprint means a confused client and gets a 400 instead of silence.
_FINGERPRINT_RE = re.compile(r"[0-9a-f]{16}")


@dataclass
class ServiceStats:
    """Counters one service accumulates over its lifetime."""

    requests: int = 0
    batches: int = 0
    trials_evaluated: int = 0
    fingerprint_rejections: int = 0
    errors: int = 0
    region_cache_gets: int = 0
    region_cache_puts: int = 0
    region_entries_served: int = 0
    region_entries_stored: int = 0


def space_from_payload(payload: object) -> DatapathSearchSpace:
    """Rebuild a client's search space from its ``space`` wire form.

    The wire form is ``[[name, [value, ...]], ...]`` — the same shape the
    problem fingerprint hashes.  Starting from the default (full Table 3)
    space, each listed axis keeps only the named choices, matched by raw
    value (enums by their ``.value``).  This covers every space a sharded
    sweep produces (restrictions of the default space); a choice or axis the
    default space does not know raises ``ValueError``.
    """
    import copy
    import dataclasses as _dc

    space = DatapathSearchSpace()
    if payload is None:
        return space
    spec_by_name = {spec.name: spec for spec in space.specs}
    restricted = {}
    for name, values in payload:
        spec = spec_by_name.get(name)
        if spec is None:
            raise ValueError(f"unknown search-space axis {name!r}")
        by_raw = {getattr(choice, "value", choice): choice for choice in spec.choices}
        try:
            choices = tuple(by_raw[value] for value in values)
        except KeyError as error:
            raise ValueError(
                f"axis {name!r} has no choice {error.args[0]!r} in the default space"
            ) from None
        restricted[name] = choices
    rebuilt = copy.copy(space)
    rebuilt._specs = [
        _dc.replace(spec, choices=list(restricted[spec.name]))
        if spec.name in restricted
        else spec
        for spec in space.specs
    ]
    return rebuilt


class EvaluationService:
    """In-process evaluation service: HTTP front over the executor layer.

    Args:
        host: Bind address (default loopback).
        port: TCP port; 0 picks a free port (see :attr:`address`).
        workers: Worker processes for each batch (1 = serial, in-server).
        simulation_overrides: Optional dict merged over every request's
            simulation options (e.g. ``{"op_cache_path": ...}`` from
            ``repro serve --op-cache`` so the service keeps a warm persistent
            op-cost cache across requests and clients).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        simulation_overrides: Optional[Dict[str, object]] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.simulation_overrides = dict(simulation_overrides or {})
        if self.simulation_overrides.get("op_cache_path"):
            # Same warm-up the process-pool workers get: load the persistent
            # op store up front so even the first request runs warm.
            from repro.runtime.opcache import get_op_cache

            get_op_cache(self.simulation_overrides["op_cache_path"])
        # Warm-load the region store (if any) and keep raw entries around
        # even without one, so ``/cache/region`` can serve what this
        # service's own evaluations produce (publish_raw keeps the
        # digest-keyed raw memo populated on a path-less cache).
        self._region_cache().publish_raw = True
        self.stats = ServiceStats()
        self.started_at = time.time()
        # Per-service registry/tracer (not the process globals): tests run
        # several services in one process and each should report only its
        # own traffic.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=True, capacity=8192)
        self._evaluators: Dict[str, Tuple[TrialEvaluator, DatapathSearchSpace]] = {}
        self._executor: Optional[TrialExecutor] = None
        self._eval_lock = threading.Lock()
        self._scores: Dict[int, ScoreRecord] = {}
        self._scores_lock = threading.Lock()
        # ``fault_injector(request_index, path) -> action`` hook consulted
        # before any request is processed; tests use it to drop, delay, or
        # fail requests (see tests/test_remote_executor.py).  ``None`` or an
        # ``("ok",)`` action means normal handling.
        self.fault_injector = None
        self._request_counter = 0
        self._request_counter_lock = threading.Lock()
        self._server = ThreadingHTTPServer((host, port), _make_handler(self))
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """Actual (host, port) the server is bound to."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL clients should use as an ``--endpoints`` entry."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "EvaluationService":
        """Serve requests on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve requests on the calling thread until interrupted."""
        self._server.serve_forever()

    def close(self) -> None:
        """Stop serving and release the executor."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "EvaluationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def next_request_index(self) -> int:
        """Monotonic request counter (drives the fault injector)."""
        with self._request_counter_lock:
            index = self._request_counter
            self._request_counter += 1
            return index

    def _evaluator_for(
        self, payload: dict
    ) -> Tuple[str, TrialEvaluator, DatapathSearchSpace]:
        """(Re)build the evaluator + space a request describes, by fingerprint."""
        problem = search_problem_from_dict(payload["problem"])
        options_payload = dict(payload.get("options") or {})
        num_cores = int(options_payload.pop("num_cores", 1))
        sim_payload = dict(options_payload.get("simulation_options") or {})
        sim_payload.update(self.simulation_overrides)
        space = space_from_payload(payload.get("space"))
        evaluator = TrialEvaluator(
            problem,
            simulation_options=simulation_options_from_dict(sim_payload),
            num_cores=num_cores,
        )
        fingerprint = problem_fingerprint(problem, evaluator, space)
        cached = self._evaluators.get(fingerprint)
        if cached is not None:
            return (fingerprint,) + cached
        # First sighting of this problem: reuse the worker warm-up (graphs,
        # compiled regions, op/region caches) so later batches start warm.
        evaluator.warm_caches()
        self._evaluators[fingerprint] = (evaluator, space)
        return fingerprint, evaluator, space

    def _region_cache(self):
        """The process-local region cache backing ``/cache/region``."""
        from repro.runtime.opcache import get_region_cache

        return get_region_cache(self.simulation_overrides.get("region_store_path"))

    def region_cache_payload(self, method: str, payload: dict) -> Tuple[int, dict]:
        """Handle one ``GET``/``PUT /cache/region`` body; returns (status, body).

        The fingerprint is validated for form only (16 lowercase hex digits):
        region digests hash the graph fingerprint plus the mapping-relevant
        configuration themselves, so a digest can never alias an entry from a
        different problem.  GET serves the known subset of the requested
        digests; PUT stores previously-unknown entries (appending to the
        region store when the service has one).
        """
        fingerprint = payload.get("fingerprint")
        if not isinstance(fingerprint, str) or not _FINGERPRINT_RE.fullmatch(
            fingerprint
        ):
            return 400, {
                "error": "missing or malformed fingerprint "
                "(expected 16 lowercase hex digits)"
            }
        cache = self._region_cache()
        outcomes = self.metrics.counter(
            "repro_service_cache_entries_total",
            "Region-cache entries served/stored by /cache/region, by outcome.",
            ("outcome",),
        )
        if method == "GET":
            digests = payload.get("digests")
            if not isinstance(digests, list) or not all(
                isinstance(digest, str) for digest in digests
            ):
                return 400, {"error": "digests must be a list of strings"}
            entries: Dict[str, dict] = {}
            for digest in digests:
                raw = cache.raw_lookup(digest)
                if raw is not None:
                    entries[digest] = raw
            self.stats.region_cache_gets += 1
            self.stats.region_entries_served += len(entries)
            outcomes.inc(len(entries), outcome="hit")
            outcomes.inc(len(digests) - len(entries), outcome="miss")
            return 200, {"fingerprint": fingerprint, "entries": entries}
        entries_payload = payload.get("entries")
        if not isinstance(entries_payload, dict):
            return 400, {"error": "entries must be a digest-keyed object"}
        stored = 0
        for digest, raw in entries_payload.items():
            if not isinstance(digest, str) or not isinstance(raw, dict):
                return 400, {"error": "entries must map digest strings to objects"}
            if cache.raw_lookup(digest) is None:
                cache._store_raw(digest, raw)
                stored += 1
        self.stats.region_cache_puts += 1
        self.stats.region_entries_stored += stored
        outcomes.inc(stored, outcome="stored")
        return 200, {"fingerprint": fingerprint, "stored": stored}

    def evaluate_payload(self, payload: dict) -> Tuple[int, dict]:
        """Handle one ``/evaluate`` request body; returns (status, response)."""
        try:
            fingerprint, evaluator, space = self._evaluator_for(payload)
        except (KeyError, TypeError, ValueError) as error:
            self.stats.errors += 1
            return 400, {"error": f"malformed evaluate request: {error}"}
        claimed = payload.get("fingerprint")
        if claimed is not None and claimed != fingerprint:
            self.stats.fingerprint_rejections += 1
            return 409, {
                "error": "problem fingerprint mismatch",
                "client_fingerprint": claimed,
                "service_fingerprint": fingerprint,
            }
        try:
            batch = [
                params_from_jsonable(raw, space) for raw in payload.get("params", [])
            ]
        except (KeyError, TypeError, ValueError) as error:
            self.stats.errors += 1
            return 400, {"error": f"malformed params: {error}"}
        with self._eval_lock:
            if self._executor is None:
                self._executor = make_executor(self.workers)
            metrics = self._executor.evaluate_batch(evaluator, space, batch)
        self.stats.batches += 1
        self.stats.trials_evaluated += len(metrics)
        return 200, {
            "fingerprint": fingerprint,
            "results": [trial_metrics_to_dict(m) for m in metrics],
        }

    # ------------------------------------------------------------------
    def publish_score(self, payload: dict) -> Tuple[int, dict]:
        """Handle one ``POST /scoreboard`` body; keeps the best per shard."""
        try:
            record = ScoreRecord.from_dict(payload)
        except (KeyError, TypeError, ValueError) as error:
            return 400, {"error": f"malformed scoreboard record: {error}"}
        with self._scores_lock:
            incumbent = self._scores.get(record.shard_id)
            if incumbent is None or record.objective < incumbent.objective:
                self._scores[record.shard_id] = record
        return 200, {"ok": True}

    def scoreboard_snapshot(self) -> dict:
        """Current per-shard best map (the ``GET /scoreboard`` body)."""
        with self._scores_lock:
            return {
                "scores": {
                    str(shard_id): record.to_dict()
                    for shard_id, record in self._scores.items()
                }
            }

    def observe_request(
        self, route: str, method: str, status: int, elapsed: float
    ) -> None:
        """Fold one handled request into the service metrics."""
        self.metrics.counter(
            "repro_service_requests_total",
            "HTTP requests handled, by route, method, and status.",
            ("route", "method", "status"),
        ).inc(route=route, method=method, status=str(status))
        self.metrics.histogram(
            "repro_service_request_seconds",
            "Request handling latency in seconds.",
            ("route",),
        ).observe(elapsed, route=route)

    def requests_by_route(self) -> Dict[str, int]:
        """Total handled requests per route (for ``/health``)."""
        totals: Dict[str, int] = {}
        counter = self.metrics.get("repro_service_requests_total")
        if counter is not None:
            for key, value in counter.samples().items():
                route = key[0]
                totals[route] = totals.get(route, 0) + int(value)
        return totals

    def metrics_exposition(self) -> str:
        """The ``GET /metrics`` body: Prometheus text exposition.

        Request counters/latency accumulate as requests are handled; the
        uptime / lifetime / cache gauges are refreshed at scrape time.
        """
        gauge = self.metrics.gauge
        gauge("repro_service_uptime_seconds", "Seconds since service start.").set(
            time.time() - self.started_at
        )
        gauge("repro_service_workers", "Configured evaluation workers.").set(
            self.workers
        )
        gauge(
            "repro_service_trials_evaluated", "Trials evaluated since start."
        ).set(self.stats.trials_evaluated)
        gauge("repro_service_batches", "Evaluate batches since start.").set(
            self.stats.batches
        )
        gauge("repro_service_errors", "Request handling errors since start.").set(
            self.stats.errors
        )
        gauge(
            "repro_service_fingerprint_rejections",
            "Evaluate requests refused on fingerprint mismatch.",
        ).set(self.stats.fingerprint_rejections)
        from repro.runtime.opcache import get_op_cache, get_region_cache

        op_hits, op_misses = get_op_cache(
            self.simulation_overrides.get("op_cache_path")
        ).snapshot_counters()
        cache = self.metrics.gauge(
            "repro_cache_lookups",
            "Cost-cache lookups in this process, by cache and outcome.",
            ("cache", "outcome"),
        )
        cache.set(op_hits, cache="op", outcome="hit")
        cache.set(op_misses, cache="op", outcome="miss")
        region_cache = get_region_cache(
            self.simulation_overrides.get("region_store_path")
        )
        region_hits, region_misses = region_cache.snapshot_counters()
        cache.set(region_hits, cache="region", outcome="hit")
        cache.set(region_misses, cache="region", outcome="miss")
        gauge(
            "repro_service_region_entries",
            "Raw region entries the /cache/region tier can serve.",
        ).set(len(region_cache._disk_index))
        return self.metrics.expose()

    def health_snapshot(self) -> dict:
        """The ``GET /health`` body."""
        return {
            "status": "ok",
            "workers": self.workers,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "requests": self.stats.requests,
            "requests_by_route": self.requests_by_route(),
            "batches": self.stats.batches,
            "trials_evaluated": self.stats.trials_evaluated,
            "fingerprint_rejections": self.stats.fingerprint_rejections,
            "errors": self.stats.errors,
            "region_cache_gets": self.stats.region_cache_gets,
            "region_cache_puts": self.stats.region_cache_puts,
            "region_entries_served": self.stats.region_entries_served,
            "region_entries_stored": self.stats.region_entries_stored,
            "region_entries": len(self._region_cache()._disk_index),
            "known_fingerprints": sorted(self._evaluators),
        }


def _make_handler(service: EvaluationService):
    """Build the request-handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        # Access logs go through the module logger at DEBUG instead of the
        # stdlib's unconditional stderr write: quiet by default (tests, CI
        # smokes), but ``repro serve --verbose`` makes per-request lines —
        # and hence service-side failures — visible again.
        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            logger.debug(
                "%s - - %s", self.address_string(), format % args
            )

        # ------------------------------------------------------------------
        def _inject_fault(self) -> bool:
            """Apply any configured fault; True means the request was consumed."""
            injector = service.fault_injector
            if injector is None:
                return False
            action = injector(service.next_request_index(), self.path)
            if not action:
                return False
            kind = action[0]
            if kind == "delay":
                import time

                time.sleep(float(action[1]))
                return False  # delayed, then handled normally
            if kind == "error":
                self._reply(500, {"error": "injected failure"})
                return True
            if kind == "drop":
                # Close the socket without any response: the client sees a
                # connection reset / truncated read.
                self.connection.close()
                return True
            return False

        def _read_json(self) -> Optional[dict]:
            length = int(self.headers.get("Content-Length", 0))
            try:
                return json.loads(self.rfile.read(length) or b"{}")
            except (json.JSONDecodeError, ValueError):
                self._reply(400, {"error": "request body is not valid JSON"})
                return None

        def _reply(self, status: int, body: dict) -> int:
            data = json.dumps(body).encode()
            self._send_bytes(status, "application/json", data)
            return status

        def _reply_text(self, status: int, text: str) -> int:
            self._send_bytes(
                status, "text/plain; version=0.0.4; charset=utf-8", text.encode()
            )
            return status

        def _send_bytes(self, status: int, content_type: str, data: bytes) -> None:
            try:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client gave up (timeout / hedge winner already used)

        # ------------------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            self._handle("GET")

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            self._handle("POST")

        def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
            self._handle("PUT")

        def _handle(self, method: str) -> None:
            service.stats.requests += 1
            route = self.path
            trace_header = self.headers.get(TRACE_CONTEXT_HEADER)
            span = service.tracer.start(
                "serve_request",
                category="service",
                parent_header=trace_header,
                attrs={"route": route, "method": method},
            )
            started = time.perf_counter()
            status = 500
            try:
                if self._inject_fault():
                    status = 0  # request consumed by the fault injector
                    return
                status = self._dispatch(method, route, trace_header, span)
            finally:
                span.set_attr("status", status)
                service.tracer.finish(span)
                service.observe_request(
                    route, method, status, time.perf_counter() - started
                )

        def _dispatch(self, method: str, route: str, trace_header, span) -> int:
            if method == "GET" and route != "/cache/region":
                if route == "/health":
                    return self._reply(200, service.health_snapshot())
                if route == "/scoreboard":
                    return self._reply(200, service.scoreboard_snapshot())
                if route == "/metrics":
                    return self._reply_text(200, service.metrics_exposition())
                return self._reply(404, {"error": f"unknown path {route}"})
            payload = self._read_json()
            if payload is None:
                return 400
            if route == "/cache/region":
                if method not in ("GET", "PUT"):
                    return self._reply(
                        405, {"error": "use GET or PUT on /cache/region"}
                    )
                try:
                    status, body = service.region_cache_payload(method, payload)
                except Exception as error:  # defensive: never kill the thread
                    service.stats.errors += 1
                    status, body = 500, {"error": f"cache request failed: {error}"}
                return self._reply(status, body)
            if method == "PUT":
                return self._reply(404, {"error": f"unknown path {route}"})
            if route == "/evaluate":
                try:
                    status, body = service.evaluate_payload(payload)
                except Exception as error:  # defensive: never kill the thread
                    service.stats.errors += 1
                    status, body = 500, {"error": f"evaluation failed: {error}"}
                if trace_header and span.record is not None:
                    # The client is tracing: close the request span now (the
                    # reply write is all that remains) and hand it back so
                    # both sides of the wire land in one trace.
                    span.set_attr("status", status)
                    service.tracer.finish(span)
                    body = dict(body, spans=[span.record.to_dict()])
                return self._reply(status, body)
            if route == "/scoreboard":
                status, body = service.publish_score(payload)
                return self._reply(status, body)
            return self._reply(404, {"error": f"unknown path {route}"})

    return Handler


def serve(
    host: str = "127.0.0.1",
    port: int = 8642,
    workers: int = 1,
    op_cache_path: Optional[str] = None,
    fault_spec: Optional[str] = None,
    fault_seed: int = 0,
    engine: Optional[object] = None,
) -> EvaluationService:
    """Build the service ``repro serve`` runs (caller starts/serves it).

    ``fault_spec``/``fault_seed`` attach a seeded
    :class:`~repro.runtime.faults.FaultPlan` as the service's fault
    injector (``service-error`` / ``service-drop`` / ``service-delay``
    points), so a deliberately flaky endpoint for chaos runs is one flag
    away: ``repro serve --inject-faults "service-error:p=0.2"``.

    ``engine`` (an :class:`~repro.simulator.enginespec.EngineSpec`) pins the
    evaluation engine server-side: its fields are merged over every
    request's simulation options, so clients get this service's engine
    regardless of what their payload asked for.  Safe because all NumPy
    engines are bit-for-bit equivalent; a non-NumPy backend should pass
    ``repro profile --check-backends`` on this host first.
    """
    overrides: Dict[str, object] = {}
    if engine is not None:
        overrides["vectorized_mapper"] = engine.mapper != "scalar"
        overrides["graph_batched_mapper"] = engine.mapper in (
            "graph-batched",
            "trial-batched",
        )
        overrides["trial_batched_mapper"] = engine.mapper == "trial-batched"
        overrides["backend"] = engine.backend
        overrides["op_cache_enabled"] = engine.op_cache
        overrides["region_cache_enabled"] = engine.region_cache
        if engine.region_store is not None:
            overrides["region_store_path"] = engine.region_store
        if engine.cache_service is not None:
            overrides["region_cache_service"] = engine.cache_service
    if op_cache_path:
        overrides["op_cache_enabled"] = True
        overrides["op_cache_path"] = op_cache_path
    service = EvaluationService(
        host=host, port=port, workers=workers, simulation_overrides=overrides
    )
    if fault_spec:
        from repro.runtime.faults import FaultPlan

        service.fault_injector = FaultPlan(fault_spec, seed=fault_seed)
    return service
