"""Persistent trial cache: skip re-simulating configurations already seen.

A full trial (mapper + fusion ILP across every workload) is the dominant cost
of a search, yet sweeps, repeated benchmarks, and restarted runs evaluate
many identical configurations.  :class:`TrialCache` memoizes
:class:`~repro.core.trial.TrialMetrics` keyed by a canonical hash of the
parameter assignment *and* a fingerprint of the evaluation context
(workloads, objective, constraints, simulation options, search space), so a
hit is only possible when the result would be identical.

The cache is two-level: an in-memory LRU front for the current process and an
optional JSON-lines file that persists across restarts.  Disk records are
loaded as raw dicts at open time and decoded to metrics lazily on first hit;
writes are O(1) appends, so concurrent sweeps can share one cache file
(append-only, last record wins on duplicate keys).
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.problem import SearchProblem
from repro.core.trial import TrialEvaluator, TrialMetrics
from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.reporting.serialization import (
    params_to_jsonable,
    trial_metrics_from_dict,
    trial_metrics_to_dict,
)

__all__ = ["problem_fingerprint", "CacheStats", "TrialCache"]


def problem_fingerprint(
    problem: SearchProblem,
    evaluator: Optional[TrialEvaluator] = None,
    space: Optional[DatapathSearchSpace] = None,
) -> str:
    """Stable hash of everything besides the parameters that shapes a trial.

    Two searches share cache entries only when this fingerprint matches:
    same workloads, objective, constraints, baseline normalization, simulator
    options, core count, and search-space choice lists.
    """
    payload: Dict[str, object] = {
        "workloads": list(problem.workloads),
        "objective": problem.objective.value,
        "constraints": [problem.constraints.max_area_mm2, problem.constraints.max_tdp_w],
        "baseline_qps": sorted(problem.baseline_qps.items()),
    }
    if evaluator is not None:
        payload["num_cores"] = evaluator.num_cores
        payload["simulation_options"] = {
            key: getattr(value, "value", value)
            for key, value in sorted(vars(evaluator.simulation_options).items())
        }
    if space is not None:
        payload["space"] = [
            [spec.name, [getattr(choice, "value", choice) for choice in spec.choices]]
            for spec in space.specs
        ]
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True, default=str).encode())
    return digest.hexdigest()[:16]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    disk_entries_loaded: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TrialCache:
    """Two-level (memory LRU + JSONL file) cache of trial metrics.

    Args:
        path: Optional JSON-lines file for persistence; created on first put.
        max_memory_entries: LRU capacity of the in-memory front.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        max_memory_entries: int = 4096,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.max_memory_entries = max(1, int(max_memory_entries))
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, TrialMetrics]" = OrderedDict()
        self._disk_index: Dict[str, dict] = {}
        if self.path is not None and self.path.exists():
            self._load_disk_index()

    # ------------------------------------------------------------------
    def _load_disk_index(self) -> None:
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                self._disk_index[record["key"]] = record["metrics"]
            except (json.JSONDecodeError, KeyError, TypeError):
                continue  # tolerate truncated/corrupt lines from killed runs
        self.stats.disk_entries_loaded = len(self._disk_index)

    # ------------------------------------------------------------------
    def key_for(self, params: ParameterValues, fingerprint: str) -> str:
        """Cache key for a parameter assignment under an evaluation context."""
        canonical = json.dumps(params_to_jsonable(params), sort_keys=True)
        return hashlib.sha256(f"{fingerprint}|{canonical}".encode()).hexdigest()

    def get(self, key: str) -> Optional[TrialMetrics]:
        """Look up cached metrics; returns None on a miss."""
        metrics = self._memory.get(key)
        if metrics is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return metrics
        raw = self._disk_index.get(key)
        if raw is not None:
            metrics = trial_metrics_from_dict(raw)
            self._remember(key, metrics)
            self.stats.hits += 1
            return metrics
        self.stats.misses += 1
        return None

    def put(self, key: str, metrics: TrialMetrics) -> None:
        """Store metrics in memory and (when configured) append to disk."""
        self._remember(key, metrics)
        self.stats.puts += 1
        if self.path is not None:
            record = {"key": key, "metrics": trial_metrics_to_dict(metrics)}
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as handle:
                handle.write(json.dumps(record) + "\n")

    def _remember(self, key: str, metrics: TrialMetrics) -> None:
        self._memory[key] = metrics
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory.keys() | self._disk_index.keys())

    def __contains__(self, key: str) -> bool:
        return key in self._memory or key in self._disk_index
