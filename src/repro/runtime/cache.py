"""Persistent trial cache: skip re-simulating configurations already seen.

A full trial (mapper + fusion ILP across every workload) is the dominant cost
of a search, yet sweeps, repeated benchmarks, and restarted runs evaluate
many identical configurations.  :class:`TrialCache` memoizes
:class:`~repro.core.trial.TrialMetrics` keyed by a canonical hash of the
parameter assignment *and* a fingerprint of the evaluation context
(workloads, objective, constraints, simulation options, search space), so a
hit is only possible when the result would be identical.

The cache is two-level: an in-memory LRU front for the current process and an
optional JSON-lines store that persists across restarts.  Disk records are
loaded as raw dicts at open time and decoded to metrics lazily on first hit;
writes are O(1) appends, last record wins on duplicate keys.

Sharded sweeps write safely to one logical store by giving each concurrent
writer its own sidecar file: a cache opened with ``writer_id=k`` appends to
``<path>.shard-<k>`` while *reading* the union of the base file and every
sidecar.  Interleaved appends from different shards (or hosts sharing a
filesystem) therefore can never corrupt each other's lines.  :meth:`compact`
folds the sidecars back into the base file, drops duplicate keys (keeping the
best record per key), and evicts the least-recently-written records beyond a
size cap so multi-shard sweeps don't grow the store unboundedly.

Each sharded writer claims its sidecar with a ``<sidecar>.owner`` marker
(pid + host).  Compaction — explicit or automatic — uses the markers to
tell *live* writers from the stale leftovers of crashed ones: sidecars with
a live foreign owner are never folded or deleted, while orphaned sidecars
(dead pid, or marker removed by :meth:`release`) are folded in rather than
blocking compaction forever.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.problem import SearchProblem
from repro.core.trial import TrialEvaluator, TrialMetrics
from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.runtime.faults import get_fault_plan
from repro.reporting.serialization import (
    params_to_jsonable,
    trial_metrics_from_dict,
    trial_metrics_to_dict,
)

__all__ = [
    "problem_fingerprint",
    "CacheStats",
    "CompactionStats",
    "TrialCache",
    "compact_cache",
]


#: Simulation options that only affect *how fast* a trial evaluates, never
#: what it computes (the vectorized / graph-batched / trial-batched mappers
#: and the op cache are bit-for-bit equivalent to the scalar, uncached
#: path).  They are excluded from the problem fingerprint so runs with
#: different performance knobs share trial cache entries and checkpoints.
#: ``backend`` is perf-only *conditionally*: NumPy is always bit-exact, and
#: a float-divergent backend (cupy/torch) is shareable only after it passed
#: :func:`repro.mapping.backend.assert_backend_equivalence` this process —
#: otherwise :func:`problem_fingerprint` folds a backend tag back in below,
#: so an unverified GPU run can never poison a shared store.
_PERF_ONLY_SIMULATION_OPTIONS = frozenset(
    {
        "vectorized_mapper",
        "graph_batched_mapper",
        "trial_batched_mapper",
        "backend",
        "region_cache_enabled",
        "op_cache_enabled",
        "op_cache_path",
        "region_store_path",
        "region_cache_service",
    }
)


def _resolved_backend_name(options) -> str:
    """The backend the simulator would resolve for these options."""
    backend = getattr(options, "backend", "numpy") or "numpy"
    if backend == "numpy":
        mapper_options = getattr(options, "mapper_options", None)
        if mapper_options is not None:
            backend = getattr(mapper_options, "backend", "numpy") or "numpy"
    return backend


def problem_fingerprint(
    problem: SearchProblem,
    evaluator: Optional[TrialEvaluator] = None,
    space: Optional[DatapathSearchSpace] = None,
) -> str:
    """Stable hash of everything besides the parameters that shapes a trial.

    Two searches share cache entries only when this fingerprint matches:
    same workloads, objective, constraints, baseline normalization, simulator
    options (performance-only knobs excluded), core count, and search-space
    choice lists.
    """
    payload: Dict[str, object] = {
        "workloads": list(problem.workloads),
        "objective": problem.objective.value,
        "constraints": [problem.constraints.max_area_mm2, problem.constraints.max_tdp_w],
        "baseline_qps": sorted(problem.baseline_qps.items()),
    }
    if evaluator is not None:
        payload["num_cores"] = evaluator.num_cores
        payload["simulation_options"] = {
            key: getattr(value, "value", value)
            for key, value in sorted(vars(evaluator.simulation_options).items())
            if key not in _PERF_ONLY_SIMULATION_OPTIONS
        }
        # Conditionally perf-only: an unverified non-NumPy backend gets its
        # own cache universe (see _PERF_ONLY_SIMULATION_OPTIONS note).
        from repro.mapping.backend import backend_cache_tag

        tag = backend_cache_tag(
            _resolved_backend_name(evaluator.simulation_options)
        )
        if tag is not None:
            payload["simulation_options"]["backend_tag"] = tag
    if space is not None:
        payload["space"] = [
            [spec.name, [getattr(choice, "value", choice) for choice in spec.choices]]
            for spec in space.specs
        ]
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True, default=str).encode())
    return digest.hexdigest()[:16]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance.

    ``corrupt_records`` counts torn/undecodable JSONL lines quarantined
    (skipped, then dropped by the next compaction) while loading the store —
    the tail a crash mid-append leaves behind.  ``stale_tmp_swept`` counts
    leftover ``.tmp`` files from crashed compactions removed on load.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    disk_entries_loaded: int = 0
    auto_compactions: int = 0
    corrupt_records: int = 0
    stale_tmp_swept: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class CompactionStats:
    """Outcome of one :meth:`TrialCache.compact` pass."""

    kept: int = 0
    duplicates_dropped: int = 0
    evicted: int = 0
    files_merged: int = 0
    live_writers_skipped: int = 0


def _pid_alive(pid: object) -> bool:
    """Whether a pid names a live process on this host."""
    try:
        os.kill(int(pid), 0)
    except (ProcessLookupError, ValueError, TypeError, OverflowError):
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def _record_rank(metrics: dict) -> tuple:
    """Orderable quality of a disk record (feasible beats infeasible, then score)."""
    try:
        score = float(metrics.get("aggregate_score", 0.0))
    except (TypeError, ValueError):
        score = 0.0
    if score != score:  # NaN
        score = float("-inf")
    return (1 if metrics.get("feasible") else 0, score)


class TrialCache:
    """Two-level (memory LRU + JSONL store) cache of trial metrics.

    Args:
        path: Optional JSON-lines store for persistence; created on first put.
        max_memory_entries: LRU capacity of the in-memory front.
        writer_id: Concurrent-writer tag.  When set, appends go to the
            sidecar file ``<path>.shard-<writer_id>`` instead of ``path``
            while reads cover the base file plus every sidecar.  Each
            concurrent writer (shard, host) must use a distinct id.
        max_disk_entries: Default size cap applied by :meth:`compact`.  When
            set, the cache also *auto-compacts*: once the store grows a
            slack margin (a quarter of the cap, at least 16 records) past
            the cap, :meth:`put` triggers a compaction down to the cap.
            Auto-compaction only fires for exclusive writers — it is skipped
            when ``writer_id`` is set or shard sidecar files exist, because
            compaction deletes sidecars that live shards may still append to.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        max_memory_entries: int = 4096,
        writer_id: Optional[Union[int, str]] = None,
        max_disk_entries: Optional[int] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.max_memory_entries = max(1, int(max_memory_entries))
        self.writer_id = writer_id
        self.max_disk_entries = max_disk_entries
        self.stats = CacheStats()
        self._owner_claimed = False
        self._memory: "OrderedDict[str, TrialMetrics]" = OrderedDict()
        self._disk_index: Dict[str, dict] = {}
        # Approximate on-disk record count (deduplicated at load, then +1 per
        # append) driving the auto-compaction trigger.
        self._approx_disk_records = 0
        if self.path is not None:
            self._load_disk_index()
            self._approx_disk_records = len(self._disk_index)

    # ------------------------------------------------------------------
    @property
    def write_path(self) -> Optional[Path]:
        """File this instance appends to (sidecar when ``writer_id`` is set)."""
        if self.path is None:
            return None
        if self.writer_id is None:
            return self.path
        return self.path.with_name(f"{self.path.name}.shard-{self.writer_id}")

    def disk_files(self) -> List[Path]:
        """Base file plus every shard sidecar, in a deterministic order."""
        if self.path is None:
            return []
        files = [self.path] if self.path.exists() else []
        files.extend(
            sorted(
                file
                for file in self.path.parent.glob(f"{self.path.name}.shard-*")
                if not file.name.endswith(".owner")
            )
        )
        return files

    # ------------------------------------------------------------------
    # Sidecar ownership.  Each sharded writer claims its sidecar with a tiny
    # ``<sidecar>.owner`` marker recording its pid and host, so compaction
    # can tell a *live* concurrent writer from the stale leftovers of a
    # crashed one and fold the orphans in instead of skipping forever.
    # ------------------------------------------------------------------
    @staticmethod
    def _owner_path(sidecar: Path) -> Path:
        return sidecar.with_name(sidecar.name + ".owner")

    def _claim_sidecar(self, sidecar: Path) -> None:
        """Record this process as the sidecar's writer (once per instance)."""
        if self._owner_claimed:
            return
        try:
            self._owner_path(sidecar).write_text(
                json.dumps({"pid": os.getpid(), "host": socket.gethostname()})
            )
        except OSError:
            pass  # ownership is advisory; appends stay safe either way
        self._owner_claimed = True

    def release(self) -> None:
        """Drop this writer's sidecar ownership marker (call when done).

        A released sidecar is treated as orphaned: the next compaction —
        automatic or explicit, from any process — may fold it into the base
        file.  Only meaningful for caches opened with ``writer_id``.
        """
        write_path = self.write_path
        if self.writer_id is not None and write_path is not None:
            self._owner_path(write_path).unlink(missing_ok=True)
        self._owner_claimed = False

    def _sidecar_writer_state(self, sidecar: Path) -> str:
        """Ownership state of a sidecar: ``'self'``, ``'live'``, or ``'orphaned'``.

        No owner marker (legacy file, released writer, or a writer that
        crashed before its first append) and dead-pid owners on this host
        are ``'orphaned'``.  Owners on *other* hosts cannot be probed and
        are conservatively ``'live'``.
        """
        try:
            owner = json.loads(self._owner_path(sidecar).read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            return "orphaned"
        pid = owner.get("pid")
        if owner.get("host") != socket.gethostname():
            return "live"
        if pid == os.getpid():
            return "self"
        return "live" if _pid_alive(pid) else "orphaned"

    def _sweep_stale_tmp(self) -> None:
        """Remove a leftover compaction temp file from a crashed writer.

        The ``<name>.tmp`` file only exists inside :meth:`compact`'s
        write-then-rename window; finding one at load time means a previous
        compaction died mid-write and its content is garbage (the base file
        it was about to replace is intact).
        """
        if self.path is None:
            return
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        try:
            if tmp_path.exists():
                tmp_path.unlink()
                self.stats.stale_tmp_swept += 1
        except OSError:
            pass  # sweeping is best effort; a stale tmp is inert

    def _load_disk_index(self) -> None:
        self._sweep_stale_tmp()
        for file in self.disk_files():
            for line in file.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    self._disk_index[record["key"]] = record["metrics"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # Quarantine the torn line a killed run left behind:
                    # count it, keep loading, let compaction drop it.
                    self.stats.corrupt_records += 1
                    continue
        self.stats.disk_entries_loaded = len(self._disk_index)

    # ------------------------------------------------------------------
    def key_for(self, params: ParameterValues, fingerprint: str) -> str:
        """Cache key for a parameter assignment under an evaluation context."""
        canonical = json.dumps(params_to_jsonable(params), sort_keys=True)
        return hashlib.sha256(f"{fingerprint}|{canonical}".encode()).hexdigest()

    def get(self, key: str) -> Optional[TrialMetrics]:
        """Look up cached metrics; returns None on a miss."""
        metrics = self._memory.get(key)
        if metrics is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return metrics
        raw = self._disk_index.get(key)
        if raw is not None:
            metrics = trial_metrics_from_dict(raw)
            self._remember(key, metrics)
            self.stats.hits += 1
            return metrics
        self.stats.misses += 1
        return None

    def put(self, key: str, metrics: TrialMetrics) -> None:
        """Store metrics in memory and (when configured) append to disk."""
        self._remember(key, metrics)
        self.stats.puts += 1
        write_path = self.write_path
        if write_path is not None:
            record = {
                "key": key,
                "ts": time.time(),
                "metrics": trial_metrics_to_dict(metrics),
            }
            write_path.parent.mkdir(parents=True, exist_ok=True)
            if self.writer_id is not None:
                self._claim_sidecar(write_path)
            line = json.dumps(record) + "\n"
            plan = get_fault_plan()
            if plan is not None and plan.fire("torn-write") is not None:
                # Injected crash mid-append: persist only a prefix of the
                # record.  The in-memory entry above is intact, so the run
                # is unaffected; the next load must quarantine this line.
                line = line[: max(1, len(line) // 2)].rstrip("\n") + "\n"
            # One write call per record: a line can never be split across
            # appends, so a reader (or a later compaction) sees whole lines.
            with write_path.open("a") as handle:
                handle.write(line)
            self._approx_disk_records += 1
            self._maybe_auto_compact()

    def _maybe_auto_compact(self) -> None:
        """Compact once the store overshoots ``max_disk_entries`` by a slack.

        The slack (a quarter of the cap, at least 16 records) keeps the
        amortized cost low: each O(store) compaction pays for many O(1)
        appends.  Skipped for sharded writers and whenever a sidecar with a
        live (or same-process) writer exists; sidecars orphaned by crashed
        or released writers do *not* block compaction — they are folded in
        along with the base file (see the class docstring).
        """
        if self.max_disk_entries is None or self.writer_id is not None:
            return
        slack = max(16, int(self.max_disk_entries) // 4)
        if self._approx_disk_records <= int(self.max_disk_entries) + slack:
            return
        for file in self.disk_files():
            if file != self.path and self._sidecar_writer_state(file) != "orphaned":
                return  # a live writer (any process, incl. ours) may append
        self.compact(self.max_disk_entries)
        self.stats.auto_compactions += 1

    def _remember(self, key: str, metrics: TrialMetrics) -> None:
        self._memory[key] = metrics
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def compact(self, max_entries: Optional[int] = None) -> CompactionStats:
        """Merge the store into one deduplicated, optionally size-capped file.

        All shard sidecars are folded into the base file and removed.  For
        each key the *best* record survives (feasible beats infeasible, then
        higher aggregate score, then the later write).  When the survivor
        count exceeds ``max_entries`` (default: ``max_disk_entries``), the
        least-recently-written records are evicted first — recency comes
        from each record's ``ts`` stamp, falling back to the mtime of the
        file it was read from.  The rewrite is atomic (temp file + rename).

        Sidecars owned by a *live writer in another process* are left
        untouched (not merged, not deleted) and counted in
        ``live_writers_skipped``, so compacting while a sweep is appending
        can no longer lose that sweep's records.  Sidecars whose owner
        marker is missing or names a dead pid — the leftovers of a crashed
        writer — are folded in like the base file, as are this process's own
        sidecars (the caller owns them).
        """
        if self.path is None:
            raise ValueError("compaction requires a cache path")
        if max_entries is None:
            max_entries = self.max_disk_entries

        files = []
        live_skipped = 0
        for file in self.disk_files():
            if file != self.path and self._sidecar_writer_state(file) == "live":
                live_skipped += 1
                continue
            files.append(file)
        stats = CompactionStats(files_merged=len(files), live_writers_skipped=live_skipped)
        survivors: Dict[str, list] = {}  # key -> [record, ts, order]
        order = 0
        for file in files:
            try:
                file_mtime = file.stat().st_mtime
            except OSError:
                file_mtime = 0.0
            for line in file.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                    metrics = record["metrics"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    self.stats.corrupt_records += 1
                    continue  # torn record: quarantined out of the rewrite
                ts = float(record.get("ts", file_mtime) or file_mtime)
                incumbent = survivors.get(key)
                if incumbent is None:
                    survivors[key] = [record, ts, order]
                else:
                    stats.duplicates_dropped += 1
                    if _record_rank(metrics) >= _record_rank(incumbent[0]["metrics"]):
                        incumbent[0] = record
                    # A duplicate write is a *use* of the key: bump recency
                    # so hot entries survive eviction (LRU semantics).
                    incumbent[1] = max(incumbent[1], ts)
                    incumbent[2] = order
                order += 1

        kept = list(survivors.values())
        if max_entries is not None and len(kept) > max_entries:
            kept.sort(key=lambda item: (item[1], item[2]))  # oldest first
            stats.evicted = len(kept) - int(max_entries)
            kept = kept[stats.evicted :]
        else:
            kept.sort(key=lambda item: item[2])

        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        with tmp_path.open("w") as handle:
            for record, ts, _ in kept:
                record.setdefault("ts", ts)
                handle.write(json.dumps(record) + "\n")
            # Durable before the rename: the replace must never promote a
            # temp file whose data could still be lost to power failure.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        for file in files:
            if file != self.path:
                file.unlink(missing_ok=True)
                self._owner_path(file).unlink(missing_ok=True)
        # If this instance's own sidecar (and owner marker) was just folded,
        # the next append must re-claim ownership — otherwise the recreated
        # sidecar would look orphaned to other processes' compactions.
        self._owner_claimed = False

        self._disk_index = {}
        self._load_disk_index()
        self._approx_disk_records = len(self._disk_index)
        stats.kept = len(kept)
        return stats

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory.keys() | self._disk_index.keys())

    def __contains__(self, key: str) -> bool:
        return key in self._memory or key in self._disk_index


def compact_cache(
    path: Union[str, Path], max_entries: Optional[int] = None
) -> CompactionStats:
    """Compact a cache store on disk (see :meth:`TrialCache.compact`)."""
    return TrialCache(path).compact(max_entries)
