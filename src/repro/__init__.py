"""repro: a reproduction of FAST (Full-stack Accelerator Search Technique).

FAST (Zhang et al., ASPLOS 2022) jointly searches the hardware datapath,
software schedule, and compiler passes (operation fusion, tensor padding,
softmax lowering) of ML inference accelerators.  This package provides the
whole stack from scratch in Python:

* :mod:`repro.workloads` — graph IR and builders for EfficientNet B0-B7,
  BERT, ResNet-50v2, and the OCR pipeline workloads.
* :mod:`repro.hardware` — the Table 3 datapath template, memory hierarchy,
  analytical area/power models, and the TPU-v3 baseline.
* :mod:`repro.mapping` — the Timeloop-style scheduling/mapping engine.
* :mod:`repro.simulator` — the whole-graph performance simulator.
* :mod:`repro.compiler` — XLA-style fusion regions and softmax lowering.
* :mod:`repro.fusion` — FAST fusion, the ILP that pins tensors in Global
  Memory.
* :mod:`repro.search` — random / Bayesian / LCS black-box optimizers.
* :mod:`repro.core` — the FAST search driver, trial evaluation, and the
  named designs (FAST-Large, FAST-Small).
* :mod:`repro.economics` — TCO and ROI models.
* :mod:`repro.analysis` — operational-intensity and bottleneck analyses.

Quickstart::

    from repro.core import FASTSearch, SearchProblem, ObjectiveKind

    problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)
    result = FASTSearch(problem, optimizer="lcs", seed=0).run(num_trials=100)
    print(result.best_config.describe())
"""

from repro.core import (
    FAST_LARGE,
    FAST_SMALL,
    FASTSearch,
    FASTSearchResult,
    ObjectiveKind,
    SearchProblem,
    TPU_V3,
    TrialEvaluator,
    TrialMetrics,
)
from repro.hardware import AreaPowerModel, DatapathConfig, DatapathSearchSpace, default_constraints
from repro.simulator import SimulationResult, Simulator
from repro.workloads import build_workload

__version__ = "1.0.0"

__all__ = [
    "AreaPowerModel",
    "DatapathConfig",
    "DatapathSearchSpace",
    "FAST_LARGE",
    "FAST_SMALL",
    "FASTSearch",
    "FASTSearchResult",
    "ObjectiveKind",
    "SearchProblem",
    "SimulationResult",
    "Simulator",
    "TPU_V3",
    "TrialEvaluator",
    "TrialMetrics",
    "__version__",
    "build_workload",
    "default_constraints",
]
