"""Plain-text table formatting shared by the CLI, examples, and benchmarks."""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_kv", "to_csv", "to_markdown"]


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table with a header rule."""
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

    lines = [render(list(headers)), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in str_rows)
    return "\n".join(lines)


def format_kv(mapping: Mapping[str, object], title: str = "") -> str:
    """Render a key/value mapping as an aligned two-column block."""
    width = max((len(str(k)) for k in mapping), default=0)
    lines = [f"{title}" ] if title else []
    lines.extend(f"{str(k).ljust(width)}  {_stringify(v)}" for k, v in mapping.items())
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (for piping into spreadsheets / plotting)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow([_stringify(c) for c in row])
    return buffer.getvalue()


def to_markdown(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(c) for c in row) + " |")
    return "\n".join(lines)
