"""Experiment registry: regenerate the paper's tables and figures by name.

Every entry corresponds to one table or figure of the paper's evaluation
section and produces a plain-text report (tables plus ASCII charts) from the
same library calls the benchmark harness uses.  The registry exists so the
CLI (``python -m repro reproduce <experiment>``) and the examples can
regenerate results interactively; the ``benchmarks/`` directory remains the
authoritative, pytest-benchmark-instrumented harness.

Search-driven experiments (Figures 9-12) are expensive — the paper runs 5000
Vizier trials each — so their registry entries accept a ``trials`` option and
default to small budgets intended for smoke runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.bottleneck import (
    bert_component_breakdown,
    characterize_op_types,
    per_layer_utilization,
)
from repro.analysis.footprint import storage_requirements_table
from repro.analysis.intensity import intensity_report
from repro.core.designs import FAST_LARGE, FAST_SMALL, TPU_V3
from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.economics.roi import RoiModel
from repro.hardware.area_power import AreaPowerModel
from repro.reporting.ascii_plots import bar_chart, line_plot, sparkline
from repro.reporting.tables import format_table
from repro.simulator.engine import Simulator
from repro.workloads.efficientnet import EFFICIENTNET_VARIANTS
from repro.workloads.registry import build_workload

__all__ = ["ExperimentReport", "ExperimentSpec", "EXPERIMENTS", "run_experiment", "list_experiments"]


@dataclass
class ExperimentReport:
    """Output of one regenerated experiment."""

    experiment: str
    title: str
    text: str
    notes: str = ""

    def __str__(self) -> str:
        parts = [f"===== {self.experiment}: {self.title} =====", self.text]
        if self.notes:
            parts.append(f"\nNotes: {self.notes}")
        return "\n".join(parts)


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment."""

    name: str
    title: str
    runner: Callable[..., ExperimentReport]
    expensive: bool = False
    description: str = ""


# ---------------------------------------------------------------------------
# Quick (analysis-only or single-simulation) experiments
# ---------------------------------------------------------------------------
def _table1(**_options) -> ExperimentReport:
    table = storage_requirements_table(list(EFFICIENTNET_VARIANTS), 1)
    rows = [
        [name, f"{req.max_working_set_mib:.2f} MiB", f"{req.weight_mib:.1f} MiB"]
        for name, req in ((n, table[n]) for n in EFFICIENTNET_VARIANTS)
    ]
    return ExperimentReport(
        "table1",
        "EfficientNet on-chip storage requirements (bf16, batch 1)",
        format_table(["Model", "Max Working Set", "Weights"], rows),
    )


def _table2(workload: str = "efficientnet-b7", **_options) -> ExperimentReport:
    breakdown = characterize_op_types(workload, TPU_V3)
    rows = [
        [b.op_type.value, f"{100 * b.flop_fraction:.2f}%", f"{100 * b.runtime_fraction:.2f}%"]
        for b in breakdown
    ]
    return ExperimentReport(
        "table2",
        f"{workload} per-op FLOP vs runtime share on the modeled TPU-v3",
        format_table(["Op Type", "FLOP %", "Runtime %"], rows),
        notes="Depthwise convolutions should dominate runtime despite a tiny FLOP share.",
    )


def _fig3(batch_sizes: Sequence[int] = (1, 8, 64), **_options) -> ExperimentReport:
    workloads = ["efficientnet-b0", "efficientnet-b7", "resnet50", "bert-seq128", "bert-seq1024"]
    rows = []
    for workload in workloads:
        for batch in batch_sizes:
            report = intensity_report(build_workload(workload, batch_size=batch))
            rows.append(
                [workload, batch]
                + [f"{report[s]:.0f}" for s in ("none", "xla", "block", "ideal")]
            )
    return ExperimentReport(
        "fig3",
        "Operational intensity (FLOPs/byte) by fusion strategy and batch size",
        format_table(["Workload", "Batch", "No fusion", "XLA", "Block", "Ideal"], rows),
        notes="Models below ~200 FLOPs/byte are bandwidth-bound on TPU-v3-class hardware.",
    )


def _fig4(workload: str = "efficientnet-b7", **_options) -> ExperimentReport:
    utilization = per_layer_utilization(workload, TPU_V3)
    chart = sparkline(utilization)
    mean = sum(utilization) / len(utilization) if utilization else 0.0
    return ExperimentReport(
        "fig4",
        f"{workload} per-layer fraction of peak FLOPs on the modeled TPU-v3",
        f"per-layer utilization ({len(utilization)} matrix layers)\n{chart}\nmean = {mean:.3f}",
        notes="Early layers (few channels) should show markedly lower utilization.",
    )


def _fig5(sequence_lengths: Sequence[int] = (128, 256, 512, 1024, 2048), **_options) -> ExperimentReport:
    breakdown = bert_component_breakdown(TPU_V3, list(sequence_lengths))
    components = ["qkv_projection", "feed_forward", "self_attention", "softmax", "other"]
    rows = []
    for seq_len in sequence_lengths:
        shares = breakdown[seq_len]
        rows.append([seq_len] + [f"{100 * shares.get(c, 0.0):.1f}%" for c in components])
    return ExperimentReport(
        "fig5",
        "BERT runtime share per component vs sequence length (modeled TPU-v3)",
        format_table(["Seq len"] + components, rows),
        notes="Softmax + self-attention shares should grow toward long sequence lengths.",
    )


def _fig6(**_options) -> ExperimentReport:
    model = RoiModel()
    volumes = [500, 1000, 2000, 4000, 8000, 16000, 32000]
    speedups = [1.5, 2.0, 4.0, 10.0, 100.0]
    rows = []
    for volume in volumes:
        rows.append([volume] + [f"{model.roi(volume, s):.2f}" for s in speedups])
    return ExperimentReport(
        "fig6",
        "ROI vs deployment volume for hypothetical Perf/TCO speedups",
        format_table(["Volume"] + [f"{s}x" for s in speedups], rows),
        notes="ROI above 1 is profitable; volume matters more than extra speedup.",
    )


def _table4(workloads: Optional[Sequence[str]] = None, **_options) -> ExperimentReport:
    # Perf/TDP speedups of FAST-Large over the modeled TPU-v3, then the
    # deployment volume needed for each ROI target (paper Table 4).
    workloads = list(workloads or ["efficientnet-b1", "resnet50", "bert-seq128"])
    ap = AreaPowerModel()
    tpu_tdp = ap.tdp_w(TPU_V3)
    fast_tdp = ap.tdp_w(FAST_LARGE)
    model = RoiModel()
    targets = [1.0, 2.0, 4.0, 8.0]
    rows = []
    for workload in workloads:
        tpu_qps = Simulator(TPU_V3).simulate_workload(workload).qps
        fast_qps = Simulator(FAST_LARGE).simulate_workload(workload).qps
        speedup = (fast_qps / fast_tdp) / (tpu_qps / tpu_tdp)
        rows.append(
            [workload, f"{speedup:.2f}x"]
            + [model.deployment_volume_for_roi(t, speedup) for t in targets]
        )
    return ExperimentReport(
        "table4",
        "Deployment volume required to reach ROI targets (FAST-Large vs TPU-v3)",
        format_table(["Workload", "Perf/TCO", "1x ROI", "2x ROI", "4x ROI", "8x ROI"], rows),
        notes="Break-even volumes in the low thousands of accelerators match the paper's band.",
    )


def _table5(workload: str = "efficientnet-b1", **_options) -> ExperimentReport:
    designs = {"TPU-v3": TPU_V3, "FAST-Large": FAST_LARGE, "FAST-Small": FAST_SMALL}
    ap = AreaPowerModel()
    rows = []
    for name, config in designs.items():
        result = Simulator(config).simulate_workload(workload)
        breakdown = ap.evaluate(config)
        rows.append(
            [
                name,
                f"{config.peak_matrix_flops / 1e12:.0f} TFLOPS",
                f"{config.dram_bandwidth_bytes_per_s / 1e9:.0f} GB/s",
                config.num_pes,
                f"{config.systolic_array_x}x{config.systolic_array_y}",
                config.l3_global_buffer_mib,
                config.native_batch_size,
                f"{result.compute_utilization:.2f}",
                f"{result.qps:.0f}",
                f"{breakdown.total_tdp_w:.0f} W",
                f"{result.qps / breakdown.total_tdp_w:.2f}",
            ]
        )
    return ExperimentReport(
        "table5",
        f"Example designs (evaluated on {workload})",
        format_table(
            ["Design", "Peak", "BW", "PEs", "Systolic", "GM MiB", "Batch", "Util", "QPS", "TDP", "QPS/W"],
            rows,
        ),
        notes="FAST designs should reach much higher utilization and QPS/W than TPU-v3; "
        "run the Table 5 benchmark for the EfficientNet-B7 numbers.",
    )


def _fig13(workload: str = "efficientnet-b0", **_options) -> ExperimentReport:
    gm_sizes = [16, 32, 64, 128]
    batch_sizes = [1, 8, 64]
    rows = []
    for batch in batch_sizes:
        row = [batch]
        for gm in gm_sizes:
            config = FAST_LARGE.evolve(l3_global_buffer_mib=gm, native_batch_size=batch)
            result = Simulator(config).simulate_workload(workload)
            row.append(f"{result.operational_intensity(post_fusion=True):.0f}")
        rows.append(row)
    return ExperimentReport(
        "fig13",
        f"{workload} post-fusion operational intensity: Global Memory x batch size",
        format_table(["Batch \\ GM MiB"] + [str(g) for g in gm_sizes], rows),
        notes=f"Intensity should rise with Global Memory and fall with batch size; "
        f"the FAST-Large ridgepoint is {FAST_LARGE.operational_intensity_ridgepoint:.0f}.",
    )


# ---------------------------------------------------------------------------
# Search-driven experiments (small default budgets)
# ---------------------------------------------------------------------------
# Batch size used by the search-driven smoke experiments regardless of the
# `workers` option: the optimizer trajectory depends on the batch size, so
# worker count must only affect wall-clock time, not the reported figures.
_SMOKE_BATCH_SIZE = 4
def _fig11(
    workload: str = "efficientnet-b0", trials: int = 24, workers: int = 1, **_options
) -> ExperimentReport:
    from repro.runtime import make_executor

    curves = {}
    with make_executor(workers) as executor:
        for optimizer in ("random", "bayesian", "lcs"):
            problem = SearchProblem([workload], ObjectiveKind.PERF_PER_TDP)
            search = FASTSearch(problem, optimizer=optimizer, seed=0, executor=executor)
            # Fixed batch size: the search trajectory depends on the batch
            # size, so `workers` must only change the wall-clock, never the
            # curves being compared.
            result = search.run(num_trials=trials, batch_size=_SMOKE_BATCH_SIZE)
            curves[optimizer] = result.best_score_curve
    chart = line_plot(curves, title=f"best Perf/TDP score vs trial ({workload}, {trials} trials)")
    return ExperimentReport(
        "fig11",
        "Search convergence: Bayesian vs random vs LCS",
        chart,
        notes="The paper's separation between heuristics appears at thousands of trials; "
        "this is a smoke-scale run (use --option trials=N / workers=N and the fig11 "
        "benchmark for more).",
    )


def _fig9_quick(
    workload: str = "efficientnet-b0", trials: int = 30, workers: int = 1, **_options
) -> ExperimentReport:
    from repro.runtime import make_executor

    problem = SearchProblem([workload], ObjectiveKind.THROUGHPUT)
    with make_executor(workers) as executor:
        search = FASTSearch(
            problem, optimizer="lcs", seed=0, seed_configs=[FAST_LARGE], executor=executor
        )
        result = search.run(num_trials=trials, batch_size=_SMOKE_BATCH_SIZE)
    baseline = Simulator(TPU_V3).simulate_workload(workload, batch_size=TPU_V3.native_batch_size)
    speedup = result.best_metrics.per_workload_qps[workload] / baseline.qps
    chart = bar_chart({"TPU-v3": 1.0, "FAST search": speedup}, unit="x")
    return ExperimentReport(
        "fig9",
        f"Single-workload FAST search speedup over TPU-v3 ({workload})",
        chart,
        notes="Smoke-scale run of the Figure 9 experiment; the benchmark harness sweeps all workloads.",
    )


def _sweep_smoke(
    workload: str = "efficientnet-b0",
    trials: int = 24,
    shards: int = 2,
    workers: int = 1,
    optimizer: str = "lcs",
    **_options,
) -> ExperimentReport:
    from repro.runtime import make_executor
    from repro.runtime.sharding import run_sharded_sweep

    problem = SearchProblem([workload], ObjectiveKind.PERF_PER_TDP)
    with make_executor(workers) as executor:
        sweep = run_sharded_sweep(
            problem,
            total_trials=trials,
            num_shards=shards,
            optimizer=optimizer,
            seed=0,
            batch_size=_SMOKE_BATCH_SIZE,
            executor=executor,
        )
    rows = []
    for spec in sweep.shards:
        best = sweep.shard_best_scores.get(spec.shard_id, float("nan"))
        rows.append(
            [spec.shard_id, spec.seed, spec.num_trials,
             "-" if best != best else f"{best:.3f}"]
        )
    summary = (
        f"unique trials: {sweep.num_trials}   duplicates removed: "
        f"{sweep.duplicates_removed}   Pareto-front size: {len(sweep.pareto_front)}\n"
        f"best score: {sweep.best_score:.3f}"
        + (f" (shard {sweep.best_trial.shard_id})" if sweep.best_trial else "")
    )
    return ExperimentReport(
        "sweep",
        f"Sharded sweep over {workload} ({shards} shards, {trials} trials total)",
        format_table(["Shard", "Seed", "Trials", "Best score"], rows) + "\n\n" + summary,
        notes="Shards are decorrelated seed streams of one search; the merged front "
        "equals the union of the per-shard fronts (see `repro sweep`).",
    )


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in [
        ExperimentSpec("table1", "EfficientNet storage requirements", _table1,
                       description="Working-set and weight footprints for B0-B7."),
        ExperimentSpec("table2", "EfficientNet-B7 op runtime breakdown", _table2, expensive=True,
                       description="FLOP share vs runtime share per op type on TPU-v3."),
        ExperimentSpec("fig3", "Operational intensity vs fusion strategy", _fig3,
                       description="Figure 3 intensity groups for the main workloads."),
        ExperimentSpec("fig4", "EfficientNet-B7 per-layer utilization", _fig4, expensive=True,
                       description="Per-layer fraction of peak FLOPs on TPU-v3."),
        ExperimentSpec("fig5", "BERT runtime share vs sequence length", _fig5, expensive=True,
                       description="QKV / attention / softmax / FFN shares, seq 128-2048."),
        ExperimentSpec("fig6", "ROI vs deployment volume", _fig6,
                       description="Eq. 1-2 ROI curves for hypothetical speedups."),
        ExperimentSpec("table4", "Deployment volume for ROI targets", _table4, expensive=True,
                       description="Volumes needed for 1x-8x ROI from measured Perf/TDP."),
        ExperimentSpec("table5", "Example designs comparison", _table5, expensive=True,
                       description="TPU-v3 vs FAST-Large vs FAST-Small datapaths."),
        ExperimentSpec("fig13", "Fusion sweep: Global Memory x batch", _fig13, expensive=True,
                       description="Post-fusion operational intensity sweep."),
        ExperimentSpec("fig11", "Search convergence comparison", _fig11, expensive=True,
                       description="Random vs Bayesian vs LCS best-so-far curves."),
        ExperimentSpec("fig9", "Single-workload search speedup (smoke)", _fig9_quick, expensive=True,
                       description="Small-budget FAST search vs the TPU-v3 baseline."),
        ExperimentSpec("sweep", "Sharded sweep (smoke)", _sweep_smoke, expensive=True,
                       description="N-shard sweep merged into one deduplicated result."),
    ]
}


def list_experiments() -> List[ExperimentSpec]:
    """All registered experiments in a stable order."""
    return [EXPERIMENTS[name] for name in sorted(EXPERIMENTS)]


def run_experiment(name: str, **options) -> ExperimentReport:
    """Run one registered experiment by name.

    Args:
        name: Experiment id (e.g. ``table1``, ``fig13``).
        options: Forwarded to the experiment runner (e.g. ``workload=...``,
            ``trials=...``).

    Raises:
        KeyError: If the experiment name is not registered.
    """
    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; available: {known}")
    return EXPERIMENTS[name].runner(**options)
