"""JSON serialization of datapath configurations and search results.

Search runs are expensive; these helpers let users persist the designs FAST
finds (and the full trial history) and reload them later for re-simulation,
ablation, or deployment studies without re-running the search.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.fast import FASTSearchResult
from repro.core.trial import TrialMetrics
from repro.hardware.datapath import BufferConfig, DatapathConfig, L2Config, MemoryTechnology

__all__ = [
    "config_to_dict",
    "config_from_dict",
    "save_config",
    "load_config",
    "trial_metrics_to_dict",
    "search_result_to_dict",
    "save_search_result",
]

_ENUM_FIELDS = {
    "l1_buffer_config": BufferConfig,
    "l2_buffer_config": L2Config,
    "memory_technology": MemoryTechnology,
}


def config_to_dict(config: DatapathConfig) -> Dict[str, object]:
    """Convert a datapath configuration to a JSON-compatible dictionary."""
    result: Dict[str, object] = {}
    for name, value in config.__dict__.items():
        if name in _ENUM_FIELDS:
            result[name] = value.value
        else:
            result[name] = value
    return result


def config_from_dict(data: Dict[str, object]) -> DatapathConfig:
    """Rebuild a datapath configuration from :func:`config_to_dict` output."""
    kwargs = dict(data)
    for name, enum_type in _ENUM_FIELDS.items():
        if name in kwargs and not isinstance(kwargs[name], enum_type):
            kwargs[name] = enum_type(kwargs[name])
    return DatapathConfig(**kwargs)


def save_config(config: DatapathConfig, path: Union[str, Path]) -> Path:
    """Write a configuration to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(config_to_dict(config), indent=2, sort_keys=True))
    return path


def load_config(path: Union[str, Path]) -> DatapathConfig:
    """Read a configuration previously written by :func:`save_config`."""
    return config_from_dict(json.loads(Path(path).read_text()))


def trial_metrics_to_dict(metrics: TrialMetrics) -> Dict[str, object]:
    """Convert trial metrics (one evaluated design) to a JSON-compatible dict."""
    return {
        "config": config_to_dict(metrics.config) if metrics.config is not None else None,
        "area_mm2": metrics.area_mm2,
        "tdp_w": metrics.tdp_w,
        "feasible": metrics.feasible,
        "failure_reason": metrics.failure_reason,
        "per_workload_qps": dict(metrics.per_workload_qps),
        "per_workload_latency_ms": dict(metrics.per_workload_latency_ms),
        "per_workload_utilization": dict(metrics.per_workload_utilization),
        "aggregate_score": metrics.aggregate_score,
    }


def search_result_to_dict(
    result: FASTSearchResult, include_history: bool = False
) -> Dict[str, object]:
    """Convert a search result to a JSON-compatible dict."""
    payload: Dict[str, object] = {
        "workloads": list(result.problem.workloads),
        "objective": result.problem.objective.value,
        "num_trials": result.num_trials,
        "num_feasible_trials": result.num_feasible_trials,
        "best_score": result.best_score,
        "best_config": (
            config_to_dict(result.best_config) if result.best_config is not None else None
        ),
        "best_metrics": (
            trial_metrics_to_dict(result.best_metrics)
            if result.best_metrics is not None
            else None
        ),
        "best_score_curve": list(result.best_score_curve),
    }
    if include_history:
        payload["history"] = [trial_metrics_to_dict(m) for m in result.history]
    return payload


def save_search_result(
    result: FASTSearchResult, path: Union[str, Path], include_history: bool = False
) -> Path:
    """Write a search result (and optionally its full history) to JSON."""
    path = Path(path)
    path.write_text(json.dumps(search_result_to_dict(result, include_history), indent=2))
    return path
