"""JSON serialization of datapath configurations and search results.

Search runs are expensive; these helpers let users persist the designs FAST
finds (and the full trial history) and reload them later for re-simulation,
ablation, or deployment studies without re-running the search.
"""

from __future__ import annotations

import dataclasses
import json
import math
from enum import Enum
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.fast import FASTSearchResult, RuntimeStats
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialMetrics
from repro.hardware.datapath import BufferConfig, DatapathConfig, L2Config, MemoryTechnology
from repro.hardware.search_space import DatapathSearchSpace, ParameterValues
from repro.hardware.tpu import EvaluationConstraints

__all__ = [
    "config_to_dict",
    "config_from_dict",
    "save_config",
    "load_config",
    "params_to_jsonable",
    "params_from_jsonable",
    "search_problem_to_dict",
    "search_problem_from_dict",
    "simulation_options_to_dict",
    "simulation_options_from_dict",
    "trial_metrics_to_dict",
    "trial_metrics_from_dict",
    "runtime_stats_to_dict",
    "runtime_stats_from_dict",
    "search_result_to_dict",
    "save_search_result",
]

_ENUM_FIELDS = {
    "l1_buffer_config": BufferConfig,
    "l2_buffer_config": L2Config,
    "memory_technology": MemoryTechnology,
}


def config_to_dict(config: DatapathConfig) -> Dict[str, object]:
    """Convert a datapath configuration to a JSON-compatible dictionary."""
    result: Dict[str, object] = {}
    for name, value in config.__dict__.items():
        if name in _ENUM_FIELDS:
            result[name] = value.value
        else:
            result[name] = value
    return result


def config_from_dict(data: Dict[str, object]) -> DatapathConfig:
    """Rebuild a datapath configuration from :func:`config_to_dict` output."""
    kwargs = dict(data)
    for name, enum_type in _ENUM_FIELDS.items():
        if name in kwargs and not isinstance(kwargs[name], enum_type):
            kwargs[name] = enum_type(kwargs[name])
    return DatapathConfig(**kwargs)


def save_config(config: DatapathConfig, path: Union[str, Path]) -> Path:
    """Write a configuration to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(config_to_dict(config), indent=2, sort_keys=True))
    return path


def load_config(path: Union[str, Path]) -> DatapathConfig:
    """Read a configuration previously written by :func:`save_config`."""
    return config_from_dict(json.loads(Path(path).read_text()))


def params_to_jsonable(params: ParameterValues) -> Dict[str, object]:
    """Encode a search-space parameter assignment as plain JSON values.

    Enum-valued parameters (buffer/L2 configurations, memory technology) are
    replaced by their ``.value``; everything else in the space is already a
    JSON scalar.  Keys are sorted so the output doubles as a canonical form
    for hashing (see :mod:`repro.runtime.cache`).
    """
    encoded: Dict[str, object] = {}
    for name in sorted(params):
        value = params[name]
        encoded[name] = value.value if isinstance(value, Enum) else value
    return encoded


def params_from_jsonable(
    data: Dict[str, object], space: DatapathSearchSpace
) -> ParameterValues:
    """Inverse of :func:`params_to_jsonable`, resolved against a search space.

    Each raw value is matched back to the spec's choice object (so enums are
    restored); unknown parameters are passed through untouched.
    """
    params: ParameterValues = {}
    spec_by_name = {spec.name: spec for spec in space.specs}
    for name, raw in data.items():
        spec = spec_by_name.get(name)
        if spec is None:
            params[name] = raw
            continue
        for choice in spec.choices:
            if choice == raw or (isinstance(choice, Enum) and choice.value == raw):
                params[name] = choice
                break
        else:
            raise ValueError(f"value {raw!r} is not a choice of parameter {name!r}")
    return params


def search_problem_to_dict(problem: SearchProblem) -> Dict[str, object]:
    """Encode a search problem as plain JSON values (the remote wire form)."""
    return {
        "workloads": list(problem.workloads),
        "objective": problem.objective.value,
        "constraints": {
            "max_area_mm2": problem.constraints.max_area_mm2,
            "max_tdp_w": problem.constraints.max_tdp_w,
        },
        "baseline_qps": dict(problem.baseline_qps),
    }


def search_problem_from_dict(data: Dict[str, object]) -> SearchProblem:
    """Inverse of :func:`search_problem_to_dict`."""
    constraints = data.get("constraints")
    return SearchProblem(
        workloads=list(data["workloads"]),
        objective=ObjectiveKind(data["objective"]),
        constraints=(
            EvaluationConstraints(
                max_area_mm2=float(constraints["max_area_mm2"]),
                max_tdp_w=float(constraints["max_tdp_w"]),
            )
            if constraints is not None
            else None
        ),
        baseline_qps=dict(data.get("baseline_qps") or {}),
    )


def simulation_options_to_dict(options) -> Dict[str, object]:
    """Encode :class:`~repro.simulator.engine.SimulationOptions` as JSON values.

    ``mapper_options`` (when set) is flattened to its scalar knobs with
    dataflow enums replaced by their values.
    """
    payload: Dict[str, object] = {}
    for name, value in sorted(vars(options).items()):
        if name == "mapper_options" and value is not None:
            payload[name] = {
                "dataflows": [d.value for d in value.dataflows],
                "max_tiling_candidates": value.max_tiling_candidates,
                "padding_max_overhead": value.padding_max_overhead,
                "vectorize": value.vectorize,
                "backend": value.backend,
            }
        else:
            payload[name] = getattr(value, "value", value)
    return payload


def simulation_options_from_dict(data: Dict[str, object]):
    """Inverse of :func:`simulation_options_to_dict` (unknown keys ignored)."""
    import dataclasses as _dc

    from repro.mapping.dataflow import Dataflow
    from repro.mapping.mapper import MapperOptions
    from repro.simulator.engine import SimulationOptions

    known = {field.name for field in _dc.fields(SimulationOptions)}
    kwargs = {key: value for key, value in data.items() if key in known}
    mapper = kwargs.get("mapper_options")
    if mapper is not None:
        kwargs["mapper_options"] = MapperOptions(
            dataflows=tuple(Dataflow(d) for d in mapper["dataflows"]),
            max_tiling_candidates=int(mapper["max_tiling_candidates"]),
            padding_max_overhead=float(mapper["padding_max_overhead"]),
            vectorize=bool(mapper["vectorize"]),
            backend=str(mapper.get("backend", "numpy")),
        )
    return SimulationOptions(**kwargs)


def trial_metrics_to_dict(metrics: TrialMetrics) -> Dict[str, object]:
    """Convert trial metrics (one evaluated design) to a JSON-compatible dict."""
    return {
        "config": config_to_dict(metrics.config) if metrics.config is not None else None,
        "area_mm2": metrics.area_mm2,
        "tdp_w": metrics.tdp_w,
        "feasible": metrics.feasible,
        "failure_reason": metrics.failure_reason,
        "per_workload_qps": dict(metrics.per_workload_qps),
        "per_workload_latency_ms": dict(metrics.per_workload_latency_ms),
        "per_workload_utilization": dict(metrics.per_workload_utilization),
        "aggregate_score": metrics.aggregate_score,
        "objective_value": metrics.objective_value,
    }


def trial_metrics_from_dict(data: Dict[str, object]) -> TrialMetrics:
    """Rebuild trial metrics from :func:`trial_metrics_to_dict` output.

    Used by the runtime's persistent trial cache and checkpoint files; older
    records without ``objective_value`` get the infeasible default (``inf``).
    """
    config = data.get("config")
    return TrialMetrics(
        config=config_from_dict(config) if config is not None else None,
        area_mm2=float(data["area_mm2"]),
        tdp_w=float(data["tdp_w"]),
        feasible=bool(data["feasible"]),
        failure_reason=data.get("failure_reason"),
        per_workload_qps=dict(data.get("per_workload_qps") or {}),
        per_workload_latency_ms=dict(data.get("per_workload_latency_ms") or {}),
        per_workload_utilization=dict(data.get("per_workload_utilization") or {}),
        aggregate_score=float(data.get("aggregate_score", 0.0)),
        objective_value=float(data.get("objective_value", math.inf)),
    )


def runtime_stats_to_dict(stats: RuntimeStats) -> Dict[str, object]:
    """Convert runtime statistics (counters + per-stage timings) to a dict."""
    return dataclasses.asdict(stats)


def runtime_stats_from_dict(data: Dict[str, object]) -> RuntimeStats:
    """Rebuild runtime statistics from :func:`runtime_stats_to_dict` output.

    Unknown keys are ignored and missing ones get their defaults, so records
    written before the op-cache / per-stage-timing fields existed still load.
    """
    known = {field.name for field in dataclasses.fields(RuntimeStats)}
    return RuntimeStats(**{key: value for key, value in data.items() if key in known})


def search_result_to_dict(
    result: FASTSearchResult, include_history: bool = False
) -> Dict[str, object]:
    """Convert a search result to a JSON-compatible dict."""
    payload: Dict[str, object] = {
        "workloads": list(result.problem.workloads),
        "objective": result.problem.objective.value,
        "num_trials": result.num_trials,
        "num_feasible_trials": result.num_feasible_trials,
        # best_score is NaN when nothing feasible was found; JSON has no NaN,
        # so the "no best" case serializes as null.
        "best_score": None if result.best_metrics is None else result.best_score,
        "best_config": (
            config_to_dict(result.best_config) if result.best_config is not None else None
        ),
        "best_metrics": (
            trial_metrics_to_dict(result.best_metrics)
            if result.best_metrics is not None
            else None
        ),
        "best_score_curve": list(result.best_score_curve),
    }
    if result.runtime is not None:
        payload["runtime"] = runtime_stats_to_dict(result.runtime)
    if result.pareto_front is not None and len(result.pareto_front):
        payload["pareto_front"] = [
            {
                "objectives": list(point.objectives),
                "payload": {
                    key: params_to_jsonable(value) if isinstance(value, dict) else value
                    for key, value in point.payload.items()
                },
            }
            for point in result.pareto_front.sorted_by(0)
        ]
    if include_history:
        payload["history"] = [trial_metrics_to_dict(m) for m in result.history]
        payload["proposals"] = [params_to_jsonable(p) for p in result.proposals]
    return payload


def save_search_result(
    result: FASTSearchResult, path: Union[str, Path], include_history: bool = False
) -> Path:
    """Write a search result (and optionally its full history) to JSON."""
    path = Path(path)
    path.write_text(json.dumps(search_result_to_dict(result, include_history), indent=2))
    return path
