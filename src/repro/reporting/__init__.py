"""Reporting: tables, terminal plots, experiment registry, and serialization."""

from repro.reporting.ascii_plots import bar_chart, line_plot, sparkline
from repro.reporting.experiments import (
    EXPERIMENTS,
    ExperimentReport,
    ExperimentSpec,
    list_experiments,
    run_experiment,
)
from repro.reporting.serialization import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
    save_search_result,
    search_result_to_dict,
    trial_metrics_to_dict,
)
from repro.reporting.tables import format_kv, format_table, to_csv, to_markdown

__all__ = [
    "EXPERIMENTS",
    "ExperimentReport",
    "ExperimentSpec",
    "bar_chart",
    "config_from_dict",
    "config_to_dict",
    "format_kv",
    "format_table",
    "line_plot",
    "list_experiments",
    "load_config",
    "run_experiment",
    "save_config",
    "save_search_result",
    "search_result_to_dict",
    "sparkline",
    "to_csv",
    "to_markdown",
    "trial_metrics_to_dict",
]
