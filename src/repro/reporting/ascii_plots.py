"""Terminal-friendly plots for figure regeneration (no plotting dependencies).

The benchmark harness regenerates the paper's figures as data series; these
helpers render those series as horizontal bar charts, sparklines, and simple
scatter/line plots so the shapes (who wins, where crossovers fall) are
visible directly in a terminal or in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_chart", "sparkline", "line_plot"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bar chart of labeled values (e.g. per-workload speedups)."""
    if not values:
        return title
    max_value = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "█" * max(1, int(round(width * abs(value) / max_value)))
        lines.append(f"{str(label).ljust(label_width)}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a numeric series (e.g. a convergence curve)."""
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK_LEVELS[int((v - lo) / span * (len(_SPARK_LEVELS) - 1))] for v in values
    )


def line_plot(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[float] = None,
    height: int = 12,
    width: int = 60,
    title: str = "",
) -> str:
    """Character-grid line plot of one or more named series.

    Each series is resampled onto ``width`` columns and drawn with its own
    marker; a legend maps markers back to series names.
    """
    markers = "*o+x#@%&"
    all_values = [v for values in series.values() for v in values if values]
    if not all_values:
        return title
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]

    for idx, (name, values) in enumerate(series.items()):
        values = list(values)
        if not values:
            continue
        marker = markers[idx % len(markers)]
        for col in range(width):
            src = col * (len(values) - 1) / max(width - 1, 1) if len(values) > 1 else 0
            value = values[int(round(src))]
            row = height - 1 - int(round((value - lo) / span * (height - 1)))
            grid[row][col] = marker

    lines = [title] if title else []
    lines.append(f"{hi:.3g}".rjust(10) + " ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{lo:.3g}".rjust(10) + " ┤" + "".join(grid[-1]))
    if x_values is not None and len(x_values) >= 2:
        lines.append(" " * 12 + f"{x_values[0]:<10.4g}" + " " * max(0, width - 20) + f"{x_values[-1]:>10.4g}")
    legend = "   ".join(
        f"{markers[idx % len(markers)]} {name}" for idx, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
