"""Compiler pipeline: lowering a workload graph for simulation.

The pipeline mirrors the paper's flow: the input graph (standing in for an
XLA HLO module) is partitioned into XLA-style fusion regions, and per-op
lowering decisions that FAST exposes as search hyperparameters (currently
the two-pass softmax) are recorded so the simulator can apply the right cost
model.  FAST fusion itself is *not* a compiler pass here — it is applied by
the simulator after per-region performance is known, exactly as in Figure 1
where the ILP consumes simulator statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.compiler.softmax import SoftmaxCostFactors, softmax_cost_factors
from repro.compiler.xla_fusion import FusionRegion, build_fusion_regions
from repro.workloads.graph import Graph
from repro.workloads.ops import OpType

__all__ = ["CompiledModel", "compile_graph"]


@dataclass
class CompiledModel:
    """A workload graph lowered into fusion regions plus lowering choices.

    Attributes:
        graph: The source graph.
        regions: XLA-style fusion regions in execution order.
        softmax_factors: Cost descriptor for the selected softmax lowering.
        use_two_pass_softmax: Whether the two-pass lowering was selected.
    """

    graph: Graph
    regions: List[FusionRegion]
    softmax_factors: SoftmaxCostFactors
    use_two_pass_softmax: bool

    @property
    def num_regions(self) -> int:
        """Number of fusion regions."""
        return len(self.regions)

    def region_of(self, op_name: str) -> FusionRegion:
        """Find the region containing a given op."""
        for region in self.regions:
            if any(op.name == op_name for op in region.ops):
                return region
        raise KeyError(f"op {op_name!r} not found in any region")

    def internal_traffic_saved_bytes(self) -> int:
        """DRAM bytes avoided by XLA fusion (internal tensors never spill)."""
        total = 0
        for region in self.regions:
            for tname in region.internal_tensors:
                # Each internal tensor would otherwise be written and re-read.
                total += 2 * self.graph.tensor(tname).size_bytes
        return total

    def op_type_histogram(self) -> Dict[OpType, int]:
        """Count of ops per type (useful for reports and tests)."""
        histogram: Dict[OpType, int] = {}
        for region in self.regions:
            for op in region.ops:
                histogram[op.op_type] = histogram.get(op.op_type, 0) + 1
        return histogram


def compile_graph(graph: Graph, use_two_pass_softmax: bool = False) -> CompiledModel:
    """Lower ``graph`` into a :class:`CompiledModel`.

    Args:
        graph: The workload graph (already at the desired batch size).
        use_two_pass_softmax: Select the two-pass softmax lowering
            (Section 5.6) for all softmax ops in the model.
    """
    regions = build_fusion_regions(graph)
    return CompiledModel(
        graph=graph,
        regions=regions,
        softmax_factors=softmax_cost_factors(use_two_pass_softmax),
        use_two_pass_softmax=use_two_pass_softmax,
    )
