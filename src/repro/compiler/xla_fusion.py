"""XLA-style fusion region construction.

XLA can create large fusions, but each generated HLO fusion region contains
at most one matrix operation (Conv2D, einsum, matmul — Section 2).  This pass
reproduces that behaviour on our graph IR: it walks the graph in execution
order and greedily attaches element-wise / activation / normalization ops to
the region of the matrix op that produces their input, subject to the
one-matrix-op-per-region rule.  The resulting regions are the granularity at
which the simulator accounts DRAM traffic (intermediate tensors inside a
region never leave the chip) and the granularity on which FAST fusion's ILP
later operates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.workloads.graph import Graph, Operation, TensorKind
from repro.workloads.ops import OpType, is_matrix_op

__all__ = ["FusionRegion", "build_fusion_regions"]

# Op types that XLA will happily fuse into a producer's region.
_FUSABLE_TYPES = {
    OpType.ELEMENTWISE_ADD,
    OpType.ELEMENTWISE_MUL,
    OpType.ACTIVATION,
    OpType.BATCHNORM,
    OpType.LAYERNORM,
    OpType.SOFTMAX,
    OpType.POOLING,
    OpType.REDUCE,
    OpType.TRANSPOSE,
    OpType.RESHAPE,
    OpType.CONCAT,
    OpType.SLICE,
}


#: A matrix op this small is treated as an epilogue computation (XLA fuses
#: small dots — e.g. squeeze-and-excite FC layers on pooled features — into
#: the surrounding fusion rather than emitting a separate kernel).  The
#: thresholds are deliberately tight so that real projection/attention
#: matmuls (BERT QKV, classifier heads) still anchor their own regions.
_SMALL_MATRIX_OUTPUT_ELEMENTS = 1 << 16
_SMALL_MATRIX_WEIGHT_ELEMENTS = 1 << 17


@dataclass
class FusionRegion:
    """A group of ops executed as one fused kernel.

    Attributes:
        index: Execution-order index of the region.
        ops: Member operations in execution order.
        matrix_op: The region's *anchor* matrix op, if any (small epilogue
            matrix ops such as squeeze-and-excite FCs may also be members —
            see :meth:`matrix_ops`).
        input_tensors: Region-external activation inputs (read from DRAM or
            Global Memory).
        output_tensors: Activation outputs consumed outside the region (or
            graph outputs).
        weight_tensors: Weight/constant tensors read by the region.
        internal_tensors: Activations produced and consumed entirely within
            the region (never leave the chip).
    """

    index: int
    ops: List[Operation] = field(default_factory=list)
    matrix_op: Optional[Operation] = None
    input_tensors: List[str] = field(default_factory=list)
    output_tensors: List[str] = field(default_factory=list)
    weight_tensors: List[str] = field(default_factory=list)
    internal_tensors: List[str] = field(default_factory=list)

    @property
    def matrix_ops(self) -> List[Operation]:
        """All matrix ops in the region (anchor plus absorbed small ones)."""
        return [op for op in self.ops if is_matrix_op(op.op_type)]

    @property
    def name(self) -> str:
        """Readable region name (anchored on the matrix op when present)."""
        anchor = self.matrix_op.name if self.matrix_op else (
            self.ops[0].name if self.ops else f"region{self.index}"
        )
        return f"fusion[{anchor}]"

    def input_bytes(self, graph: Graph) -> int:
        """Bytes of region-external activation inputs."""
        return sum(graph.tensor(t).size_bytes for t in self.input_tensors)

    def output_bytes(self, graph: Graph) -> int:
        """Bytes of region-external activation outputs."""
        return sum(graph.tensor(t).size_bytes for t in self.output_tensors)

    def weight_bytes(self, graph: Graph) -> int:
        """Bytes of weights read by the region."""
        return sum(graph.tensor(t).size_bytes for t in self.weight_tensors)


def build_fusion_regions(graph: Graph) -> List[FusionRegion]:
    """Partition a graph into XLA-style fusion regions.

    The partition respects execution order: a region is a contiguous run of
    ops in which at most one op is a matrix op and every non-matrix op's
    activation inputs are produced either inside the region or before it.
    """
    op_region: Dict[str, int] = {}
    regions: List[FusionRegion] = []

    def new_region() -> FusionRegion:
        region = FusionRegion(index=len(regions))
        regions.append(region)
        return region

    current: Optional[FusionRegion] = None
    for op in graph.ops:
        if is_matrix_op(op.op_type):
            if current is not None and _is_small_matrix_op(op, graph):
                # Small dots (squeeze-and-excite FCs and the like) are fused
                # into the surrounding region as epilogue computations when
                # they consume one of its values, rather than anchoring a
                # region of their own.
                producer_regions = {
                    op_region[producer.name]
                    for producer in graph.predecessors(op)
                    if producer.name in op_region
                }
                if not producer_regions or current.index in producer_regions:
                    current.ops.append(op)
                    op_region[op.name] = current.index
                    continue
            # A large matrix op always starts a new region (one anchor matrix
            # op per region, matching XLA's HLO fusions).
            current = new_region()
            current.matrix_op = op
            current.ops.append(op)
            op_region[op.name] = current.index
        else:
            # Attach to the producing region when possible.
            producer_regions = {
                op_region[producer.name]
                for producer in graph.predecessors(op)
                if producer.name in op_region
            }
            attach_to: Optional[FusionRegion] = None
            if current is not None and op.op_type in _FUSABLE_TYPES:
                # Fuse into the current region if this op consumes something
                # the current region produced (or has no graph-internal
                # producer at all, e.g. ops reading graph inputs).
                if not producer_regions or current.index in producer_regions:
                    attach_to = current
            if attach_to is None:
                current = new_region()
                attach_to = current
            attach_to.ops.append(op)
            op_region[op.name] = attach_to.index

    _annotate_region_tensors(graph, regions, op_region)
    return regions


def _is_small_matrix_op(op: Operation, graph: Graph) -> bool:
    """Whether a matrix op is small enough to fuse as an epilogue."""
    output_elements = sum(graph.tensor(t).num_elements for t in op.outputs)
    weight_elements = sum(
        graph.tensor(t).num_elements
        for t in op.inputs
        if graph.tensor(t).kind in (TensorKind.WEIGHT, TensorKind.CONSTANT)
    )
    return (
        output_elements <= _SMALL_MATRIX_OUTPUT_ELEMENTS
        and weight_elements <= _SMALL_MATRIX_WEIGHT_ELEMENTS
    )


def _annotate_region_tensors(
    graph: Graph, regions: List[FusionRegion], op_region: Dict[str, int]
) -> None:
    """Fill in the external/internal tensor lists of every region."""
    graph_outputs: Set[str] = set(graph.output_names)
    for region in regions:
        member_names = {op.name for op in region.ops}
        produced: Set[str] = set()
        for op in region.ops:
            produced.update(op.outputs)

        inputs: List[str] = []
        weights: List[str] = []
        for op in region.ops:
            for tname in op.inputs:
                tensor = graph.tensor(tname)
                if tensor.kind in (TensorKind.WEIGHT, TensorKind.CONSTANT):
                    if tname not in weights:
                        weights.append(tname)
                elif tname not in produced:
                    if tname not in inputs:
                        inputs.append(tname)

        outputs: List[str] = []
        internal: List[str] = []
        for tname in produced:
            consumers = graph.consumers(tname)
            escapes = tname in graph_outputs or any(
                consumer.name not in member_names for consumer in consumers
            )
            if escapes:
                outputs.append(tname)
            else:
                internal.append(tname)

        region.input_tensors = inputs
        region.output_tensors = sorted(outputs)
        region.weight_tensors = weights
        region.internal_tensors = sorted(internal)
