"""Softmax lowering strategies (Section 5.6).

Numerically-stable softmax needs three passes over its input vector
(Algorithm 1): a max pass, an exponentiation/sum pass, and a normalization
pass.  When the vector does not fit on chip each pass round-trips to DRAM.
The *two-pass* (online-normalizer) formulation of Algorithm 2 merges the
first two passes, eliminating one read of the input at the cost of up to 2N
extra exponential evaluations.  Whether that trade wins depends on the
accelerator's memory bandwidth and VPU throughput, so FAST exposes it as a
search hyperparameter.

This module provides both a *cost descriptor* used by the simulator's VPU
model and reference NumPy implementations used by the tests to verify the
two formulations are numerically equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SoftmaxCostFactors",
    "THREE_PASS_SOFTMAX",
    "TWO_PASS_SOFTMAX",
    "softmax_cost_factors",
    "reference_softmax",
    "three_pass_softmax",
    "two_pass_softmax",
]


@dataclass(frozen=True)
class SoftmaxCostFactors:
    """Relative cost multipliers of a softmax lowering.

    Attributes:
        input_traffic_factor: DRAM reads of the input vector, as a multiple
            of its size.
        output_traffic_factor: DRAM writes (plus temp traffic), as a multiple
            of the output size.
        flops_factor: VPU work relative to the baseline per-element cost.
    """

    input_traffic_factor: float
    output_traffic_factor: float
    flops_factor: float


#: Algorithm 1: max pass + exp/sum pass + normalize pass.  The input is read
#: twice, the temp vector is written and re-read, and the output written.
THREE_PASS_SOFTMAX = SoftmaxCostFactors(
    input_traffic_factor=2.0, output_traffic_factor=3.0, flops_factor=1.0
)

#: Algorithm 2: online normalizer.  One fewer pass over the input (no temp
#: vector), but up to 2N extra exponentials (~50% more VPU work).
TWO_PASS_SOFTMAX = SoftmaxCostFactors(
    input_traffic_factor=2.0, output_traffic_factor=1.0, flops_factor=1.5
)


def softmax_cost_factors(use_two_pass: bool) -> SoftmaxCostFactors:
    """Select the cost descriptor for the configured lowering."""
    return TWO_PASS_SOFTMAX if use_two_pass else THREE_PASS_SOFTMAX


# ----------------------------------------------------------------------
# Reference implementations (used by tests to check numerical equivalence).
# ----------------------------------------------------------------------
def reference_softmax(values: np.ndarray) -> np.ndarray:
    """Straightforward numerically-stable softmax (ground truth)."""
    values = np.asarray(values, dtype=np.float64)
    shifted = values - values.max(axis=-1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=-1, keepdims=True)


def three_pass_softmax(values: np.ndarray) -> np.ndarray:
    """Algorithm 1: explicit three-pass numerically-stable softmax."""
    values = np.asarray(values, dtype=np.float64)
    flat = values.reshape(-1, values.shape[-1])
    out = np.empty_like(flat)
    for row_idx, row in enumerate(flat):
        max_val = -np.inf
        for v in row:  # pass 1: max
            max_val = max(max_val, v)
        temp = np.empty_like(row)
        total = 0.0
        for i, v in enumerate(row):  # pass 2: exp + sum
            temp[i] = np.exp(v - max_val)
            total += temp[i]
        for i in range(len(row)):  # pass 3: normalize
            out[row_idx, i] = temp[i] / total
    return out.reshape(values.shape)


def two_pass_softmax(values: np.ndarray) -> np.ndarray:
    """Algorithm 2: online-normalizer (two-pass) softmax."""
    values = np.asarray(values, dtype=np.float64)
    flat = values.reshape(-1, values.shape[-1])
    out = np.empty_like(flat)
    for row_idx, row in enumerate(flat):
        running_max = -np.inf
        running_sum = 0.0
        for v in row:  # pass 1: fused max + sum
            new_max = max(running_max, v)
            running_sum = running_sum * np.exp(running_max - new_max) + np.exp(v - new_max)
            running_max = new_max
        for i, v in enumerate(row):  # pass 2: normalize
            out[row_idx, i] = np.exp(v - running_max) / running_sum
    return out.reshape(values.shape)
