"""Compiler passes: XLA-style fusion regions and softmax lowering."""

from repro.compiler.passes import CompiledModel, compile_graph
from repro.compiler.softmax import (
    THREE_PASS_SOFTMAX,
    TWO_PASS_SOFTMAX,
    SoftmaxCostFactors,
    reference_softmax,
    softmax_cost_factors,
    three_pass_softmax,
    two_pass_softmax,
)
from repro.compiler.xla_fusion import FusionRegion, build_fusion_regions

__all__ = [
    "CompiledModel",
    "FusionRegion",
    "SoftmaxCostFactors",
    "THREE_PASS_SOFTMAX",
    "TWO_PASS_SOFTMAX",
    "build_fusion_regions",
    "compile_graph",
    "reference_softmax",
    "softmax_cost_factors",
    "three_pass_softmax",
    "two_pass_softmax",
]
