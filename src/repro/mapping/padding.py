"""Tensor padding pre-processing pass.

Timeloop cannot handle problem dimensions that do not factorize cleanly into
the hardware datapath dimensions, so the paper adds a padding pre-processing
step that rounds problem dimensions up to the next multiple of the systolic
array dimensions when doing so improves utilization (Section 6.1).  Padding
trades extra (wasted) compute for regular mappings; this module decides when
that trade is worthwhile and reports the padded problem together with the
compute overhead it introduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

from repro.mapping.loopnest import MatrixProblem

__all__ = ["PaddingDecision", "pad_problem"]


@dataclass(frozen=True)
class PaddingDecision:
    """Result of the padding pass for one matrix op.

    Attributes:
        problem: The (possibly padded) problem handed to the mapper.
        padded_n / padded_k: Whether each dimension was padded.
        extra_flops: Additional FLOPs introduced by padding (wasted work).
        extra_bytes: Additional DRAM bytes introduced by padding the
            stationary operand (padded weights must still be fetched).
    """

    problem: MatrixProblem
    padded_n: bool
    padded_k: bool
    extra_flops: int
    extra_bytes: int


def _round_up(value: int, multiple: int) -> int:
    return int(math.ceil(value / multiple) * multiple)


def pad_problem(
    problem: MatrixProblem,
    array_x: int,
    array_y: int,
    max_overhead: float = 0.2,
) -> PaddingDecision:
    """Pad the N and K dimensions up to array multiples when cheap.

    A dimension is padded only when the padding overhead (extra MACs as a
    fraction of the original) stays below ``max_overhead``; otherwise the
    dimension is left ragged and the mapper's quantization efficiency model
    accounts for the partial tile instead.  Depthwise convolutions never pad
    the reduction dimension (padding a 3x3 kernel's 9-element reduction up to
    a 128-wide array would be a >14x overhead).
    """
    n_target = _round_up(problem.n, array_y) if problem.n % array_y else problem.n
    k_target = _round_up(problem.k, array_x) if problem.k % array_x else problem.k

    padded_n = False
    padded_k = False
    new_n, new_k = problem.n, problem.k

    if n_target != problem.n:
        overhead = (n_target - problem.n) / problem.n
        if overhead <= max_overhead:
            new_n = n_target
            padded_n = True

    if k_target != problem.k and not problem.is_depthwise:
        overhead = (k_target - problem.k) / problem.k
        if overhead <= max_overhead:
            new_k = k_target
            padded_k = True

    if not (padded_n or padded_k):
        return PaddingDecision(problem, False, False, 0, 0)

    dtype_bytes = 2
    old_macs = problem.macs
    new_macs = problem.m * new_n * new_k * problem.instances
    extra_flops = 2 * (new_macs - old_macs)

    old_stationary_elems = problem.k * problem.n * problem.instances
    new_stationary_elems = new_k * new_n * problem.instances
    extra_bytes = (new_stationary_elems - old_stationary_elems) * dtype_bytes

    padded = replace(
        problem,
        n=new_n,
        k=new_k,
        stationary_bytes=problem.stationary_bytes + extra_bytes,
    )
    return PaddingDecision(padded, padded_n, padded_k, extra_flops, extra_bytes)
