"""Extraction of matrix-op problem shapes from graph operations.

Every matrix op (Conv2D, DepthwiseConv2D, MatMul, Einsum) is lowered to a
canonical *GEMM-like problem*: stream ``M`` rows against a stationary
``K x N`` operand, optionally repeated over ``instances`` independent
problems whose stationary operands differ (the activation x activation case
of self-attention, where latching cannot be amortized across the batch).
This canonicalization is what both the mapper and the padding pass operate
on; it corresponds to the 7-D nested loop view of Section 3.1 with the
spatial dims folded into M.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.workloads.graph import Operation, Tensor, TensorKind
from repro.workloads.ops import OpType

__all__ = ["MatrixProblem", "extract_problem"]


@dataclass(frozen=True)
class MatrixProblem:
    """Canonical GEMM-like problem shape for one matrix operation.

    Attributes:
        m: Number of streamed rows per instance (batch x spatial positions,
            or batch x sequence for dense layers).
        n: Output features per instance (mapped to systolic array columns).
        k: Reduction depth per instance (mapped to systolic array rows).
        instances: Number of independent problems whose stationary operand
            differs and therefore requires a separate latch (1 for
            activation x weight ops; batch x heads for attention einsums).
        stationary_is_weight: True when the stationary operand is a weight
            tensor (reusable across inference requests and across the batch).
        is_depthwise: True for depthwise convolutions, whose reduction depth
            is only ``KH*KW`` — the root cause of their poor utilization on
            large systolic arrays (Section 3.2).
        input_bytes: DRAM footprint of the streamed (activation) operand.
        stationary_bytes: DRAM footprint of the stationary operand across all
            instances.
        output_bytes: DRAM footprint of the produced activations.
    """

    m: int
    n: int
    k: int
    instances: int
    stationary_is_weight: bool
    is_depthwise: bool
    input_bytes: int
    stationary_bytes: int
    output_bytes: int

    @property
    def macs(self) -> int:
        """Total multiply-accumulate count."""
        return self.m * self.n * self.k * self.instances

    @property
    def flops(self) -> int:
        """Total floating point operations (2 per MAC)."""
        return 2 * self.macs

    @property
    def total_bytes(self) -> int:
        """Minimum DRAM traffic with perfect on-chip reuse."""
        return self.input_bytes + self.stationary_bytes + self.output_bytes

    @property
    def operational_intensity(self) -> float:
        """FLOPs per DRAM byte assuming minimum traffic."""
        if self.total_bytes == 0:
            return float("inf")
        return self.flops / self.total_bytes


def extract_problem(op: Operation, tensors: Dict[str, Tensor]) -> MatrixProblem:
    """Lower a matrix op to its canonical :class:`MatrixProblem`.

    Raises:
        ValueError: If the op is not a matrix op.
    """
    if op.op_type is OpType.CONV2D:
        return _conv2d_problem(op, tensors)
    if op.op_type is OpType.DEPTHWISE_CONV2D:
        return _depthwise_problem(op, tensors)
    if op.op_type is OpType.MATMUL:
        return _matmul_problem(op, tensors)
    if op.op_type is OpType.EINSUM:
        return _einsum_problem(op, tensors)
    raise ValueError(f"op {op.name!r} ({op.op_type}) is not a matrix op")


def _tensor_bytes(tensors: Dict[str, Tensor], names, kind=None) -> int:
    total = 0
    for name in names:
        tensor = tensors[name]
        if kind is None or tensor.kind is kind:
            total += tensor.size_bytes
    return total


def _conv2d_problem(op: Operation, tensors: Dict[str, Tensor]) -> MatrixProblem:
    out = tensors[op.outputs[0]]
    b, oh, ow, of = _nhwc(out.shape)
    kh, kw = op.attrs["kernel"]
    in_features = int(op.attrs["in_features"])
    groups = int(op.attrs.get("groups", 1))
    return MatrixProblem(
        m=b * oh * ow,
        n=of // groups if groups > 1 else of,
        k=(in_features // groups) * kh * kw,
        instances=groups,
        stationary_is_weight=True,
        is_depthwise=False,
        input_bytes=_tensor_bytes(tensors, op.inputs, TensorKind.ACTIVATION),
        stationary_bytes=_tensor_bytes(tensors, op.inputs, TensorKind.WEIGHT),
        output_bytes=_tensor_bytes(tensors, op.outputs),
    )


def _depthwise_problem(op: Operation, tensors: Dict[str, Tensor]) -> MatrixProblem:
    out = tensors[op.outputs[0]]
    b, oh, ow, c = _nhwc(out.shape)
    kh, kw = op.attrs["kernel"]
    return MatrixProblem(
        m=b * oh * ow,
        n=c,
        k=kh * kw,
        instances=1,
        stationary_is_weight=True,
        is_depthwise=True,
        input_bytes=_tensor_bytes(tensors, op.inputs, TensorKind.ACTIVATION),
        stationary_bytes=_tensor_bytes(tensors, op.inputs, TensorKind.WEIGHT),
        output_bytes=_tensor_bytes(tensors, op.outputs),
    )


def _matmul_problem(op: Operation, tensors: Dict[str, Tensor]) -> MatrixProblem:
    out = tensors[op.outputs[0]]
    k = int(op.attrs["contracting_dim"])
    n = out.shape[-1]
    m = out.num_elements // n
    return MatrixProblem(
        m=m,
        n=n,
        k=k,
        instances=1,
        stationary_is_weight=True,
        is_depthwise=False,
        input_bytes=_tensor_bytes(tensors, op.inputs, TensorKind.ACTIVATION),
        stationary_bytes=_tensor_bytes(tensors, op.inputs, TensorKind.WEIGHT),
        output_bytes=_tensor_bytes(tensors, op.outputs),
    )


def _einsum_problem(op: Operation, tensors: Dict[str, Tensor]) -> MatrixProblem:
    """Activation x activation contraction (attention scores / context).

    The output shape is interpreted as ``(batch-like dims..., M, N)`` and the
    contracting dimension comes from the op attributes; every batch-like
    combination is an independent problem whose stationary operand must be
    re-latched.
    """
    out = tensors[op.outputs[0]]
    k = int(op.attrs["contracting_dim"])
    if len(out.shape) < 2:
        raise ValueError(f"einsum output {out.name!r} must have rank >= 2")
    m = out.shape[-2]
    n = out.shape[-1]
    instances = max(1, out.num_elements // (m * n))
    # Both operands are activations; split the activation bytes between the
    # streamed operand (M x K) and the stationary operand (K x N).
    act_bytes = _tensor_bytes(tensors, op.inputs, TensorKind.ACTIVATION)
    dtype_bytes = out.dtype.bytes
    stationary = instances * k * n * dtype_bytes
    streamed = max(act_bytes - stationary, instances * m * k * dtype_bytes)
    return MatrixProblem(
        m=m,
        n=n,
        k=k,
        instances=instances,
        stationary_is_weight=False,
        is_depthwise=False,
        input_bytes=streamed,
        stationary_bytes=stationary,
        output_bytes=_tensor_bytes(tensors, op.outputs),
    )


def _nhwc(shape) -> tuple:
    if len(shape) == 4:
        return shape
    if len(shape) == 3:
        return (1,) + tuple(shape)
    if len(shape) == 2:
        return (shape[0], 1, 1, shape[1])
    raise ValueError(f"cannot interpret shape {shape} as NHWC")
