"""Dataflow (mapping scheme) definitions and spatial utilization formulas.

Vizier, in the paper, constrains the schedule mapspace to known-good mapping
schemes such as weight-stationary and output-stationary (Section 5.3).  A
dataflow determines which problem dimension is held stationary in the PE
registers and which dimensions are streamed, which in turn determines how
per-tile latch overhead and operand reuse behave.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.mapping.loopnest import MatrixProblem

__all__ = ["Dataflow", "SpatialMapping", "spatial_mapping"]

#: Extra array columns (beyond the kernel window) a depthwise convolution can
#: keep fed from the array edge; calibrated against the TPU-v3 depthwise
#: utilization reported in Section 4.2.
_DEPTHWISE_EXTRA_COLS = 8


class Dataflow(Enum):
    """Supported mapping schemes."""

    WEIGHT_STATIONARY = "weight_stationary"
    OUTPUT_STATIONARY = "output_stationary"


@dataclass(frozen=True)
class SpatialMapping:
    """How a problem maps spatially onto one PE's systolic array.

    Attributes:
        dataflow: The mapping scheme.
        tiles_k: Number of reduction-dimension tiles (array rows).
        tiles_n: Number of output-feature tiles (array columns).
        rows_used / cols_used: Array rows/columns actually occupied by the
            final (possibly partial) tile — used for utilization accounting.
        quantization_efficiency: Fraction of the array's MACs doing useful
            work, accounting for dimension quantization only.
        latch_efficiency: Fraction of time the array spends streaming rather
            than latching / filling / draining.
        utilization: Product of the two efficiencies; fraction of peak MACs.
        cycles_per_instance: Cycles for one problem instance on one PE.
    """

    dataflow: Dataflow
    tiles_k: int
    tiles_n: int
    rows_used: int
    cols_used: int
    quantization_efficiency: float
    latch_efficiency: float
    utilization: float
    cycles_per_instance: float


def spatial_mapping(
    problem: MatrixProblem,
    array_x: int,
    array_y: int,
    dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY,
) -> SpatialMapping:
    """Map one problem instance onto a single systolic array.

    Under weight-stationary mapping the reduction dimension K occupies the
    array's x (row) dimension and the output features N occupy the y
    (column) dimension; the M rows are streamed through.  Output-stationary
    swaps the roles of M and K: output tiles are pinned and operands stream,
    which benefits problems with large K and small M.
    """
    if dataflow is Dataflow.WEIGHT_STATIONARY:
        dim_rows, dim_cols, streamed = problem.k, problem.n, problem.m
    else:
        dim_rows, dim_cols, streamed = problem.m, problem.n, problem.k

    # Depthwise convolutions cannot broadcast one input vector to every
    # column (each channel needs its own input window), so only slightly more
    # than one kernel window's worth of columns can be fed from the array
    # edge per cycle.  This is what makes depthwise convolutions
    # catastrophically inefficient on 128-wide arrays (about 1% of peak)
    # while remaining tolerable on 32-wide arrays (Section 3.2 and Table 5).
    effective_cols = array_y
    if problem.is_depthwise:
        effective_cols = min(array_y, max(1, problem.k + _DEPTHWISE_EXTRA_COLS))

    tiles_rows = max(1, math.ceil(dim_rows / array_x))
    tiles_cols = max(1, math.ceil(dim_cols / effective_cols))
    rows_used = min(dim_rows, array_x)
    cols_used = min(dim_cols, effective_cols)

    quantization = (dim_rows * dim_cols) / (tiles_rows * array_x * tiles_cols * array_y)

    # Per stationary tile: latch the tile (array_x cycles, overlapped with the
    # previous tile's streaming when enough rows are streamed), stream the
    # rows, then fill/drain the pipeline.
    latch_penalty = max(0.0, array_x - streamed)
    overhead = array_x + array_y + latch_penalty
    cycles_per_tile = streamed + overhead
    latch_efficiency = streamed / cycles_per_tile if cycles_per_tile > 0 else 0.0

    cycles_per_instance = tiles_rows * tiles_cols * cycles_per_tile
    utilization = quantization * latch_efficiency

    return SpatialMapping(
        dataflow=dataflow,
        tiles_k=tiles_rows if dataflow is Dataflow.WEIGHT_STATIONARY else tiles_cols,
        tiles_n=tiles_cols,
        rows_used=rows_used,
        cols_used=cols_used,
        quantization_efficiency=quantization,
        latch_efficiency=latch_efficiency,
        utilization=utilization,
        cycles_per_instance=cycles_per_instance,
    )
