"""Scheduling / mapping engine (the Timeloop substitute)."""

from repro.mapping.backend import (
    ArrayBackend,
    BackendUnavailableError,
    assert_backend_equivalence,
    available_backends,
    backend_available,
    get_backend,
)
from repro.mapping.costmodel import OpCost, ScheduleFailure
from repro.mapping.dataflow import Dataflow, SpatialMapping, spatial_mapping
from repro.mapping.loopnest import MatrixProblem, extract_problem
from repro.mapping.mapper import Mapper, MapperOptions
from repro.mapping.padding import PaddingDecision, pad_problem
from repro.mapping.tiling import Tiling, TrafficEstimate, candidate_tilings, estimate_traffic

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "Dataflow",
    "Mapper",
    "MapperOptions",
    "MatrixProblem",
    "OpCost",
    "PaddingDecision",
    "ScheduleFailure",
    "SpatialMapping",
    "Tiling",
    "TrafficEstimate",
    "assert_backend_equivalence",
    "available_backends",
    "backend_available",
    "candidate_tilings",
    "estimate_traffic",
    "extract_problem",
    "get_backend",
    "pad_problem",
    "spatial_mapping",
]
