"""Per-operation cost records produced by the mapper and vector models.

An :class:`OpCost` captures everything the simulator and the fusion ILP need
to know about one operation on a given datapath: compute cycles on the
systolic arrays, cycles on the VPU, DRAM traffic split by tensor role, the
achieved utilization, and whether the op could be scheduled at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.mapping.dataflow import Dataflow
from repro.mapping.tiling import Tiling
from repro.workloads.ops import OpType

__all__ = ["OpCost", "ScheduleFailure"]


class ScheduleFailure(RuntimeError):
    """Raised when an op cannot be mapped onto the datapath at all."""


@dataclass(frozen=True)
class OpCost:
    """Cost of executing one operation on a datapath (single core).

    Attributes:
        op_name: Name of the graph operation.
        op_type: Kind of operation.
        flops: Useful FLOPs (excludes padding waste).
        padded_flops: FLOPs actually issued, including padding waste.
        compute_cycles: Cycles the systolic arrays are busy.
        vector_cycles: Cycles the VPU is busy.
        dram_input_bytes: DRAM traffic for input activations (pre-fusion).
        dram_weight_bytes: DRAM traffic for weights (pre-fusion).
        dram_output_bytes: DRAM traffic for output activations (pre-fusion).
        utilization: Achieved fraction of peak MAC throughput while the op
            runs (0 for pure vector ops).
        dataflow: Mapping scheme chosen by the mapper (matrix ops only).
        tiling: Tile sizes chosen by the mapper (matrix ops only).
        schedule_failed: True when no valid mapping exists; such design
            points are invalid per Eq. 5.
    """

    op_name: str
    op_type: OpType
    flops: int = 0
    padded_flops: int = 0
    compute_cycles: float = 0.0
    vector_cycles: float = 0.0
    dram_input_bytes: float = 0.0
    dram_weight_bytes: float = 0.0
    dram_output_bytes: float = 0.0
    utilization: float = 0.0
    dataflow: Optional[Dataflow] = None
    tiling: Optional[Tiling] = None
    schedule_failed: bool = False

    # ------------------------------------------------------------------
    @property
    def dram_bytes(self) -> float:
        """Total pre-fusion DRAM traffic."""
        return self.dram_input_bytes + self.dram_weight_bytes + self.dram_output_bytes

    @property
    def busy_cycles(self) -> float:
        """Cycles of compute work (systolic + VPU, which overlap poorly)."""
        return self.compute_cycles + self.vector_cycles

    def execution_cycles(
        self,
        dram_bytes_per_cycle: float,
        exclude_input: bool = False,
        exclude_weight: bool = False,
        exclude_output: bool = False,
    ) -> float:
        """Execution time in cycles: max of compute and DRAM transfer time.

        Transfers overlap with compute (the simulator's double-buffering
        assumption), so the op takes the longer of the two.  The ``exclude_*``
        flags model tensors that FAST fusion pinned in the Global Memory and
        therefore generate no DRAM traffic.
        """
        traffic = 0.0
        if not exclude_input:
            traffic += self.dram_input_bytes
        if not exclude_weight:
            traffic += self.dram_weight_bytes
        if not exclude_output:
            traffic += self.dram_output_bytes
        dram_cycles = traffic / dram_bytes_per_cycle if dram_bytes_per_cycle > 0 else 0.0
        return max(self.busy_cycles, dram_cycles)

    def with_traffic_scaled(self, factor: float) -> "OpCost":
        """Return a copy with all DRAM traffic scaled by ``factor``."""
        return replace(
            self,
            dram_input_bytes=self.dram_input_bytes * factor,
            dram_weight_bytes=self.dram_weight_bytes * factor,
            dram_output_bytes=self.dram_output_bytes * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for reports."""
        return {
            "op_name": self.op_name,
            "op_type": self.op_type.value,
            "flops": self.flops,
            "compute_cycles": self.compute_cycles,
            "vector_cycles": self.vector_cycles,
            "dram_bytes": self.dram_bytes,
            "utilization": self.utilization,
            "schedule_failed": self.schedule_failed,
        }
