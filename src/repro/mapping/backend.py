"""Array-backend seam for the batched mapping kernels.

The batched candidate sweep (:func:`repro.mapping.tiling.estimate_traffic_batch_ops`)
is one stacked elementwise pass over ``ops x dataflows x tilings`` — exactly
the shape of computation that ports to a GPU array library unchanged.  This
module is the seam: a small :class:`ArrayBackend` object exposes the handful
of array operations the kernels need (transfer, ``ceil``, ``where``,
``stack``, dtype casts) plus a capability shim for the few NumPy-isms —
``np.minimum.reduceat`` chief among them — that have no one-line equivalent
everywhere.  NumPy is the default and the *reference*: its results are
bit-for-bit identical to the scalar mapper path.  CuPy and torch are
optional backends, imported lazily and reported as unavailable (never a hard
import error) when absent.

Equivalence and cache semantics
-------------------------------

Backends are a *performance* choice, not a semantic one, so mapping caches
key results by problem/config only — two backends share cache entries.  The
guard against a float-divergent backend silently poisoning persistent stores
is :func:`backend_cache_tag`: backends that are neither bitwise-exact nor
verified by :func:`assert_backend_equivalence` in this process get a tag
appended to their mapping cache keys, segregating their entries until a
tolerance check passes.  ``repro profile --check-backends`` runs exactly
that check and prints a per-backend verdict.

How to add a backend
--------------------

1. Subclass :class:`ArrayBackend`; set ``name`` and ``bitwise_exact``
   (``True`` only if the backend reproduces NumPy float64 results bit-for-
   bit — when in doubt, leave it ``False`` and rely on the tolerance check).
2. Implement ``from_numpy``/``to_numpy`` (host<->device transfer) and
   override any array op whose library spelling differs from NumPy's
   (see :class:`TorchBackend` for the usual suspects: float64 promotion on
   integer division, scalar operands to ``where``, ``minimum_reduceat``).
3. Register a zero-argument factory in ``_FACTORIES``; it must raise
   :class:`BackendUnavailableError` when the library is missing so
   ``repro profile`` can emit a ``skipped`` row instead of crashing.
4. Run ``repro profile --check-backends`` (or
   :func:`assert_backend_equivalence` directly) — a passing check marks the
   backend verified for this process, letting it share mapping caches with
   the NumPy/scalar entries.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple, Union

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "BACKEND_NAMES",
    "get_backend",
    "backend_available",
    "available_backends",
    "backend_verified",
    "mark_backend_verified",
    "backend_cache_tag",
    "assert_backend_equivalence",
    "check_backend",
]


class BackendUnavailableError(RuntimeError):
    """Raised when a requested array backend's library is not importable."""


class ArrayBackend:
    """Minimal array-namespace contract the batched mapping kernels use.

    The default method bodies assume a NumPy-compatible module in ``xp``
    (NumPy itself, CuPy, or anything honoring the array-API broadcasting and
    dtype-promotion rules); backends whose library diverges override the
    specific operations that differ.
    """

    #: Registry name (``numpy`` / ``cupy`` / ``torch`` / ...).
    name: str = "abstract"
    #: True when results are bit-for-bit identical to NumPy float64.
    bitwise_exact: bool = False

    def __init__(self, xp) -> None:
        self.xp = xp

    # -- transfer ------------------------------------------------------
    def from_numpy(self, array: np.ndarray):
        """Move a host NumPy array onto this backend's device/format."""
        return self.xp.asarray(array)

    def to_numpy(self, array) -> np.ndarray:
        """Move a backend array back to a host NumPy ``ndarray``."""
        return np.asarray(array)

    # -- elementwise / structural ops ----------------------------------
    def float64(self, array):
        """Cast to the backend's float64 dtype (explicit: integer true
        division defaults to float32 on some libraries)."""
        return array.astype(self.xp.float64)

    def ceil(self, array):
        return self.xp.ceil(array)

    def where(self, condition, a, b):
        return self.xp.where(condition, a, b)

    def stack(self, arrays, axis: int = 0):
        return self.xp.stack(arrays, axis)

    def maximum(self, a, b):
        return self.xp.maximum(a, b)

    def rint(self, array):
        """Round half-to-even (NumPy ``rint`` / torch ``round`` semantics)."""
        return self.xp.rint(array)

    # -- capability shims ----------------------------------------------
    def minimum_reduceat(self, values, starts) -> np.ndarray:
        """Segmented minimum: ``np.minimum.reduceat`` semantics.

        ``starts`` are segment start indices into ``values``; returns one
        minimum per segment as a host NumPy array.  The base implementation
        round-trips through NumPy — override with a native segmented
        reduction (e.g. ``scatter_reduce``) to keep selection on device.
        """
        return np.minimum.reduceat(self.to_numpy(values), np.asarray(starts))


class NumpyBackend(ArrayBackend):
    """The default backend and the bit-for-bit reference fast path."""

    name = "numpy"
    bitwise_exact = True

    def __init__(self) -> None:
        super().__init__(np)

    def from_numpy(self, array: np.ndarray) -> np.ndarray:
        return array

    def to_numpy(self, array) -> np.ndarray:
        return array

    def minimum_reduceat(self, values, starts) -> np.ndarray:
        return np.minimum.reduceat(values, starts)


class CupyBackend(ArrayBackend):
    """CuPy backend: NumPy-compatible API, so only transfer differs."""

    name = "cupy"
    bitwise_exact = False  # GPU kernels may reassociate; verify by tolerance.

    def __init__(self, cupy) -> None:
        super().__init__(cupy)

    def to_numpy(self, array) -> np.ndarray:
        return self.xp.asnumpy(array)


class TorchBackend(ArrayBackend):
    """Torch backend: overrides the spots where torch's API diverges."""

    name = "torch"
    bitwise_exact = False  # CPU float64 usually matches; verify by tolerance.

    def __init__(self, torch) -> None:
        super().__init__(torch)
        self.device = "cuda" if torch.cuda.is_available() else "cpu"

    def from_numpy(self, array: np.ndarray):
        tensor = self.xp.from_numpy(np.ascontiguousarray(array))
        return tensor.to(self.device) if self.device != "cpu" else tensor

    def to_numpy(self, array) -> np.ndarray:
        return array.detach().cpu().numpy()

    def float64(self, array):
        return array.to(self.xp.float64)

    def where(self, condition, a, b):
        torch = self.xp
        # torch.where wants tensor operands on older releases; promote
        # python scalars against the tensor side's dtype.
        if not torch.is_tensor(a):
            other = b if torch.is_tensor(b) else condition
            a = torch.tensor(a, dtype=torch.float64, device=other.device)
        if not torch.is_tensor(b):
            b = torch.tensor(b, dtype=a.dtype, device=a.device)
        return torch.where(condition, a, b)

    def stack(self, arrays, axis: int = 0):
        return self.xp.stack(tuple(arrays), dim=axis)

    def rint(self, array):
        return self.xp.round(array)  # torch.round is half-to-even

    def minimum_reduceat(self, values, starts) -> np.ndarray:
        torch = self.xp
        if not torch.is_tensor(values):
            return super().minimum_reduceat(values, starts)
        starts_np = np.asarray(starts)
        num_segments = starts_np.shape[0]
        lengths = np.diff(np.append(starts_np, values.shape[0]))
        segment_id = torch.from_numpy(
            np.repeat(np.arange(num_segments, dtype=np.int64), lengths)
        ).to(values.device)
        out = torch.full(
            (num_segments,), float("inf"), dtype=values.dtype, device=values.device
        )
        out.scatter_reduce_(0, segment_id, values, reduce="amin", include_self=True)
        return self.to_numpy(out)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def _make_numpy() -> ArrayBackend:
    return NumpyBackend()


def _make_cupy() -> ArrayBackend:
    try:
        import cupy  # noqa: F401  (optional dependency, never installed here)
    except Exception as exc:  # pragma: no cover - depends on environment
        raise BackendUnavailableError(f"cupy backend unavailable: {exc}") from exc
    return CupyBackend(cupy)


def _make_torch() -> ArrayBackend:
    try:
        import torch  # noqa: F401  (optional dependency)
    except Exception as exc:  # pragma: no cover - depends on environment
        raise BackendUnavailableError(f"torch backend unavailable: {exc}") from exc
    return TorchBackend(torch)


_FACTORIES = {"numpy": _make_numpy, "cupy": _make_cupy, "torch": _make_torch}

#: Names every ``--engine ...:backend=<name>`` spec may use.
BACKEND_NAMES: Tuple[str, ...] = tuple(_FACTORIES)

_INSTANCES: Dict[str, ArrayBackend] = {}
#: Backends that passed :func:`assert_backend_equivalence` in this process.
_VERIFIED: Set[str] = set()


def get_backend(name: str = "numpy") -> ArrayBackend:
    """Resolve a backend by name (lazy import, cached per process).

    Raises:
        BackendUnavailableError: The backend's library is not importable.
        ValueError: The name is not a known backend.
    """
    backend = _INSTANCES.get(name)
    if backend is not None:
        return backend
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown array backend {name!r} (known: {', '.join(BACKEND_NAMES)})"
        )
    backend = factory()
    _INSTANCES[name] = backend
    return backend


def backend_available(name: str) -> bool:
    """Whether ``name`` resolves without an import error."""
    try:
        get_backend(name)
    except BackendUnavailableError:
        return False
    return True


def available_backends() -> Dict[str, bool]:
    """Availability of every registered backend (``{name: importable}``)."""
    return {name: backend_available(name) for name in BACKEND_NAMES}


def mark_backend_verified(name: str) -> None:
    """Record that ``name`` passed a tolerance equivalence check."""
    _VERIFIED.add(name)


def backend_verified(name: str) -> bool:
    """True when the backend's results may share caches with NumPy's."""
    if name == "numpy":
        return True
    backend = _INSTANCES.get(name)
    if backend is not None and backend.bitwise_exact:
        return True
    return name in _VERIFIED


def backend_cache_tag(name: str) -> Optional[str]:
    """Cache-key tag for a backend, or ``None`` when it may share entries.

    NumPy (and any bitwise-exact or tolerance-verified backend) returns
    ``None`` — its results are interchangeable with the scalar reference, so
    mapping cache keys stay backend-free and entries are shared.  Unverified
    float-divergent backends get a distinguishing tag so their entries can
    never poison the shared/persistent stores.
    """
    if backend_verified(name):
        return None
    return f"backend:{name}"


# ---------------------------------------------------------------------------
# Equivalence checking
# ---------------------------------------------------------------------------


def _synthetic_problems():
    """Deterministic problem sweep covering the kernel's branch space.

    Spans resident/streamed operands, depthwise ops, multi-instance
    (attention-style) problems, and shapes small enough to fit entirely on
    chip — every branch of :func:`estimate_traffic_batch_ops`.
    """
    from repro.mapping.loopnest import MatrixProblem

    shapes = [
        # (m, n, k, instances, depthwise)
        (256, 256, 256, 1, False),
        (4096, 128, 1152, 1, False),
        (3136, 1, 9, 64, True),
        (512, 512, 64, 8, False),
        (64, 32, 48, 1, False),
        (100352, 64, 147, 1, False),
    ]
    problems = []
    for m, n, k, instances, depthwise in shapes:
        problems.append(
            MatrixProblem(
                m=m,
                n=n,
                k=k,
                instances=instances,
                stationary_is_weight=not depthwise,
                is_depthwise=depthwise,
                input_bytes=m * k * 2,
                stationary_bytes=k * n * 2 * instances,
                output_bytes=m * n * 2,
            )
        )
    return problems


def assert_backend_equivalence(
    backend: Union[str, ArrayBackend],
    rtol: float = 1e-9,
    atol: float = 0.0,
) -> Dict[str, object]:
    """Check a backend against the NumPy reference on a synthetic sweep.

    Runs :func:`~repro.mapping.tiling.estimate_traffic_batch_ops` over a
    deterministic set of problems on both backends and asserts: exact
    equality on the integer/bool outputs (``buffer_bytes``, ``fits``) and
    ``rtol``/``atol`` closeness on the float traffic arrays.  On success the
    backend is marked verified for this process (see
    :func:`backend_cache_tag`).  Returns a summary dict
    (``{"backend", "candidates", "max_rel_err"}``).

    Raises:
        BackendUnavailableError: The backend's library is missing.
        AssertionError: The backend diverges beyond tolerance.
    """
    from repro.mapping.tiling import (
        estimate_traffic_batch_ops,
        tiling_candidate_arrays_ops,
    )

    if isinstance(backend, str):
        backend = get_backend(backend)
    problems = _synthetic_problems()
    op_index, m_tiles, n_tiles, k_tiles = tiling_candidate_arrays_ops(
        problems, array_x=128, array_y=128, max_candidates=48
    )
    capacities = (1 << 20, 4 << 20)  # exercise both resident and spilling regimes
    max_rel_err = 0.0
    total_candidates = 0
    for capacity in capacities:
        reference = estimate_traffic_batch_ops(
            problems, op_index, m_tiles, n_tiles, k_tiles, capacity
        )
        candidate = estimate_traffic_batch_ops(
            problems, op_index, m_tiles, n_tiles, k_tiles, capacity, backend=backend
        )
        np.testing.assert_array_equal(
            candidate.buffer_bytes,
            reference.buffer_bytes,
            err_msg=f"{backend.name}: buffer_bytes diverged",
        )
        np.testing.assert_array_equal(
            candidate.fits, reference.fits, err_msg=f"{backend.name}: fits diverged"
        )
        for field in ("input_bytes", "stationary_bytes", "output_bytes", "total_bytes"):
            got = getattr(candidate, field)
            want = getattr(reference, field)
            np.testing.assert_allclose(
                got,
                want,
                rtol=rtol,
                atol=atol,
                err_msg=f"{backend.name}: {field} beyond rtol={rtol} atol={atol}",
            )
            denom = np.maximum(np.abs(want), 1.0)
            max_rel_err = max(max_rel_err, float(np.max(np.abs(got - want) / denom)))
        total_candidates += int(op_index.shape[0])
    mark_backend_verified(backend.name)
    return {
        "backend": backend.name,
        "candidates": total_candidates,
        "max_rel_err": max_rel_err,
    }


def check_backend(
    name: str, rtol: float = 1e-9, atol: float = 0.0
) -> Dict[str, object]:
    """Non-raising wrapper around :func:`assert_backend_equivalence`.

    Returns ``{"backend", "status", ...}`` with status ``ok`` (verified;
    includes ``max_rel_err``), ``skipped`` (library missing; includes
    ``reason``), or ``failed`` (divergence beyond tolerance; includes
    ``reason``).  This is what ``repro profile --check-backends`` prints.
    """
    try:
        summary = assert_backend_equivalence(name, rtol=rtol, atol=atol)
    except BackendUnavailableError as exc:
        return {"backend": name, "status": "skipped", "reason": str(exc)}
    except (AssertionError, ValueError) as exc:
        return {"backend": name, "status": "failed", "reason": str(exc)}
    summary["status"] = "ok"
    return summary
