"""Loop blocking (tiling) and the resulting DRAM traffic model.

Given a GEMM-like problem and the on-chip capacity available for blocking,
the scheduler chooses tile sizes ``(m_tile, n_tile, k_tile)`` for the three
problem dimensions.  The classic reuse analysis gives the resulting DRAM
traffic:

* each input element is re-read once per N tile that does not keep it
  resident: ``input_bytes * ceil(N / n_tile)`` unless the input block fits,
* each stationary element is re-read once per M tile: ``stationary_bytes *
  ceil(M / m_tile)`` unless it fits,
* outputs are written once, plus read+written again per extra K tile when
  partial sums spill.

The mapper searches a small grid of tile candidates (this is the pruned
Timeloop-style mapspace search) and keeps the best.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import islice, product
from typing import Iterable, Iterator, List, Tuple

import numpy as np

from repro.mapping.loopnest import MatrixProblem

__all__ = [
    "Tiling",
    "TrafficEstimate",
    "TrafficArrays",
    "candidate_tilings",
    "estimate_traffic",
    "tiling_candidate_arrays",
    "estimate_traffic_batch",
]


@dataclass(frozen=True)
class Tiling:
    """Tile sizes for the three GEMM dimensions of one problem instance."""

    m_tile: int
    n_tile: int
    k_tile: int

    def buffer_bytes(self, dtype_bytes: int = 2) -> int:
        """On-chip bytes needed to hold one tile of each operand."""
        input_tile = self.m_tile * self.k_tile
        weight_tile = self.k_tile * self.n_tile
        output_tile = self.m_tile * self.n_tile
        return (input_tile + weight_tile + output_tile) * dtype_bytes


@dataclass(frozen=True)
class TrafficEstimate:
    """DRAM traffic for a problem under a given tiling."""

    input_bytes: float
    stationary_bytes: float
    output_bytes: float

    @property
    def total_bytes(self) -> float:
        """Total DRAM bytes moved."""
        return self.input_bytes + self.stationary_bytes + self.output_bytes


def _geometric_steps(dim: int, minimum: int) -> List[int]:
    """Power-of-two tile candidates between ``minimum`` and ``dim``."""
    steps = []
    value = max(1, minimum)
    while value < dim:
        steps.append(value)
        value *= 4
    steps.append(dim)
    return steps


def candidate_tilings(
    problem: MatrixProblem,
    array_x: int,
    array_y: int,
    max_candidates: int = 48,
) -> Iterator[Tiling]:
    """Enumerate candidate tilings for the mapper's pruned search.

    Tiles never go below the systolic array dimensions (smaller tiles would
    waste the array) and grow geometrically up to the full problem dims.
    """
    m_steps = _geometric_steps(problem.m, minimum=min(problem.m, 128))
    n_steps = _geometric_steps(problem.n, minimum=min(problem.n, array_y))
    k_steps = _geometric_steps(problem.k, minimum=min(problem.k, array_x))
    count = 0
    for m_tile in m_steps:
        for n_tile in n_steps:
            for k_tile in k_steps:
                yield Tiling(m_tile, n_tile, k_tile)
                count += 1
                if count >= max_candidates:
                    return


def estimate_traffic(
    problem: MatrixProblem,
    tiling: Tiling,
    blocking_capacity_bytes: int,
    dtype_bytes: int = 2,
) -> Tuple[TrafficEstimate, bool]:
    """Estimate DRAM traffic for ``problem`` under ``tiling``.

    Returns the traffic estimate and a flag indicating whether the tiling
    fits within the blocking capacity (tilings that do not fit are invalid
    mappings).
    """
    fits = tiling.buffer_bytes(dtype_bytes) <= blocking_capacity_bytes

    m_outer = math.ceil(problem.m / tiling.m_tile)
    n_outer = math.ceil(problem.n / tiling.n_tile)
    k_outer = math.ceil(problem.k / tiling.k_tile)

    # Input (streamed operand): re-read for every N tile unless the whole
    # input of one instance fits on chip alongside the working tiles.
    # Depthwise convolutions never re-read: each input element belongs to a
    # single channel and is only touched by that channel's column.
    input_resident = problem.input_bytes / max(problem.instances, 1) <= (
        blocking_capacity_bytes - tiling.buffer_bytes(dtype_bytes)
    )
    if problem.is_depthwise:
        input_reread = 1
    else:
        input_reread = 1 if (n_outer == 1 or input_resident) else n_outer
    input_traffic = problem.input_bytes * input_reread

    # Stationary operand: re-read for every M tile unless it fits on chip.
    stationary_resident = problem.stationary_bytes / max(problem.instances, 1) <= (
        blocking_capacity_bytes - tiling.buffer_bytes(dtype_bytes)
    )
    stationary_reread = 1 if (m_outer == 1 or stationary_resident) else m_outer
    stationary_traffic = problem.stationary_bytes * stationary_reread

    # Outputs: written once; when the reduction is tiled and partial sums
    # cannot stay resident they spill (read + write per extra K tile).
    output_resident = problem.output_bytes / max(problem.instances, 1) <= (
        blocking_capacity_bytes - tiling.buffer_bytes(dtype_bytes)
    )
    if k_outer == 1 or output_resident:
        output_traffic = float(problem.output_bytes)
    else:
        output_traffic = problem.output_bytes * (1.0 + 2.0 * (k_outer - 1))

    return (
        TrafficEstimate(
            input_bytes=float(input_traffic),
            stationary_bytes=float(stationary_traffic),
            output_bytes=float(output_traffic),
        ),
        fits,
    )


# ---------------------------------------------------------------------------
# Vectorized candidate sweep
#
# The functions below are the array-programming twin of ``candidate_tilings``
# + ``estimate_traffic``: the whole candidate grid is materialized as NumPy
# arrays and costed in a handful of vector operations instead of a Python
# loop.  Every arithmetic step mirrors the scalar reference operation for
# operation (same int products, same float divisions, same left-to-right
# additions), so the per-candidate results are bit-for-bit identical to the
# scalar path — a property the mapper's equivalence tests assert.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrafficArrays:
    """Per-candidate traffic/feasibility arrays for one problem.

    Index ``i`` of every array describes the candidate ``Tiling(m_tiles[i],
    n_tiles[i], k_tiles[i])``; float arrays are ``float64`` and match the
    scalar :func:`estimate_traffic` output bitwise.
    """

    m_tiles: np.ndarray
    n_tiles: np.ndarray
    k_tiles: np.ndarray
    input_bytes: np.ndarray
    stationary_bytes: np.ndarray
    output_bytes: np.ndarray
    total_bytes: np.ndarray
    buffer_bytes: np.ndarray
    fits: np.ndarray

    def __len__(self) -> int:
        return int(self.m_tiles.shape[0])

    def tiling(self, index: int) -> Tiling:
        """Materialize the ``Tiling`` dataclass for one candidate."""
        return Tiling(
            int(self.m_tiles[index]), int(self.n_tiles[index]), int(self.k_tiles[index])
        )

    def traffic(self, index: int) -> TrafficEstimate:
        """Materialize the ``TrafficEstimate`` for one candidate."""
        return TrafficEstimate(
            input_bytes=float(self.input_bytes[index]),
            stationary_bytes=float(self.stationary_bytes[index]),
            output_bytes=float(self.output_bytes[index]),
        )


def tiling_candidate_arrays(
    problem: MatrixProblem,
    array_x: int,
    array_y: int,
    max_candidates: int = 48,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All candidate tile sizes as ``int64`` arrays.

    The arrays enumerate exactly the tilings :func:`candidate_tilings` yields,
    in the same (m-major) order and truncated at the same candidate cap, so an
    argmin over them selects the same winner as the scalar loop.
    """
    m_steps = _geometric_steps(problem.m, minimum=min(problem.m, 128))
    n_steps = _geometric_steps(problem.n, minimum=min(problem.n, array_y))
    k_steps = _geometric_steps(problem.k, minimum=min(problem.k, array_x))
    grid = np.array(
        list(islice(product(m_steps, n_steps, k_steps), max_candidates)),
        dtype=np.int64,
    )
    return grid[:, 0], grid[:, 1], grid[:, 2]


def estimate_traffic_batch(
    problem: MatrixProblem,
    m_tiles: np.ndarray,
    n_tiles: np.ndarray,
    k_tiles: np.ndarray,
    blocking_capacity_bytes: int,
    dtype_bytes: int = 2,
) -> TrafficArrays:
    """Vectorized :func:`estimate_traffic` over a whole candidate grid.

    Buffer footprints stay in ``int64`` (exact); traffic is computed in
    ``float64`` with the same correctly-rounded operations the scalar path
    performs, so every candidate's traffic matches the scalar estimate
    bitwise (see the inline notes on why each float step is exact).
    """
    buffer_bytes = (m_tiles * k_tiles + k_tiles * n_tiles + m_tiles * n_tiles) * dtype_bytes
    fits = buffer_bytes <= blocking_capacity_bytes

    headroom = blocking_capacity_bytes - buffer_bytes
    instances = max(problem.instances, 1)

    # One stacked pass over the three tensor roles (rows: input / stationary /
    # output, whose re-read multipliers come from the n / m / k outer loop
    # trip counts respectively).  Numeric notes, candidate by candidate:
    #
    # * float division of ints < 2**53 is correctly rounded, exactly like
    #   Python's ``a / b``, and the ceil results are exact integers in
    #   float64 — keeping them as floats loses nothing;
    # * ``bytes * multiplier`` multiplies two exactly-representable values,
    #   so the float64 product is the correctly-rounded true product —
    #   identical to the scalar path's exact-int product followed by
    #   ``float()`` conversion;
    # * the output spill multiplier ``2*k_outer - 1`` equals the scalar
    #   path's ``1 + 2*(k_outer - 1)`` exactly (small integers in float64).
    dims = np.array([[problem.n], [problem.m], [problem.k]], dtype=np.int64)
    tiles = np.stack((n_tiles, m_tiles, k_tiles))
    outer = np.ceil(dims / tiles)
    role_bytes = np.array(
        [[problem.input_bytes], [problem.stationary_bytes], [problem.output_bytes]],
        dtype=np.float64,
    )
    resident = (role_bytes / instances) <= headroom
    multipliers = outer.copy()
    multipliers[2] = 2.0 * outer[2] - 1.0
    multipliers = np.where((outer == 1.0) | resident, 1.0, multipliers)
    traffic = role_bytes * multipliers
    input_traffic, stationary_traffic, output_traffic = traffic
    if problem.is_depthwise:
        # Depthwise convolutions never re-read their input.
        input_traffic = np.full(m_tiles.shape, float(problem.input_bytes))

    total = input_traffic + stationary_traffic + output_traffic
    return TrafficArrays(
        m_tiles=m_tiles,
        n_tiles=n_tiles,
        k_tiles=k_tiles,
        input_bytes=input_traffic,
        stationary_bytes=stationary_traffic,
        output_bytes=output_traffic,
        total_bytes=total,
        buffer_bytes=buffer_bytes,
        fits=fits,
    )
