"""Loop blocking (tiling) and the resulting DRAM traffic model.

Given a GEMM-like problem and the on-chip capacity available for blocking,
the scheduler chooses tile sizes ``(m_tile, n_tile, k_tile)`` for the three
problem dimensions.  The classic reuse analysis gives the resulting DRAM
traffic:

* each input element is re-read once per N tile that does not keep it
  resident: ``input_bytes * ceil(N / n_tile)`` unless the input block fits,
* each stationary element is re-read once per M tile: ``stationary_bytes *
  ceil(M / m_tile)`` unless it fits,
* outputs are written once, plus read+written again per extra K tile when
  partial sums spill.

The mapper searches a small grid of tile candidates (this is the pruned
Timeloop-style mapspace search) and keeps the best.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import islice, product
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.mapping.backend import ArrayBackend
from repro.mapping.loopnest import MatrixProblem

__all__ = [
    "Tiling",
    "TrafficEstimate",
    "TrafficArrays",
    "candidate_tilings",
    "estimate_traffic",
    "stack_candidate_grids",
    "tiling_candidate_arrays",
    "tiling_candidate_arrays_ops",
    "estimate_traffic_batch",
    "estimate_traffic_batch_ops",
]


@dataclass(frozen=True)
class Tiling:
    """Tile sizes for the three GEMM dimensions of one problem instance."""

    m_tile: int
    n_tile: int
    k_tile: int

    def buffer_bytes(self, dtype_bytes: int = 2) -> int:
        """On-chip bytes needed to hold one tile of each operand."""
        input_tile = self.m_tile * self.k_tile
        weight_tile = self.k_tile * self.n_tile
        output_tile = self.m_tile * self.n_tile
        return (input_tile + weight_tile + output_tile) * dtype_bytes


@dataclass(frozen=True)
class TrafficEstimate:
    """DRAM traffic for a problem under a given tiling."""

    input_bytes: float
    stationary_bytes: float
    output_bytes: float

    @property
    def total_bytes(self) -> float:
        """Total DRAM bytes moved."""
        return self.input_bytes + self.stationary_bytes + self.output_bytes


def _geometric_steps(dim: int, minimum: int) -> List[int]:
    """Power-of-two tile candidates between ``minimum`` and ``dim``."""
    steps = []
    value = max(1, minimum)
    while value < dim:
        steps.append(value)
        value *= 4
    steps.append(dim)
    return steps


def candidate_tilings(
    problem: MatrixProblem,
    array_x: int,
    array_y: int,
    max_candidates: int = 48,
) -> Iterator[Tiling]:
    """Enumerate candidate tilings for the mapper's pruned search.

    Tiles never go below the systolic array dimensions (smaller tiles would
    waste the array) and grow geometrically up to the full problem dims.
    """
    m_steps = _geometric_steps(problem.m, minimum=min(problem.m, 128))
    n_steps = _geometric_steps(problem.n, minimum=min(problem.n, array_y))
    k_steps = _geometric_steps(problem.k, minimum=min(problem.k, array_x))
    count = 0
    for m_tile in m_steps:
        for n_tile in n_steps:
            for k_tile in k_steps:
                yield Tiling(m_tile, n_tile, k_tile)
                count += 1
                if count >= max_candidates:
                    return


def estimate_traffic(
    problem: MatrixProblem,
    tiling: Tiling,
    blocking_capacity_bytes: int,
    dtype_bytes: int = 2,
) -> Tuple[TrafficEstimate, bool]:
    """Estimate DRAM traffic for ``problem`` under ``tiling``.

    Returns the traffic estimate and a flag indicating whether the tiling
    fits within the blocking capacity (tilings that do not fit are invalid
    mappings).
    """
    fits = tiling.buffer_bytes(dtype_bytes) <= blocking_capacity_bytes

    m_outer = math.ceil(problem.m / tiling.m_tile)
    n_outer = math.ceil(problem.n / tiling.n_tile)
    k_outer = math.ceil(problem.k / tiling.k_tile)

    # Input (streamed operand): re-read for every N tile unless the whole
    # input of one instance fits on chip alongside the working tiles.
    # Depthwise convolutions never re-read: each input element belongs to a
    # single channel and is only touched by that channel's column.
    input_resident = problem.input_bytes / max(problem.instances, 1) <= (
        blocking_capacity_bytes - tiling.buffer_bytes(dtype_bytes)
    )
    if problem.is_depthwise:
        input_reread = 1
    else:
        input_reread = 1 if (n_outer == 1 or input_resident) else n_outer
    input_traffic = problem.input_bytes * input_reread

    # Stationary operand: re-read for every M tile unless it fits on chip.
    stationary_resident = problem.stationary_bytes / max(problem.instances, 1) <= (
        blocking_capacity_bytes - tiling.buffer_bytes(dtype_bytes)
    )
    stationary_reread = 1 if (m_outer == 1 or stationary_resident) else m_outer
    stationary_traffic = problem.stationary_bytes * stationary_reread

    # Outputs: written once; when the reduction is tiled and partial sums
    # cannot stay resident they spill (read + write per extra K tile).
    output_resident = problem.output_bytes / max(problem.instances, 1) <= (
        blocking_capacity_bytes - tiling.buffer_bytes(dtype_bytes)
    )
    if k_outer == 1 or output_resident:
        output_traffic = float(problem.output_bytes)
    else:
        output_traffic = problem.output_bytes * (1.0 + 2.0 * (k_outer - 1))

    return (
        TrafficEstimate(
            input_bytes=float(input_traffic),
            stationary_bytes=float(stationary_traffic),
            output_bytes=float(output_traffic),
        ),
        fits,
    )


# ---------------------------------------------------------------------------
# Vectorized candidate sweep
#
# The functions below are the array-programming twin of ``candidate_tilings``
# + ``estimate_traffic``: the whole candidate grid is materialized as NumPy
# arrays and costed in a handful of vector operations instead of a Python
# loop.  Every arithmetic step mirrors the scalar reference operation for
# operation (same int products, same float divisions, same left-to-right
# additions), so the per-candidate results are bit-for-bit identical to the
# scalar path — a property the mapper's equivalence tests assert.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrafficArrays:
    """Per-candidate traffic/feasibility arrays for one problem.

    Index ``i`` of every array describes the candidate ``Tiling(m_tiles[i],
    n_tiles[i], k_tiles[i])``; float arrays are ``float64`` and match the
    scalar :func:`estimate_traffic` output bitwise.
    """

    m_tiles: np.ndarray
    n_tiles: np.ndarray
    k_tiles: np.ndarray
    input_bytes: np.ndarray
    stationary_bytes: np.ndarray
    output_bytes: np.ndarray
    total_bytes: np.ndarray
    buffer_bytes: np.ndarray
    fits: np.ndarray

    def __len__(self) -> int:
        return int(self.m_tiles.shape[0])

    def tiling(self, index: int) -> Tiling:
        """Materialize the ``Tiling`` dataclass for one candidate."""
        return Tiling(
            int(self.m_tiles[index]), int(self.n_tiles[index]), int(self.k_tiles[index])
        )

    def traffic(self, index: int) -> TrafficEstimate:
        """Materialize the ``TrafficEstimate`` for one candidate."""
        return TrafficEstimate(
            input_bytes=float(self.input_bytes[index]),
            stationary_bytes=float(self.stationary_bytes[index]),
            output_bytes=float(self.output_bytes[index]),
        )


def tiling_candidate_arrays(
    problem: MatrixProblem,
    array_x: int,
    array_y: int,
    max_candidates: int = 48,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All candidate tile sizes as ``int64`` arrays.

    The arrays enumerate exactly the tilings :func:`candidate_tilings` yields,
    in the same (m-major) order and truncated at the same candidate cap, so an
    argmin over them selects the same winner as the scalar loop.
    """
    m_steps = _geometric_steps(problem.m, minimum=min(problem.m, 128))
    n_steps = _geometric_steps(problem.n, minimum=min(problem.n, array_y))
    k_steps = _geometric_steps(problem.k, minimum=min(problem.k, array_x))
    grid = np.array(
        list(islice(product(m_steps, n_steps, k_steps), max_candidates)),
        dtype=np.int64,
    )
    return grid[:, 0], grid[:, 1], grid[:, 2]


def stack_candidate_grids(
    grids: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate per-problem ``(m, n, k)`` grids along a flat op axis.

    The one place the op-axis layout is defined: candidates are grouped
    problem by problem (``op_index`` is non-decreasing) and each problem's
    slice keeps its per-op enumeration order — the contract every batched
    consumer (and the bit-for-bit equivalence argument) relies on.
    """
    if not grids:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), empty.copy()
    counts = [m_tiles.shape[0] for m_tiles, _, _ in grids]
    op_index = np.repeat(np.arange(len(grids), dtype=np.int64), counts)
    m_all = np.concatenate([grid[0] for grid in grids])
    n_all = np.concatenate([grid[1] for grid in grids])
    k_all = np.concatenate([grid[2] for grid in grids])
    return op_index, m_all, n_all, k_all


def tiling_candidate_arrays_ops(
    problems: Sequence[MatrixProblem],
    array_x: int,
    array_y: int,
    max_candidates: int = 48,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Candidate tile sizes for many problems, stacked along an op axis.

    Returns ``(op_index, m_tiles, n_tiles, k_tiles)`` where candidate ``i``
    belongs to ``problems[op_index[i]]``; each problem's slice equals what
    :func:`tiling_candidate_arrays` yields for it (see
    :func:`stack_candidate_grids` for the layout contract).
    """
    return stack_candidate_grids(
        [
            tiling_candidate_arrays(problem, array_x, array_y, max_candidates)
            for problem in problems
        ]
    )


def estimate_traffic_batch(
    problem: MatrixProblem,
    m_tiles: np.ndarray,
    n_tiles: np.ndarray,
    k_tiles: np.ndarray,
    blocking_capacity_bytes: int,
    dtype_bytes: int = 2,
) -> TrafficArrays:
    """Vectorized :func:`estimate_traffic` over one problem's candidate grid.

    A single-problem view of :func:`estimate_traffic_batch_ops` (op axis of
    one); kept as the stable entry point for per-op callers and tests.
    """
    op_index = np.zeros(m_tiles.shape[0], dtype=np.int64)
    return estimate_traffic_batch_ops(
        (problem,), op_index, m_tiles, n_tiles, k_tiles,
        blocking_capacity_bytes, dtype_bytes,
    )


def estimate_traffic_batch_ops(
    problems: Sequence[MatrixProblem],
    op_index: np.ndarray,
    m_tiles: np.ndarray,
    n_tiles: np.ndarray,
    k_tiles: np.ndarray,
    blocking_capacity_bytes: Union[int, np.ndarray],
    dtype_bytes: int = 2,
    backend: Optional[ArrayBackend] = None,
) -> TrafficArrays:
    """Vectorized :func:`estimate_traffic` across many problems at once.

    The candidate axis is flat: candidate ``i`` tiles ``problems[op_index[i]]``
    (see :func:`tiling_candidate_arrays_ops`).  One array pass costs every
    candidate of every problem — this is the op axis the graph-batched mapper
    sweeps in a single NumPy pass per trial.  ``blocking_capacity_bytes`` may
    be a per-candidate ``int64`` array instead of a scalar, which lets the
    trial-batched mapper stack problems from *different* datapath configs in
    the same pass (broadcasting against a capacity array performs the
    identical int64 comparisons/subtractions, so results stay bitwise equal
    to per-config calls).

    ``backend`` selects the array library the pass runs on (see
    :mod:`repro.mapping.backend`); ``None`` or the NumPy backend takes the
    reference fast path below, other backends a mirrored device-side pass
    whose results are converted back to host NumPy arrays.

    Buffer footprints stay in ``int64`` (exact); traffic is computed in
    ``float64`` with the same correctly-rounded operations the scalar path
    performs, so every candidate's traffic matches the scalar estimate
    bitwise.  Numeric notes, candidate by candidate:

    * float division of ints < 2**53 is correctly rounded, exactly like
      Python's ``a / b``, and the ceil results are exact integers in
      float64 — keeping them as floats loses nothing;
    * ``bytes * multiplier`` multiplies two exactly-representable values,
      so the float64 product is the correctly-rounded true product —
      identical to the scalar path's exact-int product followed by
      ``float()`` conversion;
    * the output spill multiplier ``2*k_outer - 1`` equals the scalar
      path's ``1 + 2*(k_outer - 1)`` exactly (small integers in float64);
    * gathering per-problem dims/bytes through ``op_index`` feeds each
      candidate the very same operand values the per-problem pass broadcasts,
      so the batched results are bitwise identical to per-problem calls.
    """
    if backend is not None and backend.name != "numpy":
        return _estimate_traffic_batch_ops_backend(
            problems, op_index, m_tiles, n_tiles, k_tiles,
            blocking_capacity_bytes, dtype_bytes, backend,
        )
    buffer_bytes = (m_tiles * k_tiles + k_tiles * n_tiles + m_tiles * n_tiles) * dtype_bytes
    fits = buffer_bytes <= blocking_capacity_bytes

    headroom = blocking_capacity_bytes - buffer_bytes

    # One stacked pass over the three tensor roles (rows: input / stationary /
    # output, whose re-read multipliers come from the n / m / k outer loop
    # trip counts respectively), with per-problem scalars gathered per
    # candidate through ``op_index``.
    dims_by_problem = np.array(
        [
            [problem.n for problem in problems],
            [problem.m for problem in problems],
            [problem.k for problem in problems],
        ],
        dtype=np.int64,
    )
    role_by_problem = np.array(
        [
            [problem.input_bytes for problem in problems],
            [problem.stationary_bytes for problem in problems],
            [problem.output_bytes for problem in problems],
        ],
        dtype=np.float64,
    )
    instances = np.array(
        [max(problem.instances, 1) for problem in problems], dtype=np.int64
    )
    depthwise = np.array([problem.is_depthwise for problem in problems], dtype=bool)
    input_bytes_flat = role_by_problem[0]

    dims = dims_by_problem[:, op_index]
    tiles = np.stack((n_tiles, m_tiles, k_tiles))
    outer = np.ceil(dims / tiles)
    role_bytes = role_by_problem[:, op_index]
    resident = (role_bytes / instances[op_index]) <= headroom
    multipliers = outer.copy()
    multipliers[2] = 2.0 * outer[2] - 1.0
    multipliers = np.where((outer == 1.0) | resident, 1.0, multipliers)
    traffic = role_bytes * multipliers
    input_traffic, stationary_traffic, output_traffic = traffic
    # Depthwise convolutions never re-read their input.
    input_traffic = np.where(
        depthwise[op_index], input_bytes_flat[op_index], input_traffic
    )

    total = input_traffic + stationary_traffic + output_traffic
    return TrafficArrays(
        m_tiles=m_tiles,
        n_tiles=n_tiles,
        k_tiles=k_tiles,
        input_bytes=input_traffic,
        stationary_bytes=stationary_traffic,
        output_bytes=output_traffic,
        total_bytes=total,
        buffer_bytes=buffer_bytes,
        fits=fits,
    )


def _estimate_traffic_batch_ops_backend(
    problems: Sequence[MatrixProblem],
    op_index: np.ndarray,
    m_tiles: np.ndarray,
    n_tiles: np.ndarray,
    k_tiles: np.ndarray,
    blocking_capacity_bytes: Union[int, np.ndarray],
    dtype_bytes: int,
    backend: ArrayBackend,
) -> TrafficArrays:
    """Device-side mirror of :func:`estimate_traffic_batch_ops`.

    Same computation, spelled through the :class:`~repro.mapping.backend.\
ArrayBackend` seam with no in-place mutation (torch/CuPy friendly): the
    per-role multipliers are assembled with ``stack``/``where`` instead of
    the NumPy path's ``copy()`` + row assignment.  Inputs arrive as host
    NumPy arrays and results are converted back, so callers see ordinary
    ``TrafficArrays`` regardless of where the arithmetic ran.
    """
    xb = backend
    m_t = xb.from_numpy(m_tiles)
    n_t = xb.from_numpy(n_tiles)
    k_t = xb.from_numpy(k_tiles)
    op_idx = xb.from_numpy(np.ascontiguousarray(op_index))

    buffer_bytes = (m_t * k_t + k_t * n_t + m_t * n_t) * dtype_bytes
    if isinstance(blocking_capacity_bytes, np.ndarray):
        capacity = xb.from_numpy(blocking_capacity_bytes)
    else:
        capacity = int(blocking_capacity_bytes)
    fits = buffer_bytes <= capacity
    headroom = capacity - buffer_bytes

    dims_by_problem = xb.from_numpy(
        np.array(
            [
                [problem.n for problem in problems],
                [problem.m for problem in problems],
                [problem.k for problem in problems],
            ],
            dtype=np.int64,
        )
    )
    role_by_problem = xb.from_numpy(
        np.array(
            [
                [problem.input_bytes for problem in problems],
                [problem.stationary_bytes for problem in problems],
                [problem.output_bytes for problem in problems],
            ],
            dtype=np.float64,
        )
    )
    instances = xb.from_numpy(
        np.array([max(problem.instances, 1) for problem in problems], dtype=np.int64)
    )
    depthwise = xb.from_numpy(
        np.array([problem.is_depthwise for problem in problems], dtype=bool)
    )
    input_bytes_flat = role_by_problem[0]

    dims = dims_by_problem[:, op_idx]
    tiles = xb.stack((n_t, m_t, k_t))
    outer = xb.ceil(xb.float64(dims) / xb.float64(tiles))
    role_bytes = role_by_problem[:, op_idx]
    resident = (role_bytes / xb.float64(instances[op_idx])) <= xb.float64(headroom)
    spill = 2.0 * outer[2] - 1.0
    multipliers = xb.stack((outer[0], outer[1], spill))
    multipliers = xb.where((outer == 1.0) | resident, 1.0, multipliers)
    traffic = role_bytes * multipliers
    input_traffic = xb.where(
        depthwise[op_idx], input_bytes_flat[op_idx], traffic[0]
    )
    stationary_traffic = traffic[1]
    output_traffic = traffic[2]
    total = input_traffic + stationary_traffic + output_traffic

    def _f64(array) -> np.ndarray:
        return np.asarray(xb.to_numpy(array), dtype=np.float64)

    return TrafficArrays(
        m_tiles=m_tiles,
        n_tiles=n_tiles,
        k_tiles=k_tiles,
        input_bytes=_f64(input_traffic),
        stationary_bytes=_f64(stationary_traffic),
        output_bytes=_f64(output_traffic),
        total_bytes=_f64(total),
        buffer_bytes=np.asarray(xb.to_numpy(buffer_bytes), dtype=np.int64),
        fits=np.asarray(xb.to_numpy(fits), dtype=bool),
    )
