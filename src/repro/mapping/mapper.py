"""Timeloop-style mapper: schedules matrix ops onto the datapath.

For each matrix op the mapper
(1) lowers it to a canonical GEMM-like problem,
(2) applies the tensor padding pre-pass,
(3) checks structural schedulability (minimum scratchpad sizes),
(4) searches a pruned mapspace of dataflows x tilings, estimating compute
    cycles and DRAM traffic for each candidate, and
(5) returns the best mapping as an :class:`~repro.mapping.costmodel.OpCost`.

This replaces the Timeloop invocation used by the paper's simulator; the
search is deliberately small (a few dozen candidates per op) because the
datapath template constrains the mapspace to known-good mapping schemes,
exactly as Vizier does in the paper (Section 5.3).
"""

from __future__ import annotations

import math
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.datapath import BufferConfig, DatapathConfig
from repro.hardware.memory import MemoryHierarchy
from repro.mapping.backend import ArrayBackend, backend_cache_tag, get_backend
from repro.mapping.costmodel import OpCost
from repro.mapping.dataflow import Dataflow, SpatialMapping, spatial_mapping
from repro.mapping.loopnest import MatrixProblem, extract_problem
from repro.mapping.padding import pad_problem
from repro.mapping.tiling import (
    Tiling,
    candidate_tilings,
    estimate_traffic,
    estimate_traffic_batch_ops,
    stack_candidate_grids,
    tiling_candidate_arrays,
)
from repro.workloads.graph import Operation, Tensor
from repro.workloads.ops import is_matrix_op

__all__ = ["Mapper", "MapperOptions", "clear_problem_memo"]

# Lazily resolved tracer accessor (a module-level telemetry import would pull
# in ``repro.runtime`` mid-init through packages that import this module).
_get_tracer = None


def _tracer():
    global _get_tracer
    if _get_tracer is None:
        from repro.runtime.telemetry import get_tracer

        _get_tracer = get_tracer
    return _get_tracer()

_DTYPE_BYTES = 2  # bfloat16 throughout, matching the paper's evaluation.
_MIN_STREAM_CHUNK = 128  # Minimum rows per PE when splitting the streamed dim.

# Problem extraction is pure and ops belong to immutable built graphs, so the
# lowered MatrixProblem is memoized per op object across Mapper instances
# (every trial builds a fresh Mapper but maps the same cached graphs).  Keys
# are object ids; the stored strong reference both validates identity and
# prevents id reuse.  The memo is cleared wholesale when it overflows.
_PROBLEM_MEMO: Dict[int, Tuple[Operation, MatrixProblem]] = {}
_PROBLEM_MEMO_MAX = 16384


def _memoized_problem(op: Operation, tensors: Dict[str, Tensor]) -> MatrixProblem:
    entry = _PROBLEM_MEMO.get(id(op))
    if entry is not None and entry[0] is op:
        return entry[1]
    problem = extract_problem(op, tensors)
    if len(_PROBLEM_MEMO) >= _PROBLEM_MEMO_MAX:
        _PROBLEM_MEMO.clear()
    _PROBLEM_MEMO[id(op)] = (op, problem)
    return problem


class _DataflowPlan(NamedTuple):
    """Dataflow-dependent but candidate-independent pieces of one search."""

    mapping: SpatialMapping
    compute_cycles: float
    rounded_cycles: float


class _PreparedProblem(NamedTuple):
    """Padded problem + candidate grid + per-dataflow plans, memoized.

    Everything here is a pure function of (raw problem shape, array geometry,
    PE count, mapper options), so it is shared across Mapper instances — i.e.
    across trials — through :data:`_PREP_MEMO`.  The arrays are treated as
    immutable by every consumer.
    """

    problem: MatrixProblem
    m_tiles: np.ndarray
    n_tiles: np.ndarray
    k_tiles: np.ndarray
    per_dataflow: Tuple[_DataflowPlan, ...]


# Keyed by (problem key, mapper geometry key); cleared wholesale on overflow,
# exactly like the problem memo above.
_PREP_MEMO: Dict[Tuple, _PreparedProblem] = {}
_PREP_MEMO_MAX = 16384


def clear_problem_memo() -> None:
    """Drop all memoized problem extractions and preparations (for tests)."""
    _PROBLEM_MEMO.clear()
    _PREP_MEMO.clear()


class MapperOptions:
    """Tunable knobs of the mapper search.

    ``vectorize`` selects the array candidate-sweep engine; the scalar loop is
    kept as the reference implementation (``vectorize=False``) and the two are
    bit-for-bit equivalent — same chosen tiling, cycles, and DRAM bytes.
    ``backend`` names the array library the vectorized sweep runs on (see
    :mod:`repro.mapping.backend`); NumPy is the default and the only backend
    guaranteed bitwise-equal to the scalar reference.
    """

    def __init__(
        self,
        dataflows: Tuple[Dataflow, ...] = (Dataflow.WEIGHT_STATIONARY, Dataflow.OUTPUT_STATIONARY),
        max_tiling_candidates: int = 48,
        padding_max_overhead: float = 0.2,
        vectorize: bool = True,
        backend: str = "numpy",
    ) -> None:
        self.dataflows = dataflows
        self.max_tiling_candidates = max_tiling_candidates
        self.padding_max_overhead = padding_max_overhead
        self.vectorize = vectorize
        self.backend = backend


class Mapper:
    """Maps matrix operations onto a single core of a datapath.

    ``op_cache`` is an optional shared (cross-trial, optionally persistent)
    :class:`~repro.runtime.opcache.OpCostCache`; mapping results are keyed by
    the problem fingerprint *and* the mapping-relevant slice of the datapath
    configuration, so two trials that agree on that slice — no matter how
    their fusion/memory/batch parameters differ — reuse each other's op costs.
    The cache itself is tiered (memory LRU, persistent JSONL store, and a
    parent-published shared-memory segment in parallel runs — see
    :mod:`repro.runtime.opcache` / :mod:`repro.runtime.shmcache`); every tier
    serves bit-identical costs, so the mapper never needs to know which one
    answered.
    """

    def __init__(
        self,
        config: DatapathConfig,
        hierarchy: Optional[MemoryHierarchy] = None,
        options: Optional[MapperOptions] = None,
        op_cache=None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy or MemoryHierarchy(config)
        self.options = options or MapperOptions()
        self.op_cache = op_cache
        self._cache: Dict[Tuple, OpCost] = {}
        self._backend_obj: Optional[ArrayBackend] = None
        self._config_key = self.mapping_config_key() if op_cache is not None else None
        # Everything _PreparedProblem depends on besides the problem itself.
        self._prep_key = (
            config.systolic_array_x,
            config.systolic_array_y,
            config.num_pes,
            tuple(d.value for d in self.options.dataflows),
            self.options.max_tiling_candidates,
            self.options.padding_max_overhead,
        )

    # ------------------------------------------------------------------
    def mapping_config_key(self) -> Tuple:
        """The slice of the configuration that determines mapping results.

        Everything the mapper search reads — array geometry, PE count, L1
        scratchpad layout (schedulability), blocking capacity, DRAM bandwidth
        per cycle (candidate ranking), and the mapper options themselves.
        ``vectorize`` is deliberately excluded: both engines are bit-for-bit
        equivalent, so their results are interchangeable.  The array backend
        is likewise a perf-only choice and is excluded *unless* it is
        float-divergent and unverified (see
        :func:`repro.mapping.backend.backend_cache_tag`), in which case a
        distinguishing tag is appended so its entries can never poison the
        shared/persistent stores — the tag is decided once, at Mapper
        construction, from the process's verification state at that moment.
        """
        config = self.config
        options = self.options
        key = (
            config.systolic_array_x,
            config.systolic_array_y,
            config.num_pes,
            config.l1_buffer_config.value,
            config.l1_input_buffer_kib,
            config.l1_weight_buffer_kib,
            config.l1_output_buffer_kib,
            self.hierarchy.blocking_capacity_bytes,
            config.dram_bytes_per_cycle,
            tuple(d.value for d in options.dataflows),
            options.max_tiling_candidates,
            options.padding_max_overhead,
        )
        tag = backend_cache_tag(getattr(options, "backend", "numpy") or "numpy")
        if tag is not None:
            key = key + (tag,)
        return key

    def _resolve_backend(self) -> Optional[ArrayBackend]:
        """The ArrayBackend for the vectorized sweep (``None`` == NumPy)."""
        name = getattr(self.options, "backend", "numpy") or "numpy"
        if name == "numpy":
            return None
        if self._backend_obj is None:
            self._backend_obj = get_backend(name)
        return self._backend_obj

    # ------------------------------------------------------------------
    def map_op(self, op: Operation, tensors: Dict[str, Tensor]) -> OpCost:
        """Map a matrix op; returns its cost (cached by problem signature)."""
        if not is_matrix_op(op.op_type):
            raise ValueError(f"mapper only handles matrix ops, got {op.op_type}")
        problem = _memoized_problem(op, tensors)
        key = self._problem_key(problem)
        cached = self._cache.get(key)
        if cached is not None:
            # Re-label the cached cost for this op name.
            return OpCost(**{**cached.__dict__, "op_name": op.name, "op_type": op.op_type})
        if self.op_cache is not None:
            shared = self.op_cache.get((self._config_key, key))
            if shared is not None:
                self._cache[key] = shared
                return OpCost(
                    **{**shared.__dict__, "op_name": op.name, "op_type": op.op_type}
                )
        cost = self._map_problem(op, problem)
        self._cache[key] = cost
        if self.op_cache is not None:
            self.op_cache.put((self._config_key, key), cost)
        return cost

    def map_ops_batch(
        self, ops: Sequence[Operation], tensors: Dict[str, Tensor]
    ) -> Dict[str, OpCost]:
        """Map many matrix ops in one batched candidate sweep.

        The cross-op twin of :meth:`map_op`: every op that misses both the
        per-trial memo and the shared op cache contributes its candidate grid
        to ONE stacked NumPy pass (:func:`estimate_traffic_batch_ops`), and
        the results land in the same caches :meth:`map_op` uses — so a later
        per-op call sees exactly what it would have computed itself.  Returns
        ``{op.name: OpCost}`` with each cost labeled for its op, bit-for-bit
        equal to mapping the ops one at a time.
        """
        slots: List[Tuple[Operation, Tuple]] = []
        pending: List[Tuple[Tuple, Operation, MatrixProblem]] = []
        pending_keys = set()
        for op in ops:
            if not is_matrix_op(op.op_type):
                raise ValueError(f"mapper only handles matrix ops, got {op.op_type}")
            problem = _memoized_problem(op, tensors)
            key = self._problem_key(problem)
            slots.append((op, key))
            if key in self._cache or key in pending_keys:
                continue
            if self.op_cache is not None:
                shared = self.op_cache.get((self._config_key, key))
                if shared is not None:
                    self._cache[key] = shared
                    continue
            pending_keys.add(key)
            pending.append((key, op, problem))
        if pending:
            with _tracer().span(
                "map_ops_batch",
                category="mapper",
                num_ops=len(ops),
                num_pending=len(pending),
            ):
                costs = self._map_problems_batch(
                    [(op, problem) for _, op, problem in pending]
                )
            for (key, _, _), cost in zip(pending, costs):
                self._cache[key] = cost
                if self.op_cache is not None:
                    self.op_cache.put((self._config_key, key), cost)
        return {
            op.name: OpCost(
                **{**self._cache[key].__dict__, "op_name": op.name, "op_type": op.op_type}
            )
            for op, key in slots
        }

    @staticmethod
    def map_trials_batch(
        entries: Sequence[Tuple["Mapper", Sequence[Operation], Dict[str, Tensor]]]
    ) -> List[Dict[str, OpCost]]:
        """Map many trials' ops in one stacked trials x ops x tilings pass.

        The cross-*trial* twin of :meth:`map_ops_batch`: ``entries`` holds
        ``(mapper, ops, tensors)`` per trial (a mapper may appear in several
        entries — one per workload graph).  Every problem that misses its
        mapper's caches joins ONE stacked candidate sweep, deduplicated by
        ``(mapping config key, problem key)`` so identical design points
        across trials are priced once, then partitioned by (dataflow set,
        backend) — the two axes the stacked selection cannot mix — with
        per-candidate blocking capacities and per-slot DRAM bandwidths
        carrying the remaining config differences through the shared pass.
        Results scatter into exactly the caches :meth:`map_op` /
        :meth:`map_ops_batch` use, bit-for-bit equal to per-trial mapping,
        and the return value is one ``{op.name: OpCost}`` dict per entry.
        """
        per_entry_slots: List[List[Tuple[Operation, Tuple]]] = []
        # group key -> [prep owner mapper, first op, raw problem,
        #               [(mapper, problem_key), ...] subscribers]
        groups: Dict[Tuple, List] = {}
        seen_pending = set()
        for mapper, ops, tensors in entries:
            slots: List[Tuple[Operation, Tuple]] = []
            pending: List[Tuple[Tuple, Operation, MatrixProblem]] = []
            pending_keys = set()
            for op in ops:
                if not is_matrix_op(op.op_type):
                    raise ValueError(
                        f"mapper only handles matrix ops, got {op.op_type}"
                    )
                problem = _memoized_problem(op, tensors)
                key = mapper._problem_key(problem)
                slots.append((op, key))
                if key in mapper._cache or key in pending_keys:
                    continue
                if mapper.op_cache is not None:
                    shared = mapper.op_cache.get((mapper._config_key, key))
                    if shared is not None:
                        mapper._cache[key] = shared
                        continue
                pending_keys.add(key)
                pending.append((key, op, problem))
            per_entry_slots.append(slots)
            if not pending:
                continue
            if not mapper._schedulable():
                # Same short-circuit _map_problems_batch takes, cached the
                # same way map_ops_batch caches its results.
                for key, op, problem in pending:
                    cost = OpCost(
                        op_name=op.name,
                        op_type=op.op_type,
                        flops=problem.flops,
                        padded_flops=problem.flops,
                        schedule_failed=True,
                    )
                    mapper._cache[key] = cost
                    if mapper.op_cache is not None:
                        mapper.op_cache.put((mapper._config_key, key), cost)
                continue
            mapping_key = (
                mapper._config_key
                if mapper._config_key is not None
                else mapper.mapping_config_key()
            )
            for key, op, problem in pending:
                group_key = (mapping_key, key)
                group = groups.get(group_key)
                if group is None:
                    group = [mapper, op, problem, []]
                    groups[group_key] = group
                pending_id = (id(mapper), key)
                if pending_id not in seen_pending:
                    seen_pending.add(pending_id)
                    group[3].append((mapper, key))

        if groups:
            with _tracer().span(
                "map_trials_batch",
                category="mapper",
                num_trials=len(entries),
                num_pending=len(groups),
            ):
                _map_trial_groups(list(groups.values()))

        return [
            {
                op.name: OpCost(
                    **{
                        **mapper._cache[key].__dict__,
                        "op_name": op.name,
                        "op_type": op.op_type,
                    }
                )
                for op, key in slots
            }
            for (mapper, ops, tensors), slots in zip(entries, per_entry_slots)
        ]

    # ------------------------------------------------------------------
    def _problem_key(self, problem: MatrixProblem) -> Tuple:
        return (
            problem.m,
            problem.n,
            problem.k,
            problem.instances,
            problem.stationary_is_weight,
            problem.is_depthwise,
            problem.input_bytes,
            problem.stationary_bytes,
            problem.output_bytes,
        )

    def _schedulable(self) -> bool:
        """Structural feasibility of the datapath for matrix ops (Eq. 5).

        The L1 scratchpads must be able to double-buffer the systolic array's
        operand vectors and stage a reasonable fraction of a stationary tile;
        otherwise no schedule exists and the design point is invalid.
        """
        config = self.config
        input_needed = 2 * config.systolic_array_x * _DTYPE_BYTES
        output_needed = 2 * config.systolic_array_y * _DTYPE_BYTES
        weight_needed = config.systolic_array_x * config.systolic_array_y * _DTYPE_BYTES // 4
        pooled = config.l1_buffer_config is BufferConfig.SHARED
        scale = config.num_pes if pooled else 1
        return (
            config.l1_input_buffer_kib * 1024 * scale >= input_needed
            and config.l1_output_buffer_kib * 1024 * scale >= output_needed
            and config.l1_weight_buffer_kib * 1024 * scale >= weight_needed
        )

    def _map_problem(self, op: Operation, raw_problem: MatrixProblem) -> OpCost:
        if self.options.vectorize:
            return self._map_problems_batch([(op, raw_problem)])[0]
        config = self.config
        if not self._schedulable():
            return OpCost(
                op_name=op.name,
                op_type=op.op_type,
                flops=raw_problem.flops,
                padded_flops=raw_problem.flops,
                schedule_failed=True,
            )

        padding = pad_problem(
            raw_problem,
            config.systolic_array_x,
            config.systolic_array_y,
            max_overhead=self.options.padding_max_overhead,
        )
        problem = padding.problem
        blocking_capacity = self.hierarchy.blocking_capacity_bytes
        dram_bpc = config.dram_bytes_per_cycle

        best = self._search_candidates_scalar(problem, blocking_capacity, dram_bpc)

        if best is None:
            return OpCost(
                op_name=op.name,
                op_type=op.op_type,
                flops=raw_problem.flops,
                padded_flops=problem.flops,
                schedule_failed=True,
            )

        _, mapping, tiling, traffic = best
        compute_cycles = self._compute_cycles(problem, mapping)
        utilization = self._utilization(raw_problem, compute_cycles)
        return OpCost(
            op_name=op.name,
            op_type=op.op_type,
            flops=raw_problem.flops,
            padded_flops=problem.flops,
            compute_cycles=compute_cycles,
            vector_cycles=0.0,
            dram_input_bytes=traffic.input_bytes,
            dram_weight_bytes=traffic.stationary_bytes,
            dram_output_bytes=traffic.output_bytes,
            utilization=utilization,
            dataflow=mapping.dataflow,
            tiling=tiling,
            schedule_failed=False,
        )

    # ------------------------------------------------------------------
    # Candidate search engines.  Both return the winning
    # ``(rank, mapping, tiling, traffic)`` tuple (or None when no candidate
    # fits) and are bit-for-bit equivalent; the scalar loop is the reference.
    # ------------------------------------------------------------------
    def _search_candidates_scalar(
        self, problem: MatrixProblem, blocking_capacity: int, dram_bpc: float
    ):
        # Candidates are ranked lexicographically: execution time first (with a
        # small tolerance so near-ties compare equal), then DRAM traffic, then
        # on-chip buffer footprint.  Preferring small footprints among equal
        # mappings leaves Global Memory headroom for FAST fusion, mirroring
        # the paper's "leftover capacity unused by Timeloop".
        config = self.config
        best: Optional[Tuple[Tuple[float, float, float], SpatialMapping, Tiling, object]] = None
        for dataflow in self.options.dataflows:
            mapping = spatial_mapping(
                problem, config.systolic_array_x, config.systolic_array_y, dataflow
            )
            compute_cycles = self._compute_cycles(problem, mapping)
            for tiling in candidate_tilings(
                problem,
                config.systolic_array_x,
                config.systolic_array_y,
                self.options.max_tiling_candidates,
            ):
                traffic, fits = estimate_traffic(
                    problem, tiling, blocking_capacity, _DTYPE_BYTES
                )
                if not fits:
                    continue
                dram_cycles = traffic.total_bytes / dram_bpc if dram_bpc > 0 else 0.0
                objective = max(compute_cycles, dram_cycles)
                rank = (
                    round(objective, 3),
                    round(traffic.total_bytes),
                    tiling.buffer_bytes(_DTYPE_BYTES),
                )
                if best is None or rank < best[0]:
                    best = (rank, mapping, tiling, traffic)
        return best

    # ------------------------------------------------------------------
    # Batched (NumPy) search engine.  One stacked array pass costs the whole
    # ``ops x dataflows x (m, n, k)-tilings`` candidate space; the scalar loop
    # above remains the reference and the two are bit-for-bit equivalent.
    # ------------------------------------------------------------------
    def _prepared(self, raw_problem: MatrixProblem, problem_key: Tuple) -> _PreparedProblem:
        """Padding, candidate grid, and per-dataflow plans for one problem.

        Memoized across Mapper instances (i.e. across trials) — all inputs
        are captured by ``(problem_key, self._prep_key)``.
        """
        memo_key = (problem_key, self._prep_key)
        prepared = _PREP_MEMO.get(memo_key)
        if prepared is not None:
            return prepared
        config = self.config
        padding = pad_problem(
            raw_problem,
            config.systolic_array_x,
            config.systolic_array_y,
            max_overhead=self.options.padding_max_overhead,
        )
        problem = padding.problem
        m_tiles, n_tiles, k_tiles = tiling_candidate_arrays(
            problem,
            config.systolic_array_x,
            config.systolic_array_y,
            self.options.max_tiling_candidates,
        )
        plans = []
        for dataflow in self.options.dataflows:
            mapping = spatial_mapping(
                problem, config.systolic_array_x, config.systolic_array_y, dataflow
            )
            compute_cycles = self._compute_cycles(problem, mapping)
            plans.append(
                _DataflowPlan(mapping, compute_cycles, round(max(compute_cycles, 0.0), 3))
            )
        prepared = _PreparedProblem(problem, m_tiles, n_tiles, k_tiles, tuple(plans))
        if len(_PREP_MEMO) >= _PREP_MEMO_MAX:
            _PREP_MEMO.clear()
        _PREP_MEMO[memo_key] = prepared
        return prepared

    def _map_problems_batch(
        self, items: Sequence[Tuple[Operation, MatrixProblem]]
    ) -> List[OpCost]:
        """Map many lowered problems with one stacked candidate sweep.

        Bit-for-bit equivalent to mapping each problem through the scalar
        reference: the stacked traffic pass computes the very same float64
        operations per candidate, and the segmented selection below
        reproduces the scalar loop's rounded lexicographic ranking (with its
        first-wins tie-breaking) exactly.
        """
        if not items:
            return []
        if not self._schedulable():
            return [
                OpCost(
                    op_name=op.name,
                    op_type=op.op_type,
                    flops=raw_problem.flops,
                    padded_flops=raw_problem.flops,
                    schedule_failed=True,
                )
                for op, raw_problem in items
            ]
        preps = [
            self._prepared(raw_problem, self._problem_key(raw_problem))
            for _, raw_problem in items
        ]
        if len(preps) == 1:
            op_index = np.zeros(preps[0].m_tiles.shape[0], dtype=np.int64)
            m_all, n_all, k_all = preps[0].m_tiles, preps[0].n_tiles, preps[0].k_tiles
        else:
            op_index, m_all, n_all, k_all = stack_candidate_grids(
                [(prep.m_tiles, prep.n_tiles, prep.k_tiles) for prep in preps]
            )
        arrays = estimate_traffic_batch_ops(
            [prep.problem for prep in preps],
            op_index,
            m_all,
            n_all,
            k_all,
            self.hierarchy.blocking_capacity_bytes,
            _DTYPE_BYTES,
            backend=self._resolve_backend(),
        )
        selections = self._select_batch(preps, arrays, op_index)

        costs: List[OpCost] = []
        for (op, raw_problem), prep, selection in zip(items, preps, selections):
            if selection is None:
                costs.append(
                    OpCost(
                        op_name=op.name,
                        op_type=op.op_type,
                        flops=raw_problem.flops,
                        padded_flops=prep.problem.flops,
                        schedule_failed=True,
                    )
                )
                continue
            _, dataflow_position, flat_index = selection
            plan = prep.per_dataflow[dataflow_position]
            traffic = arrays.traffic(flat_index)
            costs.append(
                OpCost(
                    op_name=op.name,
                    op_type=op.op_type,
                    flops=raw_problem.flops,
                    padded_flops=prep.problem.flops,
                    compute_cycles=plan.compute_cycles,
                    vector_cycles=0.0,
                    dram_input_bytes=traffic.input_bytes,
                    dram_weight_bytes=traffic.stationary_bytes,
                    dram_output_bytes=traffic.output_bytes,
                    utilization=self._utilization(raw_problem, plan.compute_cycles),
                    dataflow=plan.mapping.dataflow,
                    tiling=arrays.tiling(flat_index),
                    schedule_failed=False,
                )
            )
        return costs

    def _select_batch(self, preps, arrays, op_index):
        """Segmented lexicographic argmin over the stacked candidate axis.

        Delegates to the slot-based :func:`_select_batch_slots` with this
        mapper's DRAM bandwidth on every slot — the per-trial view of the
        selection the trial-batched path runs across many configs at once.
        """
        dram_bpc = self.config.dram_bytes_per_cycle
        slots = [
            _SelectionSlot(
                tuple(plan.rounded_cycles for plan in prep.per_dataflow), dram_bpc
            )
            for prep in preps
        ]
        return _select_batch_slots(slots, arrays, op_index)

    # ------------------------------------------------------------------
    def _compute_cycles(self, problem: MatrixProblem, mapping: SpatialMapping) -> float:
        """Distribute the mapped problem across the PE grid of one core."""
        config = self.config
        num_pes = config.num_pes

        tiles_per_instance = mapping.tiles_k * mapping.tiles_n
        total_tiles = problem.instances * tiles_per_instance
        serial_cycles = problem.instances * mapping.cycles_per_instance

        # The streamed dimension can also be split across PEs (each PE gets a
        # chunk of at least _MIN_STREAM_CHUNK rows), which matters for ops
        # with few stationary tiles but many streamed rows.
        streamed = problem.m if mapping.dataflow is Dataflow.WEIGHT_STATIONARY else problem.k
        stream_splits = max(1, streamed // _MIN_STREAM_CHUNK)
        parallelism = total_tiles * stream_splits

        effective_pes = min(num_pes, parallelism)
        if effective_pes <= 0:
            return serial_cycles

        cycles = serial_cycles / effective_pes
        # Load imbalance: work is assigned at tile granularity.
        if total_tiles >= num_pes:
            waves = math.ceil(total_tiles / num_pes)
            imbalance = (waves * num_pes) / total_tiles
            cycles *= imbalance
        return cycles

    def _utilization(self, raw_problem: MatrixProblem, compute_cycles: float) -> float:
        """Achieved fraction of the core's peak MAC throughput."""
        config = self.config
        peak_macs_per_cycle = config.num_pes * config.macs_per_pe
        if compute_cycles <= 0 or peak_macs_per_cycle <= 0:
            return 0.0
        return min(1.0, raw_problem.macs / (compute_cycles * peak_macs_per_cycle))


class _SelectionSlot(NamedTuple):
    """Per-problem inputs to the stacked candidate selection.

    One slot per problem in the flat candidate axis: the rounded compute
    cycles of each dataflow plan (position-aligned across every slot in one
    selection call) and the DRAM bytes/cycle of the *owning* datapath config —
    per-slot because the trial-batched path stacks problems from different
    configs into one pass.
    """

    rounded_cycles: Tuple[float, ...]
    dram_bpc: float


def _select_batch_slots(
    slots: Sequence[_SelectionSlot], arrays, op_index: np.ndarray
) -> List[Optional[Tuple]]:
    """Segmented lexicographic argmin over the stacked candidate axis.

    For every problem and dataflow the scalar loop ranks candidates by
    ``(round(max(cc, dram), 3), rint(total_bytes), buffer_bytes)`` with
    strict-< first-wins tie-breaking.  All three components are exact
    reproductions here: ``round(x, 3)`` stays Python's correctly-rounded
    builtin (computed once per fitting candidate), the segmented
    minimums via ``np.minimum.reduceat`` compare the identical float64 /
    int64 values, and the final position minimum picks the earliest
    candidate in the per-op enumeration order.  Returns, per problem,
    ``None`` (nothing fits) or ``(rank, dataflow_position, flat_index)``.
    """
    num_problems = len(slots)
    selections: List[Optional[Tuple]] = [None] * num_problems
    fit_flat = np.flatnonzero(arrays.fits)
    if fit_flat.size == 0:
        return selections
    if num_problems == 1:
        # Single-problem fast path: a Python scan over the (few) fitting
        # candidates beats segmented NumPy reductions at this size.  Same
        # ranking, same first-wins tie-breaking, same result.
        selections[0] = _select_single_slot(slots[0], arrays, fit_flat)
        return selections
    op_fit = op_index[fit_flat]
    counts = np.bincount(op_fit, minlength=num_problems)
    active = counts > 0
    # Per-problem segment rank (only problems with >= 1 fitting candidate
    # get a segment; empty segments would break reduceat semantics).
    segment_of_problem = np.cumsum(active) - 1
    segment_id = segment_of_problem[op_fit]
    active_counts = counts[active]
    starts = np.zeros(active_counts.shape[0], dtype=np.int64)
    np.cumsum(active_counts[:-1], out=starts[1:])

    totals = arrays.total_bytes[fit_flat]
    # np.rint rounds half-to-even exactly like Python's round(float) -> int.
    rounded_totals = np.rint(totals)
    buffers = arrays.buffer_bytes[fit_flat]
    bpc_by_problem = np.array([slot.dram_bpc for slot in slots], dtype=np.float64)
    if np.all(bpc_by_problem > 0):
        # round() is monotone, so round(max(cc, dram), 3) equals
        # max(round(cc, 3), round(dram, 3)) — rounding the shared DRAM
        # cycles once lets every dataflow reuse them.  Dividing by the
        # gathered per-candidate bandwidth is the identical IEEE division
        # the scalar path performs with its config's scalar.
        rounded_dram = np.array(
            [round(d, 3) for d in (totals / bpc_by_problem[op_fit]).tolist()],
            dtype=np.float64,
        )
    else:
        bpc_fit = bpc_by_problem[op_fit]
        safe_bpc = np.where(bpc_fit > 0, bpc_fit, 1.0)
        dram = np.where(bpc_fit > 0, totals / safe_bpc, 0.0)
        rounded_dram = np.array(
            [round(d, 3) for d in dram.tolist()], dtype=np.float64
        )
    positions = np.arange(fit_flat.shape[0], dtype=np.int64)
    int_sentinel = np.iinfo(np.int64).max
    active_problems = np.flatnonzero(active).tolist()

    num_dataflows = len(slots[0].rounded_cycles)
    for dataflow_position in range(num_dataflows):
        rounded_cc = np.array(
            [slot.rounded_cycles[dataflow_position] for slot in slots],
            dtype=np.float64,
        )
        objective = np.maximum(rounded_cc[op_fit], rounded_dram)
        seg_obj = np.minimum.reduceat(objective, starts)
        tied = objective == seg_obj[segment_id]
        seg_total = np.minimum.reduceat(
            np.where(tied, rounded_totals, np.inf), starts
        )
        tied &= rounded_totals == seg_total[segment_id]
        seg_buffer = np.minimum.reduceat(
            np.where(tied, buffers, int_sentinel), starts
        )
        tied &= buffers == seg_buffer[segment_id]
        seg_position = np.minimum.reduceat(
            np.where(tied, positions, int_sentinel), starts
        )
        obj_list = seg_obj.tolist()
        total_list = seg_total.tolist()
        buffer_list = seg_buffer.tolist()
        position_list = seg_position.tolist()
        for segment, problem_position in enumerate(active_problems):
            rank = (obj_list[segment], total_list[segment], buffer_list[segment])
            incumbent = selections[problem_position]
            if incumbent is None or rank < incumbent[0]:
                selections[problem_position] = (
                    rank,
                    dataflow_position,
                    int(fit_flat[position_list[segment]]),
                )
    return selections


def _select_single_slot(slot: _SelectionSlot, arrays, fit_flat: np.ndarray):
    """Scalar-scan twin of :func:`_select_batch_slots` for one problem."""
    totals = arrays.total_bytes[fit_flat]
    # np.rint rounds half-to-even exactly like Python's round(float) -> int.
    rounded_totals = np.rint(totals).tolist()
    buffer_list = arrays.buffer_bytes[fit_flat].tolist()
    index_list = fit_flat.tolist()
    dram_bpc = slot.dram_bpc
    if dram_bpc > 0:
        rounded_dram = [round(d, 3) for d in (totals / dram_bpc).tolist()]
    else:
        rounded_dram = [0.0] * len(index_list)

    best = None
    for dataflow_position, rounded_cc in enumerate(slot.rounded_cycles):
        # Manual lexicographic argmin with strict-< (first wins on ties),
        # mirroring the scalar loop's ``rank < best[0]`` comparison.
        best_obj = best_total = best_buffer = best_position = None
        for position, rounded_d in enumerate(rounded_dram):
            objective = rounded_cc if rounded_cc >= rounded_d else rounded_d
            if best_position is not None:
                if objective > best_obj:
                    continue
                if objective == best_obj:
                    total = rounded_totals[position]
                    if total > best_total:
                        continue
                    if total == best_total and buffer_list[position] >= best_buffer:
                        continue
            best_obj = objective
            best_total = rounded_totals[position]
            best_buffer = buffer_list[position]
            best_position = position
        rank = (best_obj, best_total, best_buffer)
        if best is None or rank < best[0]:
            best = (rank, dataflow_position, index_list[best_position])
    return best


def _map_trial_groups(groups: List[List]) -> None:
    """Price deduplicated cross-trial problem groups and scatter the costs.

    ``groups`` entries are ``[mapper, op, raw_problem, subscribers]`` (see
    :meth:`Mapper.map_trials_batch`).  Groups are partitioned by the two
    axes one stacked selection cannot mix — the dataflow set (plan positions
    must align across slots) and the array backend — and each partition runs
    ONE :func:`estimate_traffic_batch_ops` pass: per-candidate blocking
    capacities and per-slot DRAM bandwidths carry any remaining config
    differences, with results bitwise equal to per-trial passes (int64
    broadcasting and elementwise float64 division are the identical
    operations the per-config calls perform).
    """
    partitions: Dict[Tuple, List[List]] = {}
    for group in groups:
        mapper = group[0]
        partition_key = (
            tuple(d.value for d in mapper.options.dataflows),
            getattr(mapper.options, "backend", "numpy") or "numpy",
        )
        partitions.setdefault(partition_key, []).append(group)

    for part_groups in partitions.values():
        preps: List[_PreparedProblem] = []
        slots: List[_SelectionSlot] = []
        capacities: List[int] = []
        for mapper, _, raw_problem, _ in part_groups:
            prep = mapper._prepared(raw_problem, mapper._problem_key(raw_problem))
            preps.append(prep)
            slots.append(
                _SelectionSlot(
                    tuple(plan.rounded_cycles for plan in prep.per_dataflow),
                    mapper.config.dram_bytes_per_cycle,
                )
            )
            capacities.append(mapper.hierarchy.blocking_capacity_bytes)
        op_index, m_all, n_all, k_all = stack_candidate_grids(
            [(prep.m_tiles, prep.n_tiles, prep.k_tiles) for prep in preps]
        )
        if len(set(capacities)) == 1:
            capacity: object = capacities[0]
        else:
            capacity = np.array(capacities, dtype=np.int64)[op_index]
        arrays = estimate_traffic_batch_ops(
            [prep.problem for prep in preps],
            op_index,
            m_all,
            n_all,
            k_all,
            capacity,
            _DTYPE_BYTES,
            backend=part_groups[0][0]._resolve_backend(),
        )
        selections = _select_batch_slots(slots, arrays, op_index)
        for group, prep, selection in zip(part_groups, preps, selections):
            mapper, op, raw_problem, subscribers = group
            if selection is None:
                cost = OpCost(
                    op_name=op.name,
                    op_type=op.op_type,
                    flops=raw_problem.flops,
                    padded_flops=prep.problem.flops,
                    schedule_failed=True,
                )
            else:
                _, dataflow_position, flat_index = selection
                plan = prep.per_dataflow[dataflow_position]
                traffic = arrays.traffic(flat_index)
                cost = OpCost(
                    op_name=op.name,
                    op_type=op.op_type,
                    flops=raw_problem.flops,
                    padded_flops=prep.problem.flops,
                    compute_cycles=plan.compute_cycles,
                    vector_cycles=0.0,
                    dram_input_bytes=traffic.input_bytes,
                    dram_weight_bytes=traffic.stationary_bytes,
                    dram_output_bytes=traffic.output_bytes,
                    utilization=mapper._utilization(raw_problem, plan.compute_cycles),
                    dataflow=plan.mapping.dataflow,
                    tiling=arrays.tiling(flat_index),
                    schedule_failed=False,
                )
            for sub_mapper, key in subscribers:
                sub_mapper._cache[key] = cost
                if sub_mapper.op_cache is not None:
                    sub_mapper.op_cache.put((sub_mapper._config_key, key), cost)
