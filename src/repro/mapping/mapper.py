"""Timeloop-style mapper: schedules matrix ops onto the datapath.

For each matrix op the mapper
(1) lowers it to a canonical GEMM-like problem,
(2) applies the tensor padding pre-pass,
(3) checks structural schedulability (minimum scratchpad sizes),
(4) searches a pruned mapspace of dataflows x tilings, estimating compute
    cycles and DRAM traffic for each candidate, and
(5) returns the best mapping as an :class:`~repro.mapping.costmodel.OpCost`.

This replaces the Timeloop invocation used by the paper's simulator; the
search is deliberately small (a few dozen candidates per op) because the
datapath template constrains the mapspace to known-good mapping schemes,
exactly as Vizier does in the paper (Section 5.3).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.hardware.datapath import BufferConfig, DatapathConfig
from repro.hardware.memory import MemoryHierarchy
from repro.mapping.costmodel import OpCost
from repro.mapping.dataflow import Dataflow, SpatialMapping, spatial_mapping
from repro.mapping.loopnest import MatrixProblem, extract_problem
from repro.mapping.padding import pad_problem
from repro.mapping.tiling import Tiling, candidate_tilings, estimate_traffic
from repro.workloads.graph import Operation, Tensor
from repro.workloads.ops import is_matrix_op

__all__ = ["Mapper", "MapperOptions"]

_DTYPE_BYTES = 2  # bfloat16 throughout, matching the paper's evaluation.
_MIN_STREAM_CHUNK = 128  # Minimum rows per PE when splitting the streamed dim.


class MapperOptions:
    """Tunable knobs of the mapper search."""

    def __init__(
        self,
        dataflows: Tuple[Dataflow, ...] = (Dataflow.WEIGHT_STATIONARY, Dataflow.OUTPUT_STATIONARY),
        max_tiling_candidates: int = 48,
        padding_max_overhead: float = 0.2,
    ) -> None:
        self.dataflows = dataflows
        self.max_tiling_candidates = max_tiling_candidates
        self.padding_max_overhead = padding_max_overhead


class Mapper:
    """Maps matrix operations onto a single core of a datapath."""

    def __init__(
        self,
        config: DatapathConfig,
        hierarchy: Optional[MemoryHierarchy] = None,
        options: Optional[MapperOptions] = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy or MemoryHierarchy(config)
        self.options = options or MapperOptions()
        self._cache: Dict[Tuple, OpCost] = {}

    # ------------------------------------------------------------------
    def map_op(self, op: Operation, tensors: Dict[str, Tensor]) -> OpCost:
        """Map a matrix op; returns its cost (cached by problem signature)."""
        if not is_matrix_op(op.op_type):
            raise ValueError(f"mapper only handles matrix ops, got {op.op_type}")
        problem = extract_problem(op, tensors)
        key = self._problem_key(problem)
        cached = self._cache.get(key)
        if cached is not None:
            # Re-label the cached cost for this op name.
            return OpCost(**{**cached.__dict__, "op_name": op.name, "op_type": op.op_type})
        cost = self._map_problem(op, problem)
        self._cache[key] = cost
        return cost

    # ------------------------------------------------------------------
    def _problem_key(self, problem: MatrixProblem) -> Tuple:
        return (
            problem.m,
            problem.n,
            problem.k,
            problem.instances,
            problem.stationary_is_weight,
            problem.is_depthwise,
            problem.input_bytes,
            problem.stationary_bytes,
            problem.output_bytes,
        )

    def _schedulable(self) -> bool:
        """Structural feasibility of the datapath for matrix ops (Eq. 5).

        The L1 scratchpads must be able to double-buffer the systolic array's
        operand vectors and stage a reasonable fraction of a stationary tile;
        otherwise no schedule exists and the design point is invalid.
        """
        config = self.config
        input_needed = 2 * config.systolic_array_x * _DTYPE_BYTES
        output_needed = 2 * config.systolic_array_y * _DTYPE_BYTES
        weight_needed = config.systolic_array_x * config.systolic_array_y * _DTYPE_BYTES // 4
        pooled = config.l1_buffer_config is BufferConfig.SHARED
        scale = config.num_pes if pooled else 1
        return (
            config.l1_input_buffer_kib * 1024 * scale >= input_needed
            and config.l1_output_buffer_kib * 1024 * scale >= output_needed
            and config.l1_weight_buffer_kib * 1024 * scale >= weight_needed
        )

    def _map_problem(self, op: Operation, raw_problem: MatrixProblem) -> OpCost:
        config = self.config
        if not self._schedulable():
            return OpCost(
                op_name=op.name,
                op_type=op.op_type,
                flops=raw_problem.flops,
                padded_flops=raw_problem.flops,
                schedule_failed=True,
            )

        padding = pad_problem(
            raw_problem,
            config.systolic_array_x,
            config.systolic_array_y,
            max_overhead=self.options.padding_max_overhead,
        )
        problem = padding.problem
        blocking_capacity = self.hierarchy.blocking_capacity_bytes
        dram_bpc = config.dram_bytes_per_cycle

        # Candidates are ranked lexicographically: execution time first (with a
        # small tolerance so near-ties compare equal), then DRAM traffic, then
        # on-chip buffer footprint.  Preferring small footprints among equal
        # mappings leaves Global Memory headroom for FAST fusion, mirroring
        # the paper's "leftover capacity unused by Timeloop".
        best: Optional[Tuple[Tuple[float, float, float], SpatialMapping, Tiling, object]] = None
        for dataflow in self.options.dataflows:
            mapping = spatial_mapping(
                problem, config.systolic_array_x, config.systolic_array_y, dataflow
            )
            compute_cycles = self._compute_cycles(problem, mapping)
            for tiling in candidate_tilings(
                problem,
                config.systolic_array_x,
                config.systolic_array_y,
                self.options.max_tiling_candidates,
            ):
                traffic, fits = estimate_traffic(
                    problem, tiling, blocking_capacity, _DTYPE_BYTES
                )
                if not fits:
                    continue
                dram_cycles = traffic.total_bytes / dram_bpc if dram_bpc > 0 else 0.0
                objective = max(compute_cycles, dram_cycles)
                rank = (
                    round(objective, 3),
                    round(traffic.total_bytes),
                    tiling.buffer_bytes(_DTYPE_BYTES),
                )
                if best is None or rank < best[0]:
                    best = (rank, mapping, tiling, traffic)

        if best is None:
            return OpCost(
                op_name=op.name,
                op_type=op.op_type,
                flops=raw_problem.flops,
                padded_flops=problem.flops,
                schedule_failed=True,
            )

        _, mapping, tiling, traffic = best
        compute_cycles = self._compute_cycles(problem, mapping)
        utilization = self._utilization(raw_problem, compute_cycles)
        return OpCost(
            op_name=op.name,
            op_type=op.op_type,
            flops=raw_problem.flops,
            padded_flops=problem.flops,
            compute_cycles=compute_cycles,
            vector_cycles=0.0,
            dram_input_bytes=traffic.input_bytes,
            dram_weight_bytes=traffic.stationary_bytes,
            dram_output_bytes=traffic.output_bytes,
            utilization=utilization,
            dataflow=mapping.dataflow,
            tiling=tiling,
            schedule_failed=False,
        )

    # ------------------------------------------------------------------
    def _compute_cycles(self, problem: MatrixProblem, mapping: SpatialMapping) -> float:
        """Distribute the mapped problem across the PE grid of one core."""
        config = self.config
        num_pes = config.num_pes

        tiles_per_instance = mapping.tiles_k * mapping.tiles_n
        total_tiles = problem.instances * tiles_per_instance
        serial_cycles = problem.instances * mapping.cycles_per_instance

        # The streamed dimension can also be split across PEs (each PE gets a
        # chunk of at least _MIN_STREAM_CHUNK rows), which matters for ops
        # with few stationary tiles but many streamed rows.
        streamed = problem.m if mapping.dataflow is Dataflow.WEIGHT_STATIONARY else problem.k
        stream_splits = max(1, streamed // _MIN_STREAM_CHUNK)
        parallelism = total_tiles * stream_splits

        effective_pes = min(num_pes, parallelism)
        if effective_pes <= 0:
            return serial_cycles

        cycles = serial_cycles / effective_pes
        # Load imbalance: work is assigned at tile granularity.
        if total_tiles >= num_pes:
            waves = math.ceil(total_tiles / num_pes)
            imbalance = (waves * num_pes) / total_tiles
            cycles *= imbalance
        return cycles

    def _utilization(self, raw_problem: MatrixProblem, compute_cycles: float) -> float:
        """Achieved fraction of the core's peak MAC throughput."""
        config = self.config
        peak_macs_per_cycle = config.num_pes * config.macs_per_pe
        if compute_cycles <= 0 or peak_macs_per_cycle <= 0:
            return 0.0
        return min(1.0, raw_problem.macs / (compute_cycles * peak_macs_per_cycle))
