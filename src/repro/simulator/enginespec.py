"""The unified engine-spec API: one value naming the evaluation engine.

Engine selection used to be scattered across ``MapperOptions.vectorize``,
``SimulationOptions.vectorized_mapper`` / ``graph_batched_mapper`` /
``trial_batched_mapper``, two cache toggles, and four ad-hoc CLI negation
flags.  :class:`EngineSpec` consolidates all of it into one frozen value
object with a compact string grammar — the ``--engine`` flag on
``repro search/sweep/profile/serve``::

    MAPPER[:key=value[,key=value...]]

    --engine graph-batched                      # the default engine
    --engine scalar                             # bit-for-bit reference loop
    --engine trial-batched:backend=cupy         # cross-trial stacking on GPU
    --engine graph-batched:op_cache=off,region_cache=off
    --engine graph-batched:region_store=runs/regions.jsonl
    --engine graph-batched:cache_service=http://cache-host:8642

``MAPPER`` is one of ``scalar`` / ``vectorized`` / ``graph-batched`` /
``trial-batched`` (each level rides on the previous one); keys are
``backend`` (see :mod:`repro.mapping.backend`), ``op_cache`` and
``region_cache`` (booleans: ``on/off/true/false/yes/no/1/0``),
``region_store`` (a path — persist region results as a JSONL store the way
``--op-cache`` persists op costs) and ``cache_service`` (a ``repro serve``
base URL whose ``/cache/region`` routes act as the cluster-wide region
tier).  ``str()`` of a spec is canonical and round-trips through
:meth:`EngineSpec.parse`, omitting values that equal the defaults.

The legacy flags (``--scalar-mapper`` / ``--per-op-mapper`` /
``--no-op-cache`` / ``--no-region-cache``) remain as deprecation aliases
that fold onto a spec and warn once per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.mapping.backend import BACKEND_NAMES

__all__ = ["EngineSpec", "MAPPER_MODES", "DEFAULT_ENGINE"]

#: Mapper engines, in speed order; each level subsumes the previous one.
MAPPER_MODES: Tuple[str, ...] = (
    "scalar",
    "vectorized",
    "graph-batched",
    "trial-batched",
)

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


def _parse_bool(key: str, word: str) -> bool:
    lowered = word.strip().lower()
    if lowered in _TRUE_WORDS:
        return True
    if lowered in _FALSE_WORDS:
        return False
    raise ValueError(
        f"engine spec: {key} must be a boolean "
        f"(on/off/true/false/yes/no/1/0), got {word!r}"
    )


@dataclass(frozen=True)
class EngineSpec:
    """One immutable value describing the whole evaluation engine."""

    mapper: str = "graph-batched"
    backend: str = "numpy"
    op_cache: bool = True
    region_cache: bool = True
    region_store: Optional[str] = None
    cache_service: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mapper not in MAPPER_MODES:
            raise ValueError(
                f"unknown mapper {self.mapper!r} "
                f"(expected one of: {', '.join(MAPPER_MODES)})"
            )
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(expected one of: {', '.join(BACKEND_NAMES)})"
            )
        if self.backend != "numpy" and self.mapper == "scalar":
            raise ValueError(
                "engine spec: the scalar mapper is the pure-Python reference "
                "and takes no array backend"
            )

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "EngineSpec":
        """Parse the ``MAPPER[:key=value,...]`` grammar (see module doc)."""
        text = (text or "").strip()
        if not text:
            return cls()
        head, _, tail = text.partition(":")
        head = head.strip()
        if "=" in head:  # bare options, default mapper: "backend=torch"
            tail = text
            head = ""
        values = {}
        if head:
            if head not in MAPPER_MODES:
                raise ValueError(
                    f"unknown mapper {head!r} in engine spec {text!r} "
                    f"(expected one of: {', '.join(MAPPER_MODES)})"
                )
            values["mapper"] = head
        if tail.strip():
            for item in tail.split(","):
                item = item.strip()
                if not item:
                    continue
                key, eq, value = item.partition("=")
                key = key.strip().replace("-", "_")
                if not eq:
                    raise ValueError(
                        f"engine spec option {item!r} is not key=value"
                    )
                if key == "backend":
                    values["backend"] = value.strip()
                elif key in ("op_cache", "region_cache"):
                    values[key] = _parse_bool(key, value)
                elif key in ("region_store", "cache_service"):
                    stripped = value.strip()
                    if not stripped:
                        raise ValueError(
                            f"engine spec: {key} needs a non-empty value"
                        )
                    values[key] = stripped
                else:
                    raise ValueError(
                        f"unknown engine spec option {key!r} "
                        "(expected backend / op_cache / region_cache / "
                        "region_store / cache_service)"
                    )
        return cls(**values)

    def __str__(self) -> str:
        """Canonical compact form; round-trips through :meth:`parse`."""
        default = type(self)()
        options = []
        if self.backend != default.backend:
            options.append(f"backend={self.backend}")
        if self.op_cache != default.op_cache:
            options.append(f"op_cache={'on' if self.op_cache else 'off'}")
        if self.region_cache != default.region_cache:
            options.append(
                f"region_cache={'on' if self.region_cache else 'off'}"
            )
        if self.region_store is not None:
            options.append(f"region_store={self.region_store}")
        if self.cache_service is not None:
            options.append(f"cache_service={self.cache_service}")
        if options:
            return f"{self.mapper}:{','.join(options)}"
        return self.mapper

    # ------------------------------------------------------------------
    def to_simulation_options(self, **extra):
        """Expand into a :class:`~repro.simulator.engine.SimulationOptions`.

        ``extra`` passes through any non-engine knobs (``fusion_solver``,
        ``op_cache_path``, ...).  The mapper ladder maps onto the three
        boolean engine fields: each level implies the ones below it.
        """
        from repro.simulator.engine import SimulationOptions

        return SimulationOptions(
            vectorized_mapper=self.mapper != "scalar",
            graph_batched_mapper=self.mapper in ("graph-batched", "trial-batched"),
            trial_batched_mapper=self.mapper == "trial-batched",
            backend=self.backend,
            op_cache_enabled=self.op_cache,
            region_cache_enabled=self.region_cache,
            region_store_path=self.region_store,
            region_cache_service=self.cache_service,
            **extra,
        )

    @classmethod
    def from_simulation_options(cls, options) -> "EngineSpec":
        """Recover the spec a :class:`SimulationOptions` encodes.

        The inverse of :meth:`to_simulation_options` under the same default
        resolution the :class:`~repro.simulator.engine.Simulator` applies
        (``None`` means vectorized + graph-batched, trial batching off).
        """
        mapper_options = getattr(options, "mapper_options", None)
        vectorized = options.vectorized_mapper
        if vectorized is None:
            vectorized = mapper_options.vectorize if mapper_options else True
        graph_batched = vectorized and (
            options.graph_batched_mapper
            if options.graph_batched_mapper is not None
            else True
        )
        trial_batched = graph_batched and bool(
            getattr(options, "trial_batched_mapper", None)
        )
        if trial_batched:
            mapper = "trial-batched"
        elif graph_batched:
            mapper = "graph-batched"
        elif vectorized:
            mapper = "vectorized"
        else:
            mapper = "scalar"
        backend = getattr(options, "backend", "numpy") or "numpy"
        if backend == "numpy" and mapper_options is not None:
            backend = getattr(mapper_options, "backend", "numpy") or "numpy"
        if mapper == "scalar":
            backend = "numpy"
        return cls(
            mapper=mapper,
            backend=backend,
            op_cache=bool(getattr(options, "op_cache_enabled", True)),
            region_cache=bool(getattr(options, "region_cache_enabled", True)),
            region_store=getattr(options, "region_store_path", None),
            cache_service=getattr(options, "region_cache_service", None),
        )


#: The session default: graph-batched NumPy with both caches on.
DEFAULT_ENGINE = EngineSpec()
