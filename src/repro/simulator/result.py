"""Simulation result records and derived metrics.

A :class:`SimulationResult` holds one workload's per-region performance on a
datapath, both before and after FAST fusion, together with every derived
metric the paper's evaluation reports: QPS, latency, operational intensity,
compute utilization, memory stall fraction, per-layer utilization, and
runtime share by op type or BERT component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.fusion.fast_fusion import FusionDecision, FusionResult
from repro.hardware.datapath import DatapathConfig
from repro.workloads.ops import OpType

__all__ = ["RegionPerformance", "SimulationResult"]


@dataclass
class RegionPerformance:
    """Performance of one fusion region on one core."""

    index: int
    name: str
    op_names: List[str]
    primary_op_type: OpType
    flops: int
    compute_cycles: float
    vector_cycles: float
    dram_input_bytes: float
    dram_weight_bytes: float
    dram_output_bytes: float
    pre_fusion_cycles: float
    post_fusion_cycles: float
    matrix_utilization: float
    fusion: FusionDecision = field(default_factory=FusionDecision)
    op_busy_cycles: Dict[str, float] = field(default_factory=dict)

    @property
    def busy_cycles(self) -> float:
        """Region busy time: matrix and VPU work overlap within a fused region."""
        return max(self.compute_cycles, self.vector_cycles)

    @property
    def dram_bytes_pre_fusion(self) -> float:
        """DRAM traffic before FAST fusion."""
        return self.dram_input_bytes + self.dram_weight_bytes + self.dram_output_bytes

    @property
    def dram_bytes_post_fusion(self) -> float:
        """DRAM traffic after FAST fusion (pinned tensors stay on chip)."""
        traffic = self.dram_bytes_pre_fusion
        if self.fusion.pin_input:
            traffic -= self.dram_input_bytes
        if self.fusion.pin_output:
            traffic -= self.dram_output_bytes
        if self.fusion.pin_weights:
            traffic -= self.dram_weight_bytes
        return max(0.0, traffic)

    @property
    def achieved_utilization(self) -> float:
        """Fraction of the op's own busy time the region spends stalled-free.

        Used for per-layer utilization plots: the region's useful FLOPs per
        cycle of wall time, normalized by peak, is computed by the parent
        result which knows the peak throughput.
        """
        if self.post_fusion_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / self.post_fusion_cycles)


@dataclass
class SimulationResult:
    """Whole-workload simulation outcome on a datapath configuration."""

    workload: str
    config: DatapathConfig
    batch_size: int
    regions: List[RegionPerformance]
    fusion_result: Optional[FusionResult]
    schedule_failed: bool
    clock_ghz: float
    num_cores: int

    # ------------------------------------------------------------------
    # Time and throughput
    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        """Post-fusion execution cycles for one batch on one core."""
        return sum(r.post_fusion_cycles for r in self.regions)

    @property
    def pre_fusion_cycles(self) -> float:
        """Pre-fusion execution cycles for one batch on one core."""
        return sum(r.pre_fusion_cycles for r in self.regions)

    @property
    def execution_time_s(self) -> float:
        """Wall-clock time to run one batch on one core."""
        return self.total_cycles / (self.clock_ghz * 1e9)

    @property
    def latency_s(self) -> float:
        """Inference latency of one batch (the paper's step time)."""
        return self.execution_time_s

    @property
    def latency_ms(self) -> float:
        """Inference latency in milliseconds."""
        return self.execution_time_s * 1e3

    @property
    def qps(self) -> float:
        """Aggregate queries per second across all cores."""
        if self.schedule_failed or self.execution_time_s <= 0:
            return 0.0
        return self.batch_size * self.num_cores / self.execution_time_s

    def perf_per_tdp(self, tdp_w: float) -> float:
        """QPS per watt of TDP."""
        if tdp_w <= 0:
            return 0.0
        return self.qps / tdp_w

    # ------------------------------------------------------------------
    # FLOPs, traffic, intensity
    # ------------------------------------------------------------------
    @property
    def total_flops(self) -> int:
        """Useful FLOPs of one batch."""
        return sum(r.flops for r in self.regions)

    @property
    def dram_bytes_pre_fusion(self) -> float:
        """Total DRAM traffic before FAST fusion."""
        return sum(r.dram_bytes_pre_fusion for r in self.regions)

    @property
    def dram_bytes_post_fusion(self) -> float:
        """Total DRAM traffic after FAST fusion."""
        return sum(r.dram_bytes_post_fusion for r in self.regions)

    def operational_intensity(self, post_fusion: bool = True) -> float:
        """Model-level FLOPs per DRAM byte."""
        traffic = self.dram_bytes_post_fusion if post_fusion else self.dram_bytes_pre_fusion
        if traffic <= 0:
            return float("inf")
        return self.total_flops / traffic

    # ------------------------------------------------------------------
    # Utilization and stalls
    # ------------------------------------------------------------------
    @property
    def peak_flops_per_cycle(self) -> float:
        """Peak matrix FLOPs per cycle of one core."""
        return 2.0 * self.config.num_pes * self.config.macs_per_pe

    @property
    def compute_utilization(self) -> float:
        """Achieved fraction of peak FLOPs over the whole model."""
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.total_flops / (self.total_cycles * self.peak_flops_per_cycle))

    def memory_stall_fraction(self, post_fusion: bool = True) -> float:
        """Fraction of execution time spent waiting on DRAM transfers."""
        total = 0.0
        stalled = 0.0
        for region in self.regions:
            cycles = region.post_fusion_cycles if post_fusion else region.pre_fusion_cycles
            total += cycles
            stalled += max(0.0, cycles - region.busy_cycles)
        if total <= 0:
            return 0.0
        return stalled / total

    @property
    def fusion_efficiency(self) -> float:
        """Fraction of pre-fusion memory stall time removed by FAST fusion.

        This is the "Fusion Efficiency" row of Table 5 (85% for FAST-Large on
        EfficientNet-B7): how much of the idle DRAM-wait time fusion
        recovered.
        """
        stall_pre = sum(
            max(0.0, r.pre_fusion_cycles - r.busy_cycles) for r in self.regions
        )
        stall_post = sum(
            max(0.0, r.post_fusion_cycles - r.busy_cycles) for r in self.regions
        )
        if stall_pre <= 0:
            return 0.0
        return 1.0 - stall_post / stall_pre

    # ------------------------------------------------------------------
    # Attribution breakdowns
    # ------------------------------------------------------------------
    def runtime_fraction_by_op_type(self, post_fusion: bool = True) -> Dict[OpType, float]:
        """Fraction of execution time attributed to each (primary) op type."""
        totals: Dict[OpType, float] = {}
        for region in self.regions:
            cycles = region.post_fusion_cycles if post_fusion else region.pre_fusion_cycles
            totals[region.primary_op_type] = totals.get(region.primary_op_type, 0.0) + cycles
        grand_total = sum(totals.values())
        if grand_total <= 0:
            return {k: 0.0 for k in totals}
        return {k: v / grand_total for k, v in totals.items()}

    def flop_fraction_by_op_type(self) -> Dict[OpType, float]:
        """Fraction of useful FLOPs attributed to each (primary) op type."""
        totals: Dict[OpType, float] = {}
        for region in self.regions:
            totals[region.primary_op_type] = totals.get(region.primary_op_type, 0.0) + region.flops
        grand_total = sum(totals.values())
        if grand_total <= 0:
            return {k: 0.0 for k in totals}
        return {k: v / grand_total for k, v in totals.items()}

    def runtime_fraction_by(self, classify: Callable[[str], str], post_fusion: bool = True) -> Dict[str, float]:
        """Fraction of execution time grouped by an arbitrary op-name classifier.

        A region's time is split across its member ops proportionally to each
        op's busy cycles (ops with no recorded busy time share the remainder
        equally), so vector ops fused into a matrix op's region — e.g. the
        softmax following the attention-score einsum — are still attributed
        to their own component.  Used for the BERT breakdown of Figure 5 with
        :func:`repro.workloads.bert.op_component` as the classifier.
        """
        totals: Dict[str, float] = {}
        for region in self.regions:
            cycles = region.post_fusion_cycles if post_fusion else region.pre_fusion_cycles
            busy = region.op_busy_cycles or {}
            busy_total = sum(busy.values())
            if busy_total > 0:
                for op_name in region.op_names:
                    share = busy.get(op_name, 0.0) / busy_total
                    key = classify(op_name)
                    totals[key] = totals.get(key, 0.0) + cycles * share
            else:
                anchor = region.op_names[0] if region.op_names else region.name
                key = classify(anchor)
                totals[key] = totals.get(key, 0.0) + cycles
        grand_total = sum(totals.values())
        if grand_total <= 0:
            return {k: 0.0 for k in totals}
        return {k: v / grand_total for k, v in totals.items()}

    def per_layer_utilization(self, matrix_only: bool = True) -> List[float]:
        """Per-region achieved fraction of peak FLOPs (Figures 4 and 14)."""
        utilizations = []
        for region in self.regions:
            if matrix_only and region.primary_op_type not in (
                OpType.CONV2D,
                OpType.DEPTHWISE_CONV2D,
                OpType.MATMUL,
                OpType.EINSUM,
            ):
                continue
            cycles = region.post_fusion_cycles
            if cycles <= 0:
                utilizations.append(0.0)
                continue
            utilizations.append(
                min(1.0, region.flops / (cycles * self.peak_flops_per_cycle))
            )
        return utilizations

    def summary(self) -> Dict[str, float]:
        """Headline metrics as a flat dictionary."""
        return {
            "workload": self.workload,
            "batch_size": self.batch_size,
            "qps": self.qps,
            "latency_ms": self.latency_ms,
            "compute_utilization": self.compute_utilization,
            "op_intensity_pre_fusion": self.operational_intensity(post_fusion=False),
            "op_intensity_post_fusion": self.operational_intensity(post_fusion=True),
            "memory_stall_pre_fusion": self.memory_stall_fraction(post_fusion=False),
            "memory_stall_post_fusion": self.memory_stall_fraction(post_fusion=True),
            "fusion_efficiency": self.fusion_efficiency,
            "schedule_failed": self.schedule_failed,
        }
