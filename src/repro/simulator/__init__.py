"""Whole-graph accelerator simulator (performance, traffic, utilization)."""

from repro.simulator.engine import SimulationOptions, Simulator
from repro.simulator.result import RegionPerformance, SimulationResult
from repro.simulator.roofline import RooflinePoint, attainable_flops, roofline_point
from repro.simulator.vector_ops import vector_op_cost, vpu_lanes_per_core

__all__ = [
    "RegionPerformance",
    "RooflinePoint",
    "SimulationOptions",
    "SimulationResult",
    "Simulator",
    "attainable_flops",
    "roofline_point",
    "vector_op_cost",
    "vpu_lanes_per_core",
]
