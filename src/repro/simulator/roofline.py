"""Roofline analysis helpers.

The roofline model relates a workload's operational intensity (FLOPs per
DRAM byte) to the performance an accelerator can sustain: below the
*ridgepoint* (peak FLOPs divided by peak bandwidth) the workload is memory
bound; above it, compute bound.  Section 4.1 of the paper uses this framing
to show that EfficientNet (13-35 FLOPS/B un-fused) cannot run at full speed
on a TPU-v3 (ridgepoint 137 FLOPS/B) without better fusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.datapath import DatapathConfig

__all__ = ["RooflinePoint", "roofline_point", "attainable_flops"]


@dataclass(frozen=True)
class RooflinePoint:
    """A workload's position on an accelerator's roofline."""

    operational_intensity: float
    ridgepoint: float
    attainable_flops: float
    peak_flops: float
    memory_bound: bool

    @property
    def attainable_fraction(self) -> float:
        """Attainable performance as a fraction of peak."""
        if self.peak_flops <= 0:
            return 0.0
        return self.attainable_flops / self.peak_flops


def attainable_flops(config: DatapathConfig, operational_intensity: float) -> float:
    """Peak-attainable FLOP/s at a given operational intensity."""
    if operational_intensity <= 0:
        return 0.0
    bandwidth_bound = operational_intensity * config.dram_bandwidth_bytes_per_s
    return min(config.peak_matrix_flops, bandwidth_bound)


def roofline_point(config: DatapathConfig, operational_intensity: float) -> RooflinePoint:
    """Classify a workload on the accelerator's roofline."""
    ridge = config.operational_intensity_ridgepoint
    attainable = attainable_flops(config, operational_intensity)
    return RooflinePoint(
        operational_intensity=operational_intensity,
        ridgepoint=ridge,
        attainable_flops=attainable,
        peak_flops=config.peak_matrix_flops,
        memory_bound=operational_intensity < ridge,
    )
