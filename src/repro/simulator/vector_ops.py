"""Cost models for vector (non-MAC) operations on the VPU.

Vector ops — softmax, layer/batch normalization, element-wise arithmetic,
pooling, reductions — execute on the per-PE Vector Processing Unit rather
than the systolic array.  Their throughput is one lane-operation per lane per
cycle, so an op's VPU time is its lane-operation count divided by the chip's
total lane count.  Softmax additionally gets a lowering-dependent DRAM
traffic multiplier (three-pass vs two-pass, Section 5.6).
"""

from __future__ import annotations

from typing import Dict

from repro.compiler.softmax import SoftmaxCostFactors, THREE_PASS_SOFTMAX
from repro.hardware.datapath import DatapathConfig
from repro.mapping.costmodel import OpCost
from repro.workloads.graph import Graph, Operation, Tensor, TensorKind
from repro.workloads.ops import OpType, op_flops

__all__ = ["vector_op_cost", "vector_cost_cache_key", "vpu_lanes_per_core"]

# Ops that are pure metadata transforms and move no data at execution time.
_ZERO_COST_TYPES = {OpType.RESHAPE, OpType.SLICE}


def vpu_lanes_per_core(config: DatapathConfig) -> int:
    """Total VPU lanes available in one core."""
    return config.num_pes * config.vpu_lanes_per_pe


def vector_cost_cache_key(
    graph: Graph,
    op: Operation,
    config: DatapathConfig,
    softmax_factors: SoftmaxCostFactors,
) -> tuple:
    """Cross-trial cache key for :func:`vector_op_cost`.

    A vector op's cost is a pure function of the op structure (captured by
    the graph's content fingerprint plus the op name), the core's VPU lane
    count, and the softmax lowering factors — everything else about the
    datapath is irrelevant to the VPU model.
    """
    return (
        "vector",
        graph.fingerprint(),
        op.name,
        vpu_lanes_per_core(config),
        softmax_factors.input_traffic_factor,
        softmax_factors.output_traffic_factor,
        softmax_factors.flops_factor,
    )


def vector_op_cost(
    op: Operation,
    tensors: Dict[str, Tensor],
    config: DatapathConfig,
    softmax_factors: SoftmaxCostFactors = THREE_PASS_SOFTMAX,
) -> OpCost:
    """Compute the VPU cost of a vector op on one core of ``config``.

    The returned DRAM byte counts describe the op in isolation (its inputs
    read from and outputs written to DRAM); the simulator only charges the
    fraction of that traffic crossing a fusion-region boundary.
    """
    flops = op_flops(op, tensors)
    effective_flops = float(flops)

    input_bytes = sum(
        tensors[name].size_bytes
        for name in op.inputs
        if tensors[name].kind is TensorKind.ACTIVATION
    )
    weight_bytes = sum(
        tensors[name].size_bytes
        for name in op.inputs
        if tensors[name].kind in (TensorKind.WEIGHT, TensorKind.CONSTANT)
    )
    output_bytes = sum(tensors[name].size_bytes for name in op.outputs)

    if op.op_type in _ZERO_COST_TYPES:
        return OpCost(
            op_name=op.name,
            op_type=op.op_type,
            flops=0,
            padded_flops=0,
        )

    if op.op_type is OpType.SOFTMAX:
        input_bytes *= softmax_factors.input_traffic_factor
        output_bytes *= softmax_factors.output_traffic_factor
        effective_flops *= softmax_factors.flops_factor
    elif op.op_type is OpType.LAYERNORM:
        # Mean/variance pass plus normalization pass: input read twice.
        input_bytes *= 2.0

    lanes = max(1, vpu_lanes_per_core(config))
    vector_cycles = effective_flops / lanes

    return OpCost(
        op_name=op.name,
        op_type=op.op_type,
        flops=flops,
        padded_flops=int(effective_flops),
        compute_cycles=0.0,
        vector_cycles=vector_cycles,
        dram_input_bytes=float(input_bytes),
        dram_weight_bytes=float(weight_bytes),
        dram_output_bytes=float(output_bytes),
        utilization=0.0,
    )
