"""Whole-graph accelerator simulator.

The simulator evaluates a workload graph on a datapath configuration using
the same three-stage flow as the paper (Figure 1): matrix ops are scheduled
by the Timeloop-style mapper, vector ops are costed on the VPU, per-region
pre-fusion performance is assembled, and — when the datapath has a Global
Memory and fusion is enabled — the FAST fusion ILP assigns tensors to the
Global Memory and post-fusion performance is produced.

Multi-core chips (the dual-core TPU-v3 baseline) are modeled by simulating a
single core with its share of the DRAM bandwidth and multiplying throughput
by the core count, matching the paper's treatment of each TPU-v3 core as a
separate accelerator serving its own batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.compiler.passes import CompiledModel, compile_graph
from repro.compiler.xla_fusion import FusionRegion
from repro.fusion.fast_fusion import FastFusionOptimizer, FusionDecision, FusionResult, RegionStats
from repro.hardware.datapath import DatapathConfig
from repro.hardware.memory import MemoryHierarchy
from repro.mapping.costmodel import OpCost
from repro.mapping.mapper import Mapper, MapperOptions
from repro.simulator.result import RegionPerformance, SimulationResult
from repro.simulator.vector_ops import vector_cost_cache_key, vector_op_cost, vpu_lanes_per_core
from repro.workloads.graph import Graph, Operation, TensorKind
from repro.workloads.ops import OpType, is_matrix_op
from repro.workloads.registry import build_workload

__all__ = ["SimulationOptions", "Simulator", "clear_compiled_cache", "precompile_graph"]

# Lazily resolved tracer accessor: ``repro.runtime`` imports this module
# during its own package init, so a module-level telemetry import would be
# circular.  Cached after the first call; with tracing disabled the hot path
# pays one function call + attribute check per span site.
_get_tracer = None


def _tracer():
    global _get_tracer
    if _get_tracer is None:
        from repro.runtime.telemetry import get_tracer

        _get_tracer = get_tracer
    return _get_tracer()


@dataclass
class SimulationOptions:
    """Knobs controlling a simulation run.

    The last five fields are performance knobs that never change results
    (every mapping engine is bit-for-bit equivalent, and cache hits return
    exactly what a fresh evaluation would compute):

    * ``vectorized_mapper`` — select the NumPy mapping engine (None follows
      ``mapper_options``, whose default is vectorized; False forces the
      scalar reference implementation).
    * ``graph_batched_mapper`` — batch every op-cache-missing matrix op of a
      trial into ONE stacked candidate sweep (gather -> batch-map -> scatter)
      instead of mapping region by region, op by op.  None follows the
      engine choice (on whenever the mapper is vectorized); False selects
      the per-op path (``repro search --engine vectorized``).
    * ``trial_batched_mapper`` — lift the batching one level further: a whole
      *batch of trials'* pending matrix ops joins ONE stacked
      trials x ops x dataflows x tilings sweep
      (:meth:`~repro.mapping.mapper.Mapper.map_trials_batch`), driven by
      :meth:`~repro.core.trial.TrialEvaluator.evaluate_params_batch`.  Rides
      on the graph-batched engine; None/False keeps per-trial passes.
    * ``backend`` — array library the vectorized sweeps run on (see
      :mod:`repro.mapping.backend`); ``numpy`` (default) is bit-for-bit
      equal to the scalar reference, other backends are tolerance-checked.
    * ``region_cache_enabled`` — memoize whole fusion-region evaluations
      across trials through :func:`repro.runtime.opcache.get_region_cache`;
      fusion-stable regions skip even the gather step on warm trials.
    * ``op_cache_enabled`` — share per-op mapping/vector costs across trials
      through the process-local :func:`repro.runtime.opcache.get_op_cache`.
    * ``op_cache_path`` — optionally persist that cache as JSON lines.
    * ``region_store_path`` — optionally persist the region cache the same
      way (``--engine region_store=PATH``): evaluated regions append to a
      digest-keyed JSONL store that later runs, sweep shards, and
      ``repro serve`` warm-load.
    * ``region_cache_service`` — base URL of a ``repro serve`` endpoint
      whose ``/cache/region`` routes act as a cluster-wide region tier;
      misses are batch-prefetched from it and local results pushed back.

    Prefer building these knobs through
    :class:`repro.simulator.enginespec.EngineSpec` — the one-string engine
    API (``repro ... --engine``) that maps onto this dataclass.
    """

    enable_fast_fusion: Optional[bool] = None  # None: follow the datapath config
    fusion_solver: str = "auto"
    mapper_options: Optional[MapperOptions] = None
    vectorized_mapper: Optional[bool] = None
    graph_batched_mapper: Optional[bool] = None
    trial_batched_mapper: Optional[bool] = None
    backend: str = "numpy"
    region_cache_enabled: bool = True
    op_cache_enabled: bool = True
    op_cache_path: Optional[str] = None
    region_store_path: Optional[str] = None
    region_cache_service: Optional[str] = None


# ---------------------------------------------------------------------------
# Compiled-graph cache.  Lowering a graph into fusion regions is identical
# for every trial that simulates the same graph object with the same softmax
# lowering, so the result is memoized per process.  Entries are keyed by
# object identity + op count (guarding against post-build mutation); the
# stored strong reference keeps ids stable, so entries inherited across a
# fork stay valid — fork-started executor workers begin life with the
# parent's warm compiled graphs instead of re-lowering them.
# ---------------------------------------------------------------------------
_COMPILED_CACHE: Dict[Tuple[int, bool], Tuple[Graph, int, CompiledModel]] = {}
_COMPILED_CACHE_MAX = 64


def _compile_cached(graph: Graph, use_two_pass_softmax: bool) -> CompiledModel:
    key = (id(graph), use_two_pass_softmax)
    entry = _COMPILED_CACHE.get(key)
    if entry is not None and entry[0] is graph and entry[1] == len(graph):
        return entry[2]
    compiled = compile_graph(graph, use_two_pass_softmax=use_two_pass_softmax)
    _COMPILED_CACHE[key] = (graph, len(graph), compiled)
    while len(_COMPILED_CACHE) > _COMPILED_CACHE_MAX:
        _COMPILED_CACHE.pop(next(iter(_COMPILED_CACHE)))
    return compiled


def precompile_graph(graph: Graph, use_two_pass_softmax: bool = False) -> None:
    """Warm the compiled-graph cache for one graph (worker/service warm-up)."""
    _compile_cached(graph, use_two_pass_softmax)


def clear_compiled_cache() -> None:
    """Drop all memoized compiled graphs (for tests and memory-sensitive runs)."""
    _COMPILED_CACHE.clear()


class Simulator:
    """Evaluates workloads on a datapath configuration.

    ``stage_seconds`` accumulates wall-clock time spent in the mapper, the
    VPU cost model, and the fusion ILP across every ``simulate`` call on this
    instance — the raw material for ``repro profile`` and
    :class:`~repro.core.fast.RuntimeStats` per-stage timings.
    """

    def __init__(
        self,
        config: DatapathConfig,
        options: Optional[SimulationOptions] = None,
    ) -> None:
        self.config = config
        self.options = options or SimulationOptions()
        self._core_config = self._derive_core_config(config)
        self.hierarchy = MemoryHierarchy(self._core_config)
        self.stage_seconds: Dict[str, float] = {"mapper": 0.0, "vector": 0.0, "fusion": 0.0}
        self.op_cache = None
        if self.options.op_cache_enabled:
            # Imported lazily: repro.runtime imports this module at package
            # import time, so a module-level import would be circular.
            from repro.runtime.opcache import get_op_cache

            self.op_cache = get_op_cache(self.options.op_cache_path)
        mapper_options = self.options.mapper_options or MapperOptions()
        vectorize = (
            mapper_options.vectorize
            if self.options.vectorized_mapper is None
            else self.options.vectorized_mapper
        )
        # SimulationOptions.backend is the canonical knob; an explicit
        # non-default on mapper_options is honored when the options leave it
        # at the NumPy default.
        backend = (
            self.options.backend
            if self.options.backend != "numpy"
            else getattr(mapper_options, "backend", "numpy")
        )
        if vectorize != mapper_options.vectorize or backend != getattr(
            mapper_options, "backend", "numpy"
        ):
            mapper_options = MapperOptions(
                dataflows=mapper_options.dataflows,
                max_tiling_candidates=mapper_options.max_tiling_candidates,
                padding_max_overhead=mapper_options.padding_max_overhead,
                vectorize=vectorize,
                backend=backend,
            )
        self.mapper = Mapper(
            self._core_config, self.hierarchy, mapper_options, op_cache=self.op_cache
        )
        # Graph-level batching rides on the vectorized engine; the scalar
        # reference always maps op by op.
        self._graph_batched = mapper_options.vectorize and (
            self.options.graph_batched_mapper
            if self.options.graph_batched_mapper is not None
            else True
        )
        # Trial-level batching rides on the graph-batched engine in turn.
        self.trial_batched = self._graph_batched and bool(
            self.options.trial_batched_mapper
        )
        self.region_cache = None
        if self.options.region_cache_enabled:
            from repro.runtime.opcache import get_region_cache

            self.region_cache = get_region_cache(self.options.region_store_path)

    # ------------------------------------------------------------------
    @staticmethod
    def _derive_core_config(config: DatapathConfig) -> DatapathConfig:
        """Single-core view of the chip (bandwidth split across cores)."""
        if config.num_cores == 1:
            return config
        channels = max(1, config.gddr6_channels // config.num_cores)
        return config.evolve(num_cores=1, gddr6_channels=channels)

    # ------------------------------------------------------------------
    def simulate_workload(self, workload: str, batch_size: Optional[int] = None) -> SimulationResult:
        """Build a registered workload at the design's native batch and simulate it."""
        batch = batch_size or self.config.native_batch_size
        graph = build_workload(workload, batch_size=batch)
        return self.simulate(graph)

    def simulate(self, graph: Graph) -> SimulationResult:
        """Simulate a prepared graph (already at the desired batch size).

        The region walk is a gather -> batch-map -> scatter pipeline when the
        graph-batched mapper is active: regions served by the region cache
        are skipped outright, every matrix op of the remaining regions is
        collected into ONE stacked candidate sweep
        (:meth:`~repro.mapping.mapper.Mapper.map_ops_batch`), and the
        per-region evaluation then just scatters the pre-mapped costs.  Both
        fast layers are bit-for-bit neutral: the per-op walk (selectable via
        ``graph_batched_mapper=False``) and a cold region cache produce the
        identical result.
        """
        core = self._core_config
        with _tracer().span("compile", category="simulate"):
            compiled = _compile_cached(graph, core.use_two_pass_softmax)
        dram_bpc = core.dram_bytes_per_cycle

        region_cache = self.region_cache
        region_keys: Optional[List[Tuple]] = None
        cached_entries: Optional[List[Optional[tuple]]] = None
        if region_cache is not None:
            key_base = self._region_key_base(graph, compiled)
            region_keys = [key_base + (region.index,) for region in compiled.regions]
            if region_cache.remote is not None:
                # Cluster tier: resolve every locally-unserved key in one
                # batched round trip before the accounted per-key lookups.
                region_cache.prefetch(region_keys)
            cached_entries = [region_cache.get(key) for key in region_keys]

        premapped: Optional[Dict[str, OpCost]] = None
        if self._graph_batched:
            gather_ops: List[Operation] = []
            for position, region in enumerate(compiled.regions):
                if cached_entries is not None and cached_entries[position] is not None:
                    continue
                gather_ops.extend(region.matrix_ops)
            if gather_ops:
                with _tracer().span(
                    "batch_map", category="simulate", num_ops=len(gather_ops)
                ):
                    started = time.perf_counter()
                    premapped = self.mapper.map_ops_batch(gather_ops, graph.tensors)
                    self.stage_seconds["mapper"] += time.perf_counter() - started

        region_perf: List[RegionPerformance] = []
        region_stats: List[RegionStats] = []
        producer_region: Dict[str, int] = {}
        schedule_failed = False

        with _tracer().span("regions", category="simulate") as region_span:
            for position, region in enumerate(compiled.regions):
                entry = cached_entries[position] if cached_entries is not None else None
                if entry is not None:
                    if entry[0] is None:
                        schedule_failed = True
                        break
                    record, stats = self._copy_region_entry(entry)
                else:
                    record, stats = self._evaluate_region(
                        compiled, region, dram_bpc, producer_region, premapped
                    )
                    if region_cache is not None:
                        if record is None:
                            region_cache.put(region_keys[position], (None,))
                        else:
                            region_cache.put(
                                region_keys[position],
                                self._copy_region_entry((record, stats)),
                            )
                    if record is None:
                        schedule_failed = True
                        break
                region_perf.append(record)
                region_stats.append(stats)
                for tensor_name in region.output_tensors:
                    producer_region[tensor_name] = region.index
            region_span.set_attr("regions", len(compiled.regions))
            if cached_entries is not None:
                hits = sum(1 for entry in cached_entries if entry is not None)
                region_span.set_attr("region_cache_hits", hits)
                region_span.set_attr("region_cache_misses", len(cached_entries) - hits)

        fusion_result: Optional[FusionResult] = None
        fusion_enabled = (
            self.options.enable_fast_fusion
            if self.options.enable_fast_fusion is not None
            else core.enable_fast_fusion
        )
        if (
            fusion_enabled
            and not schedule_failed
            and core.l3_global_buffer_mib > 0
            and region_stats
        ):
            optimizer = FastFusionOptimizer(
                gm_capacity_bytes=core.global_buffer_bytes,
                solver=self.options.fusion_solver,
            )
            with _tracer().span(
                "fusion", category="simulate", regions=len(region_stats)
            ):
                started = time.perf_counter()
                fusion_result = optimizer.optimize(region_stats)
                self.stage_seconds["fusion"] += time.perf_counter() - started
            for record, cycles, decision in zip(
                region_perf, fusion_result.region_cycles, fusion_result.decisions
            ):
                record.post_fusion_cycles = cycles
                record.fusion = decision

        return SimulationResult(
            workload=graph.name,
            config=self.config,
            batch_size=graph.batch_size,
            regions=region_perf,
            fusion_result=fusion_result,
            schedule_failed=schedule_failed,
            clock_ghz=core.clock_ghz,
            num_cores=self.config.num_cores,
        )

    # ------------------------------------------------------------------
    def gather_map_entry(self, graph: Graph):
        """Gather half of the trial-batched pipeline for one graph.

        Returns ``(mapper, ops, tensors)`` — the matrix ops of every fusion
        region the region cache cannot serve, ready to join a cross-trial
        :meth:`~repro.mapping.mapper.Mapper.map_trials_batch` pass — or
        ``None`` when nothing needs mapping (everything cached, or this
        simulator is not graph-batched).  Region entries are *peeked*, not
        counted: the later :meth:`simulate` call performs the accounted
        lookups, so cache-hit statistics stay identical to per-trial runs.
        After the batch pass warms ``self.mapper``'s cache, ``simulate``
        proceeds unchanged — its own gather finds every op pre-mapped.
        """
        if not self._graph_batched:
            return None
        core = self._core_config
        compiled = _compile_cached(graph, core.use_two_pass_softmax)
        cached_flags: Optional[List[bool]] = None
        if self.region_cache is not None:
            key_base = self._region_key_base(graph, compiled)
            gather_keys = [key_base + (region.index,) for region in compiled.regions]
            if self.region_cache.remote is not None:
                self.region_cache.prefetch(gather_keys)
            cached_flags = [
                self.region_cache.peek(key) is not None for key in gather_keys
            ]
        gather_ops: List[Operation] = []
        for position, region in enumerate(compiled.regions):
            if cached_flags is not None and cached_flags[position]:
                continue
            gather_ops.extend(region.matrix_ops)
        if not gather_ops:
            return None
        return (self.mapper, gather_ops, graph.tensors)

    # ------------------------------------------------------------------
    def _region_key_base(self, graph: Graph, compiled: CompiledModel) -> Tuple:
        """Region-cache key prefix: everything region results depend on.

        The graph fingerprint pins the region structure and every tensor
        shape; the mapper config key pins all mapping-relevant datapath
        knobs; the remaining components cover the vector-op cost model (VPU
        lanes, softmax lowering), the DRAM traffic conversion, and the
        Global-Memory blocking headroom used for fusion statistics.  Engine
        selection knobs (vectorized / graph-batched) are deliberately
        excluded — all engines are bit-for-bit equivalent.
        """
        core = self._core_config
        factors = compiled.softmax_factors
        return (
            graph.fingerprint(),
            core.use_two_pass_softmax,
            self.mapper.mapping_config_key(),
            core.dram_bytes_per_cycle,
            vpu_lanes_per_core(core),
            factors.input_traffic_factor,
            factors.output_traffic_factor,
            factors.flops_factor,
            core.l1_total_bytes + core.l2_total_bytes,
        )

    @staticmethod
    def _copy_region_entry(entry: tuple) -> tuple:
        """Fresh (RegionPerformance, RegionStats) copies of a cache entry.

        Records are mutated downstream (the fusion pass writes
        ``post_fusion_cycles`` / ``fusion`` onto them), so neither the cached
        objects nor their mutable fields may ever alias a live simulation
        result.
        """
        record, stats = entry
        return (
            replace(
                record,
                op_names=list(record.op_names),
                op_busy_cycles=dict(record.op_busy_cycles),
                fusion=FusionDecision(),
                post_fusion_cycles=record.pre_fusion_cycles,
            ),
            replace(stats),
        )

    # ------------------------------------------------------------------
    def _evaluate_region(
        self,
        compiled: CompiledModel,
        region: FusionRegion,
        dram_bpc: float,
        producer_region: Dict[str, int],
        premapped: Optional[Dict[str, OpCost]] = None,
    ):
        """Cost one fusion region; returns (RegionPerformance, RegionStats).

        ``premapped`` carries the scatter half of the graph-batched pipeline:
        matrix-op costs already computed by the trial-wide batched sweep.
        Ops absent from it (or every op, on the per-op path) fall back to
        :meth:`~repro.mapping.mapper.Mapper.map_op`.
        """
        graph = compiled.graph
        tensors = graph.tensors
        core = self._core_config

        matrix_costs: List[OpCost] = []
        anchor_cost: Optional[OpCost] = None
        vector_costs: List[OpCost] = []
        op_busy_cycles: Dict[str, float] = {}
        op_cache = self.op_cache
        stage_seconds = self.stage_seconds
        for op in region.ops:
            if is_matrix_op(op.op_type):
                started = time.perf_counter()
                cost = premapped.get(op.name) if premapped is not None else None
                if cost is None:
                    cost = self.mapper.map_op(op, tensors)
                stage_seconds["mapper"] += time.perf_counter() - started
                if cost.schedule_failed:
                    return None, None
                matrix_costs.append(cost)
                op_busy_cycles[op.name] = cost.compute_cycles
                if region.matrix_op is not None and op.name == region.matrix_op.name:
                    anchor_cost = cost
            else:
                started = time.perf_counter()
                cost = None
                if op_cache is not None:
                    vector_key = vector_cost_cache_key(
                        graph, op, core, compiled.softmax_factors
                    )
                    cost = op_cache.get(vector_key)
                if cost is None:
                    cost = vector_op_cost(op, tensors, core, compiled.softmax_factors)
                    if op_cache is not None:
                        op_cache.put(vector_key, cost)
                stage_seconds["vector"] += time.perf_counter() - started
                vector_costs.append(cost)
                op_busy_cycles[op.name] = cost.vector_cycles
        if anchor_cost is None and matrix_costs:
            anchor_cost = matrix_costs[0]

        compute_cycles = sum(c.compute_cycles for c in matrix_costs)
        vector_cycles = sum(c.vector_cycles for c in vector_costs)
        flops = sum(c.flops for c in matrix_costs) + sum(c.flops for c in vector_costs)

        # --- DRAM traffic attribution -----------------------------------
        # Each matrix op's mapping may re-read its operands (traffic
        # amplification); record a per-tensor multiplier so region-external
        # tensors feeding a matrix op are charged the amplified traffic.
        matrix_inputs: set = set()
        input_amp_by_tensor: Dict[str, float] = {}
        weight_amp_by_tensor: Dict[str, float] = {}
        for matrix_op, cost in zip(region.matrix_ops, matrix_costs):
            matrix_inputs.update(matrix_op.inputs)
            act_bytes = sum(
                tensors[t].size_bytes
                for t in matrix_op.inputs
                if tensors[t].kind is TensorKind.ACTIVATION
            )
            w_bytes = sum(
                tensors[t].size_bytes
                for t in matrix_op.inputs
                if tensors[t].kind in (TensorKind.WEIGHT, TensorKind.CONSTANT)
            )
            in_amp = max(1.0, cost.dram_input_bytes / act_bytes) if act_bytes else 1.0
            w_amp = max(1.0, cost.dram_weight_bytes / w_bytes) if w_bytes else 1.0
            for t in matrix_op.inputs:
                if tensors[t].kind is TensorKind.ACTIVATION:
                    input_amp_by_tensor[t] = in_amp
                else:
                    weight_amp_by_tensor[t] = w_amp

        softmax_ops = {
            op.name for op in region.ops if op.op_type is OpType.SOFTMAX
        }
        softmax_inputs = set()
        softmax_outputs = set()
        for op in region.ops:
            if op.name in softmax_ops:
                softmax_inputs.update(op.inputs)
                softmax_outputs.update(op.outputs)

        input_traffic = 0.0
        for tname in region.input_tensors:
            size = tensors[tname].size_bytes
            if tname in input_amp_by_tensor:
                input_traffic += size * input_amp_by_tensor[tname]
            elif tname in softmax_inputs:
                input_traffic += size * compiled.softmax_factors.input_traffic_factor
            else:
                input_traffic += size

        weight_traffic = 0.0
        for tname in region.weight_tensors:
            size = tensors[tname].size_bytes
            weight_traffic += size * weight_amp_by_tensor.get(tname, 1.0)

        output_traffic = 0.0
        for tname in region.output_tensors:
            size = tensors[tname].size_bytes
            if tname in softmax_outputs:
                output_traffic += size * compiled.softmax_factors.output_traffic_factor
            else:
                output_traffic += size
        # Partial-sum spill traffic from the matrix ops, if a mapping tiled
        # the reduction beyond on-chip capacity (counted even when the matrix
        # output itself stays inside the region).
        for matrix_op, cost in zip(region.matrix_ops, matrix_costs):
            matrix_out_bytes = sum(tensors[t].size_bytes for t in matrix_op.outputs)
            output_traffic += max(0.0, cost.dram_output_bytes - matrix_out_bytes)

        # Within a fused region the vector ops execute as the matrix op's
        # epilogue, consuming results as they stream out of the systolic
        # array, so the region's busy time is the longer of the two engines
        # rather than their sum.
        busy_cycles = max(compute_cycles, vector_cycles)
        total_traffic = input_traffic + weight_traffic + output_traffic
        dram_cycles = total_traffic / dram_bpc if dram_bpc > 0 else 0.0
        pre_fusion_cycles = max(busy_cycles, dram_cycles)

        primary_type = (
            region.matrix_op.op_type
            if region.matrix_op is not None
            else self._dominant_vector_type(region)
        )
        record = RegionPerformance(
            index=region.index,
            name=region.name,
            op_names=[op.name for op in region.ops],
            primary_op_type=primary_type,
            flops=flops,
            compute_cycles=compute_cycles,
            vector_cycles=vector_cycles,
            dram_input_bytes=input_traffic,
            dram_weight_bytes=weight_traffic,
            dram_output_bytes=output_traffic,
            pre_fusion_cycles=pre_fusion_cycles,
            post_fusion_cycles=pre_fusion_cycles,
            matrix_utilization=anchor_cost.utilization if anchor_cost else 0.0,
            fusion=FusionDecision(),
            op_busy_cycles=op_busy_cycles,
        )

        # --- Fusion statistics -------------------------------------------
        predecessor = None
        if region.input_tensors:
            largest_input = max(
                region.input_tensors, key=lambda t: tensors[t].size_bytes
            )
            predecessor = producer_region.get(largest_input)
        blocking_gm = 0
        if anchor_cost is not None and anchor_cost.tiling is not None:
            onchip_without_gm = (
                self._core_config.l1_total_bytes + self._core_config.l2_total_bytes
            )
            blocking_gm = max(0, anchor_cost.tiling.buffer_bytes(2) - onchip_without_gm)

        stats = RegionStats(
            index=region.index,
            name=region.name,
            busy_cycles=busy_cycles,
            t_max_cycles=pre_fusion_cycles,
            input_dram_cycles=input_traffic / dram_bpc if dram_bpc > 0 else 0.0,
            weight_dram_cycles=weight_traffic / dram_bpc if dram_bpc > 0 else 0.0,
            output_dram_cycles=output_traffic / dram_bpc if dram_bpc > 0 else 0.0,
            input_bytes=int(region.input_bytes(graph)),
            weight_bytes=int(region.weight_bytes(graph)),
            output_bytes=int(region.output_bytes(graph)),
            blocking_gm_bytes=blocking_gm,
            predecessor=predecessor,
            is_graph_output=any(t in graph.output_names for t in region.output_tensors),
        )
        return record, stats

    @staticmethod
    def _dominant_vector_type(region: FusionRegion) -> OpType:
        """Primary op type of a region with no matrix op."""
        if not region.ops:
            return OpType.ELEMENTWISE_ADD
        preferred = (OpType.SOFTMAX, OpType.LAYERNORM, OpType.POOLING, OpType.REDUCE)
        for op_type in preferred:
            for op in region.ops:
                if op.op_type is op_type:
                    return op_type
        return region.ops[0].op_type
