#!/usr/bin/env python
"""Analyze BERT's sequence-length scaling and softmax lowering trade-offs.

Reproduces the paper's BERT characterization (Section 4.3, Figure 5):

1. Sweep the sequence length and show how the runtime breakdown on TPU-v3
   shifts from the efficient QKV/feed-forward matmuls toward the quadratic
   softmax and self-attention ops.
2. Compare the three-pass and two-pass softmax lowerings (Section 5.6) on a
   bandwidth-limited design, showing when the extra exponentials are worth
   the saved DRAM passes.

Run with:  python examples/bert_sequence_length_analysis.py
"""

from repro import AreaPowerModel, Simulator, TPU_V3
from repro.analysis import bert_component_breakdown
from repro.core.designs import FAST_LARGE
from repro.workloads.bert import build_bert

SEQ_LENGTHS = [128, 256, 512, 1024, 2048]
COMPONENTS = ["qkv_projection", "feed_forward", "self_attention", "softmax"]


def main():
    # ------------------------------------------------------------------
    # 1. Runtime breakdown vs sequence length on TPU-v3 (Figure 5).
    # ------------------------------------------------------------------
    print("=== BERT runtime breakdown on TPU-v3 vs sequence length ===")
    breakdown = bert_component_breakdown(TPU_V3, SEQ_LENGTHS, batch_size=8)
    header = "seq_len " + "".join(f"{c:>17s}" for c in COMPONENTS)
    print(header)
    for seq_len in SEQ_LENGTHS:
        shares = breakdown[seq_len]
        row = f"{seq_len:7d} " + "".join(f"{shares.get(c, 0.0):16.1%} " for c in COMPONENTS)
        print(row)
    print("-> softmax + self-attention dominate at long sequence lengths (O(N^2) scaling)")

    # ------------------------------------------------------------------
    # 2. Two-pass softmax trade-off on a bandwidth-limited design.
    # ------------------------------------------------------------------
    print("\n=== Two-pass softmax (Section 5.6) on a GDDR6-based design ===")
    area_power = AreaPowerModel()
    # Use a FAST-Large-like design with a small Global Memory so softmax
    # tensors cannot be kept on chip — the regime where the lowering matters.
    base = FAST_LARGE.evolve(l3_global_buffer_mib=16, native_batch_size=4)
    for seq_len in (512, 1024, 2048):
        graph = build_bert(seq_len=seq_len, batch_size=4)
        three_pass = Simulator(base.evolve(use_two_pass_softmax=False)).simulate(graph)
        two_pass = Simulator(base.evolve(use_two_pass_softmax=True)).simulate(graph)
        gain = three_pass.latency_ms / two_pass.latency_ms
        print(f"  seq {seq_len:5d}: 3-pass {three_pass.latency_ms:7.1f} ms, "
              f"2-pass {two_pass.latency_ms:7.1f} ms  ({gain:.2f}x)")
    print("-> the two-pass lowering helps when softmax traffic is DRAM-bound; "
          "with a large Global Memory and fusion enabled the benefit disappears, "
          "matching the paper's observation.")

    # ------------------------------------------------------------------
    # 3. Perf/TDP of FAST-Large vs TPU-v3 across sequence lengths.
    # ------------------------------------------------------------------
    print("\n=== FAST-Large vs TPU-v3 Perf/TDP on BERT ===")
    tpu_tdp = area_power.tdp_w(TPU_V3)
    fast_tdp = area_power.tdp_w(FAST_LARGE)
    for seq_len in (128, 1024):
        tpu = Simulator(TPU_V3).simulate(build_bert(seq_len=seq_len, batch_size=TPU_V3.native_batch_size))
        fast = Simulator(FAST_LARGE).simulate(build_bert(seq_len=seq_len, batch_size=FAST_LARGE.native_batch_size))
        ratio = (fast.qps / fast_tdp) / (tpu.qps / tpu_tdp)
        print(f"  seq {seq_len:5d}: TPU-v3 {tpu.qps:8.1f} QPS, FAST-Large {fast.qps:8.1f} QPS, "
              f"Perf/TDP ratio {ratio:.2f}x")


if __name__ == "__main__":
    main()
