#!/usr/bin/env python
"""Bring your own model: define a custom workload and search an accelerator for it.

FAST is not limited to the paper's benchmark suite — any model expressible in
the graph IR can be characterized, simulated, and searched over.  This example
builds a small speech-command style CNN+attention hybrid with the
GraphBuilder, characterizes its bottlenecks, and runs a short search for a
Perf/TDP-optimized design.

Run with:  python examples/custom_workload.py
"""

from repro import FASTSearch, ObjectiveKind, SearchProblem, Simulator, TPU_V3
from repro.analysis.intensity import intensity_report
from repro.core.trial import TrialEvaluator
from repro.reporting.tables import format_kv
from repro.workloads.builder import GraphBuilder
from repro.workloads.registry import WORKLOAD_BUILDERS


def build_keyword_spotter(batch_size: int = 1):
    """A small conv front-end followed by one attention block and a classifier."""
    builder = GraphBuilder("keyword-spotter", batch_size=batch_size)
    x = builder.input("spectrogram", (batch_size, 96, 64, 1))

    # Convolutional front-end.
    x = builder.conv2d(x, 32, (3, 3), stride=2, name="frontend.conv1")
    x = builder.activation(x, "relu", name="frontend.relu1")
    x = builder.depthwise_conv2d(x, (3, 3), name="frontend.dwconv")
    x = builder.pointwise_conv(x, 64, name="frontend.project")
    x = builder.activation(x, "relu", name="frontend.relu2")

    # Collapse to a (batch, time, features) sequence and attend over time.
    seq_len, features = 48 * 32, 64
    x = builder.reshape(x, (batch_size, seq_len, features), name="to_sequence")
    q = builder.matmul(x, features, name="attention.query")
    k = builder.matmul(x, features, name="attention.key")
    v = builder.matmul(x, features, name="attention.value")
    scores = builder.einsum(q, k, (batch_size, 1, seq_len, seq_len), features,
                            name="attention.scores")
    probs = builder.softmax(scores, name="attention.softmax")
    context = builder.einsum(probs, v, (batch_size, 1, seq_len, features), seq_len,
                             name="attention.context")
    context = builder.reshape(context, (batch_size, seq_len, features), name="attention.merge")
    pooled = builder.reduce_mean(context, name="pool")
    logits = builder.matmul(pooled, 35, name="classifier")
    return builder.finish(outputs=[logits])


def main() -> None:
    # Register the custom model so the search's trial evaluator can rebuild it
    # at each candidate design's native batch size.
    WORKLOAD_BUILDERS["keyword-spotter"] = lambda batch_size=1: build_keyword_spotter(batch_size)

    graph = build_keyword_spotter()
    report = intensity_report(graph)
    baseline = Simulator(TPU_V3).simulate(graph)
    print(format_kv(
        {
            "ops": len(graph),
            "GFLOPs (batch 1)": graph.total_flops() / 1e9,
            "op intensity (no fusion)": report["none"],
            "op intensity (ideal)": report["ideal"],
            "TPU-v3 latency (ms)": baseline.latency_ms,
            "TPU-v3 utilization": baseline.compute_utilization,
        },
        title="Custom keyword-spotting workload",
    ))

    problem = SearchProblem(["keyword-spotter"], ObjectiveKind.PERF_PER_TDP)
    result = FASTSearch(problem, optimizer="lcs", seed=0,
                        evaluator=TrialEvaluator(problem)).run(num_trials=40)
    if result.best_config is None:
        print("\nNo feasible design found in this tiny budget; raise num_trials.")
        return
    print("\nBest design found by a 40-trial search:")
    print(format_kv(result.best_config.describe()))


if __name__ == "__main__":
    main()
