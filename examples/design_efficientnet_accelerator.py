#!/usr/bin/env python
"""Design a datacenter inference accelerator specialized for EfficientNet.

This example reproduces the paper's main use case end to end:

1. Characterize why EfficientNet runs poorly on the TPU-v3 baseline
   (depthwise convolutions, low operational intensity).
2. Run a FAST search that jointly picks the datapath, schedule, and fusion
   configuration, maximizing Perf/TDP under the TPU-v3-relative budget.
3. Compare the found design against TPU-v3 and FAST-Large, and estimate the
   deployment volume at which building it breaks even (ROI analysis).

Run with:  python examples/design_efficientnet_accelerator.py [variant] [trials]
"""

import sys

from repro import (
    FAST_LARGE,
    FAST_SMALL,
    FASTSearch,
    AreaPowerModel,
    ObjectiveKind,
    SearchProblem,
    Simulator,
    TPU_V3,
)
from repro.analysis import characterize_op_types, intensity_report
from repro.economics import RoiModel
from repro.workloads import build_workload
from repro.workloads.ops import OpType


def main():
    variant = sys.argv[1] if len(sys.argv) > 1 else "efficientnet-b4"
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 120
    area_power = AreaPowerModel()

    # ------------------------------------------------------------------
    # 1. Why is this workload slow on the baseline?
    # ------------------------------------------------------------------
    print(f"=== Bottleneck analysis: {variant} on TPU-v3 ===")
    report = intensity_report(build_workload(variant, batch_size=1))
    print(f"operational intensity (no fusion)  : {report['none']:.0f} FLOPS/byte")
    print(f"operational intensity (XLA fusion) : {report['xla']:.0f} FLOPS/byte")
    print(f"TPU-v3 ridgepoint                  : {TPU_V3.operational_intensity_ridgepoint:.0f} FLOPS/byte")
    for row in characterize_op_types(variant, TPU_V3):
        if row.op_type in (OpType.CONV2D, OpType.DEPTHWISE_CONV2D):
            print(f"{row.op_type.value:20s} {row.flop_fraction:6.1%} of FLOPs, "
                  f"{row.runtime_fraction:6.1%} of runtime")

    baseline = Simulator(TPU_V3).simulate_workload(variant)
    baseline_score = baseline.qps / area_power.tdp_w(TPU_V3)
    print(f"TPU-v3: {baseline.qps:,.0f} QPS, utilization {baseline.compute_utilization:.1%}, "
          f"{baseline_score:.1f} QPS/W")

    # ------------------------------------------------------------------
    # 2. Search for a specialized design.
    # ------------------------------------------------------------------
    print(f"\n=== FAST search ({trials} trials, Perf/TDP objective) ===")
    problem = SearchProblem([variant], ObjectiveKind.PERF_PER_TDP)
    search = FASTSearch(
        problem, optimizer="lcs", seed=0, seed_configs=[FAST_LARGE, FAST_SMALL]
    )
    result = search.run(num_trials=trials)
    best = result.best_metrics
    config = best.config
    print(f"feasible trials: {result.num_feasible_trials}/{result.num_trials}")
    print("best design:")
    for key, value in config.describe().items():
        print(f"  {key:28s}: {value}")

    # ------------------------------------------------------------------
    # 3. Compare and estimate ROI.
    # ------------------------------------------------------------------
    print("\n=== Comparison (Perf/TDP vs TPU-v3) ===")
    rows = {
        "TPU-v3": baseline_score,
        "FAST-Large": Simulator(FAST_LARGE).simulate_workload(variant).qps / area_power.tdp_w(FAST_LARGE),
        "FAST-Small": Simulator(FAST_SMALL).simulate_workload(variant).qps / area_power.tdp_w(FAST_SMALL),
        "searched design": best.perf_per_tdp(variant),
    }
    for name, score in rows.items():
        print(f"  {name:16s}: {score:8.1f} QPS/W ({score / baseline_score:4.2f}x)")

    speedup = rows["searched design"] / baseline_score
    roi = RoiModel()
    if speedup > 1.0:
        print(f"\n=== ROI analysis (Perf/TCO ~ Perf/TDP = {speedup:.2f}x) ===")
        for target in (1, 2, 4, 8):
            volume = roi.deployment_volume_for_roi(target, speedup)
            print(f"  deployment volume for {target}x ROI: {volume:,} accelerators")
    else:
        print("\nThe searched design does not beat the baseline; skipping ROI analysis.")


if __name__ == "__main__":
    main()
