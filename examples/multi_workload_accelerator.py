#!/usr/bin/env python
"""Search for a single general-purpose design serving a suite of workloads.

The paper's multi-workload experiment (Figure 9/10, "FAST search - multi
workload") finds one datapath that maximizes the geometric-mean Perf/TDP over
EfficientNet-B7, ResNet-50, OCR-RPN, OCR-Recognizer, and BERT-1024.  This
example runs that search with a small trial budget and then breaks down how
the single design performs on every member of the suite, comparing it to the
specialization achievable with per-workload designs.

Run with:  python examples/multi_workload_accelerator.py [trials]
"""

import sys

from repro import (
    FAST_LARGE,
    FAST_SMALL,
    FASTSearch,
    AreaPowerModel,
    ObjectiveKind,
    SearchProblem,
    Simulator,
    TPU_V3,
)
from repro.core.problem import geometric_mean
from repro.core.trial import TrialEvaluator
from repro.workloads.registry import MULTI_WORKLOAD_SUITE


def main():
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    area_power = AreaPowerModel()
    tpu_tdp = area_power.tdp_w(TPU_V3)

    # Baseline scores per workload on TPU-v3.
    baselines = {}
    tpu_simulator = Simulator(TPU_V3)
    for workload in MULTI_WORKLOAD_SUITE:
        baselines[workload] = tpu_simulator.simulate_workload(workload).qps / tpu_tdp

    # ------------------------------------------------------------------
    # Multi-workload search.
    # ------------------------------------------------------------------
    print(f"=== Multi-workload FAST search over {MULTI_WORKLOAD_SUITE} ({trials} trials) ===")
    problem = SearchProblem(
        MULTI_WORKLOAD_SUITE, ObjectiveKind.PERF_PER_TDP, baseline_qps=None or {}
    )
    search = FASTSearch(
        problem, optimizer="lcs", seed=0, seed_configs=[FAST_LARGE, FAST_SMALL]
    )
    result = search.run(num_trials=trials)
    best = result.best_metrics
    print("best general-purpose design:")
    for key, value in best.config.describe().items():
        print(f"  {key:28s}: {value}")

    # ------------------------------------------------------------------
    # Per-workload breakdown and comparison with specialized designs.
    # ------------------------------------------------------------------
    print("\n=== Per-workload Perf/TDP vs TPU-v3 ===")
    multi_gains = []
    single_gains = []
    for workload in MULTI_WORKLOAD_SUITE:
        multi_gain = best.perf_per_tdp(workload) / baselines[workload]
        multi_gains.append(multi_gain)

        specialized = FASTSearch(
            SearchProblem([workload], ObjectiveKind.PERF_PER_TDP),
            optimizer="lcs",
            seed=1,
            seed_configs=[FAST_LARGE, FAST_SMALL, best.config],
        ).run(num_trials=max(20, trials // 2))
        single_gain = (
            specialized.best_metrics.perf_per_tdp(workload) / baselines[workload]
            if specialized.best_metrics
            else 0.0
        )
        single_gains.append(single_gain)
        print(f"  {workload:18s}: multi-workload {multi_gain:4.2f}x | specialized {single_gain:4.2f}x")

    print(f"\nGeoMean-5 multi-workload : {geometric_mean(multi_gains):.2f}x "
          f"(paper: 2.4x Perf/TDP with 5000 trials)")
    print(f"GeoMean-5 specialized    : {geometric_mean(single_gains):.2f}x "
          f"(paper: ~2.8x on this suite)")
    print("-> specialization buys extra efficiency; the multi-workload design trades a "
          "little of it for generality, as in the paper's Figure 10.")


if __name__ == "__main__":
    main()
