#!/usr/bin/env python
"""ROI analysis: when does a specialized accelerator pay for itself?

Reproduces the reasoning of Section 5.1 / 6.2.2 interactively:

1. Measure the Perf/TDP speedup of FAST-Large over the modeled TPU-v3 on a
   workload (Perf/TDP is the paper's proxy for Perf/TCO).
2. Sweep deployment volume and print the ROI curve (Figure 6).
3. Print the deployment volumes needed to reach 1x/2x/4x/8x ROI (Table 4).

Run with:  python examples/roi_analysis.py
"""

from repro import FAST_LARGE, TPU_V3, AreaPowerModel, Simulator
from repro.economics.roi import RoiModel
from repro.reporting.ascii_plots import bar_chart
from repro.reporting.tables import format_table

WORKLOAD = "efficientnet-b1"


def measured_speedup(workload: str) -> float:
    """Perf/TDP speedup of FAST-Large over the TPU-v3 baseline."""
    area_power = AreaPowerModel()
    tpu = Simulator(TPU_V3).simulate_workload(workload)
    fast = Simulator(FAST_LARGE).simulate_workload(workload)
    tpu_perf_per_tdp = tpu.qps / area_power.tdp_w(TPU_V3)
    fast_perf_per_tdp = fast.qps / area_power.tdp_w(FAST_LARGE)
    return fast_perf_per_tdp / tpu_perf_per_tdp


def main() -> None:
    speedup = measured_speedup(WORKLOAD)
    print(f"Measured Perf/TDP speedup of FAST-Large over TPU-v3 on {WORKLOAD}: {speedup:.2f}x\n")

    model = RoiModel()

    # Figure 6: ROI vs deployment volume.
    volumes = [500, 1000, 2000, 4000, 8000, 16000]
    print(bar_chart(
        {f"{v} accelerators": model.roi(v, speedup) for v in volumes},
        title=f"ROI vs deployment volume at {speedup:.2f}x Perf/TCO",
    ))

    # Table 4: volume needed for each ROI target.
    targets = [1.0, 2.0, 4.0, 8.0]
    rows = [[f"{t:.0f}x ROI", model.deployment_volume_for_roi(t, speedup)] for t in targets]
    print("\n" + format_table(["Target", "Deployment volume needed"], rows))

    breakeven = model.breakeven_volume(speedup)
    print(
        f"\nBreak-even at {breakeven} accelerators — the paper's Table 4 lands in the "
        "2,000-3,600 range for its workloads, so a moderate datacenter deployment "
        "is already enough to justify a specialized design."
    )


if __name__ == "__main__":
    main()
