#!/usr/bin/env python
"""Extensions beyond the paper: int8 quantization and training-step graphs.

The paper scopes itself to bf16 inference and lists quantization and training
support as orthogonal/future work.  This example exercises both extensions:

1. Quantize EfficientNet-B0 to int8 and show the footprint / operational
   intensity / simulated performance impact on FAST-Large.
2. Build the training-step graph for the same model and show why inference-
   only fusion no longer applies (intermediate activations must be kept).

Run with:  python examples/quantization_and_training.py
"""

from repro import FAST_LARGE, Simulator, build_workload
from repro.analysis.intensity import operational_intensity
from repro.reporting.tables import format_kv, format_table
from repro.workloads.quantization import QuantizationRecipe, memory_savings, quantize_graph
from repro.workloads.training import TrainingOptions, build_training_graph, training_flops_ratio

WORKLOAD = "efficientnet-b0"


def main() -> None:
    graph = build_workload(WORKLOAD, batch_size=FAST_LARGE.native_batch_size)
    simulator = Simulator(FAST_LARGE)

    # ----- Quantization ---------------------------------------------------
    int8 = quantize_graph(graph)
    weight_only = quantize_graph(graph, QuantizationRecipe.weight_only())
    savings = memory_savings(graph, int8)

    baseline = simulator.simulate(graph)
    quantized = simulator.simulate(int8)

    print(format_kv(
        {
            "weight footprint reduction": f"{savings['weight_reduction']:.1f}x",
            "working-set reduction": f"{savings['working_set_reduction']:.1f}x",
            "op intensity bf16 (no fusion)": f"{operational_intensity(graph, 'none'):.0f}",
            "op intensity int8 (no fusion)": f"{operational_intensity(int8, 'none'):.0f}",
            "bf16 QPS on FAST-Large": f"{baseline.qps:.0f}",
            "int8 QPS on FAST-Large": f"{quantized.qps:.0f}",
        },
        title=f"Int8 quantization of {WORKLOAD} (cost model only; accuracy out of scope)",
    ))
    print(
        "\nWeight-only quantization keeps activations in bf16 "
        f"({weight_only.weight_bytes() / 2**20:.1f} MiB of int8 weights).\n"
    )

    # ----- Training -------------------------------------------------------
    rows = []
    for optimizer in ("sgd", "adam"):
        train = build_training_graph(graph, TrainingOptions(optimizer=optimizer))
        result = simulator.simulate(train)
        rows.append([
            optimizer,
            len(train),
            f"{training_flops_ratio(graph, train):.2f}x",
            f"{result.latency_ms:.1f} ms",
        ])
    print(format_table(
        ["Optimizer", "Ops in training step", "FLOPs vs forward", "Step latency on FAST-Large"],
        rows,
    ))
    print(
        "\nTraining steps re-read every stored activation in the backward pass, so the\n"
        "inference-only FAST fusion assumptions (discard intermediates immediately) do\n"
        "not hold — exactly why the paper scopes fusion to inference."
    )


if __name__ == "__main__":
    main()
