#!/usr/bin/env python
"""Quickstart: simulate a workload on named designs and run a tiny FAST search.

This walks through the three things most users do first:

1. Build a benchmark workload graph (EfficientNet-B0).
2. Simulate it on the modeled TPU-v3 baseline and on the FAST-Large design,
   comparing throughput, latency, utilization, and Perf/TDP.
3. Run a short FAST search for a design specialized to that workload.

Run with:  python examples/quickstart.py
"""

from repro import (
    FAST_LARGE,
    FASTSearch,
    AreaPowerModel,
    ObjectiveKind,
    SearchProblem,
    Simulator,
    TPU_V3,
    build_workload,
)

WORKLOAD = "efficientnet-b0"


def describe(name, config, result, area_power):
    tdp = area_power.tdp_w(config)
    print(f"\n{name}")
    print(f"  peak compute        : {config.peak_matrix_flops / 1e12:.0f} TFLOPS")
    print(f"  peak bandwidth      : {config.dram_bandwidth_bytes_per_s / 1e9:.0f} GB/s")
    print(f"  TDP                 : {tdp:.0f} W")
    print(f"  throughput          : {result.qps:,.0f} inferences/s (batch {result.batch_size})")
    print(f"  latency             : {result.latency_ms:.2f} ms/batch")
    print(f"  compute utilization : {result.compute_utilization:.1%}")
    print(f"  op intensity        : {result.operational_intensity():.0f} FLOPS/byte "
          f"(ridgepoint {config.operational_intensity_ridgepoint:.0f})")
    print(f"  Perf/TDP            : {result.qps / tdp:.1f} QPS/W")
    return result.qps / tdp


def main():
    area_power = AreaPowerModel()

    # 1. Inspect the workload itself.
    graph = build_workload(WORKLOAD, batch_size=1)
    print(f"Workload {WORKLOAD}: {len(graph.ops)} ops, "
          f"{graph.total_flops() / 1e9:.2f} GFLOPs/inference, "
          f"{graph.weight_bytes() / 2**20:.1f} MiB of weights")

    # 2. Simulate it on the named designs.
    tpu_score = describe(
        "Modeled TPU-v3 baseline", TPU_V3,
        Simulator(TPU_V3).simulate_workload(WORKLOAD), area_power,
    )
    fast_score = describe(
        "FAST-Large (Table 5)", FAST_LARGE,
        Simulator(FAST_LARGE).simulate_workload(WORKLOAD), area_power,
    )
    print(f"\nFAST-Large Perf/TDP gain over TPU-v3 on {WORKLOAD}: {fast_score / tpu_score:.2f}x")

    # 3. Search for a design specialized to this workload.
    print("\nRunning a 60-trial FAST search (the paper uses 5000 trials)...")
    problem = SearchProblem([WORKLOAD], ObjectiveKind.PERF_PER_TDP)
    result = FASTSearch(
        problem, optimizer="lcs", seed=0, seed_configs=[FAST_LARGE]
    ).run(num_trials=60)
    best = result.best_metrics
    print(f"  feasible trials : {result.num_feasible_trials}/{result.num_trials}")
    print(f"  best design     : {best.config.describe()}")
    print(f"  best Perf/TDP   : {best.perf_per_tdp(WORKLOAD):.1f} QPS/W "
          f"({best.perf_per_tdp(WORKLOAD) / tpu_score:.2f}x over TPU-v3)")


if __name__ == "__main__":
    main()
