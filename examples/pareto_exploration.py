#!/usr/bin/env python
"""Pareto-frontier and optimizer-comparison exploration (Figures 11-12).

Runs small FAST searches on EfficientNet-B0 with several black-box
optimizers, compares their convergence, and prints the (latency, TDP, area)
Pareto frontier accumulated across all feasible trials.

Run with:  python examples/pareto_exploration.py
"""

from repro import FASTSearch, ObjectiveKind, SearchProblem
from repro.reporting.ascii_plots import line_plot, sparkline
from repro.reporting.tables import format_table

WORKLOAD = "efficientnet-b0"
TRIALS = 40


def main() -> None:
    curves = {}
    frontier = None
    for optimizer in ("random", "lcs", "annealing"):
        problem = SearchProblem([WORKLOAD], ObjectiveKind.PERF_PER_TDP)
        result = FASTSearch(problem, optimizer=optimizer, seed=0).run(num_trials=TRIALS)
        curves[optimizer] = result.best_score_curve
        print(f"{optimizer:10s}  best score {result.best_score:.4f}  "
              f"feasible {result.num_feasible_trials}/{result.num_trials}  "
              f"curve {sparkline(result.best_score_curve)}")
        if optimizer == "lcs":
            frontier = result.pareto_front

    print("\n" + line_plot(curves, title=f"best Perf/TDP score vs trial ({WORKLOAD}, {TRIALS} trials)"))

    if frontier is not None and len(frontier):
        rows = [
            [f"{p.objectives[0]:.2f}", f"{p.objectives[1]:.0f}", f"{p.objectives[2]:.0f}",
             f"{p.payload.get('score', 0):.4f}"]
            for p in frontier.sorted_by(0)
        ]
        print("\nPareto frontier across feasible LCS trials (lower-left is better):")
        print(format_table(["Latency (ms)", "TDP (W)", "Area (mm2)", "Score"], rows))


if __name__ == "__main__":
    main()
