"""Ablation benchmarks for the design choices DESIGN.md calls out beyond the paper.

These complement the paper's Table 6 ablation with three extension studies:

* inter-op blocking on top of FAST fusion (Section 5.5's stated refinement),
* the NoC's area/power overhead across PE grid shapes (Figure 7 substrate),
* int8 quantization as an orthogonal booster (Figure 2 caption).
"""

from __future__ import annotations

from conftest import format_table, report

from repro.core.designs import FAST_LARGE, FAST_SMALL, TPU_V3
from repro.fusion.blocking import BlockingAwareFusionOptimizer, blocked_region_stats
from repro.fusion.fast_fusion import FastFusionOptimizer, RegionStats
from repro.hardware.area_power import AreaPowerModel
from repro.hardware.noc import MeshNocModel
from repro.simulator.engine import Simulator
from repro.workloads.quantization import quantize_graph
from repro.workloads.registry import build_workload

MIB = 1024 * 1024


def _chain(num_regions: int, activation_mib: int, weight_mib: int) -> list:
    """A memory-bound region chain standing in for a large-activation model."""
    regions = []
    for i in range(num_regions):
        input_cycles = 400.0 * activation_mib
        weight_cycles = 400.0 * weight_mib
        regions.append(
            RegionStats(
                index=i,
                name=f"region{i}",
                busy_cycles=900.0,
                t_max_cycles=2 * input_cycles + weight_cycles,
                input_dram_cycles=input_cycles,
                weight_dram_cycles=weight_cycles,
                output_dram_cycles=input_cycles,
                input_bytes=activation_mib * MIB,
                weight_bytes=weight_mib * MIB,
                output_bytes=activation_mib * MIB,
                predecessor=i - 1 if i > 0 else None,
                is_graph_output=(i == num_regions - 1),
            )
        )
    return regions


def test_ablation_interop_blocking(benchmark):
    """Blocking should recover fusion speedups when activations exceed the GM."""
    regions = _chain(num_regions=12, activation_mib=24, weight_mib=2)
    capacity = 32 * MIB  # one whole activation fits, producer+consumer pair does not

    def run():
        plain = FastFusionOptimizer(capacity, solver="greedy").optimize(regions)
        blocked = BlockingAwareFusionOptimizer(
            capacity, solver="greedy", block_factors=(1, 2, 4, 8, 16)
        ).optimize(regions)
        return plain, blocked

    plain, blocked = benchmark(run)
    rows = [
        ["FAST fusion (whole tensors)", 1, f"{plain.speedup:.2f}x"],
        [
            "FAST fusion + inter-op blocking",
            blocked.block_factor,
            f"{blocked.fusion.speedup:.2f}x",
        ],
    ]
    report(
        "ablation_interop_blocking",
        format_table(["Fusion variant", "Block factor", "Speedup over unfused"], rows),
    )
    assert blocked.fusion.total_cycles_post <= plain.total_cycles_post
    assert blocked.block_factor > 1  # whole 24 MiB activations do not fit comfortably


def test_ablation_noc_overhead(benchmark):
    """NoC area/power overhead across the named designs stays a small fraction."""
    noc_model = MeshNocModel()
    area_power = AreaPowerModel()
    designs = {"tpu-v3": TPU_V3, "fast-large": FAST_LARGE, "fast-small": FAST_SMALL}

    def run():
        rows = []
        for name, config in designs.items():
            noc = noc_model.characterize(config)
            chip = area_power.evaluate(config)
            rows.append(
                [
                    name,
                    f"{config.pes_x_dim}x{config.pes_y_dim}",
                    f"{noc.area_mm2:.1f}",
                    f"{100 * noc.area_mm2 / chip.total_area_mm2:.1f}%",
                    f"{noc.bisection_bandwidth_bytes_per_cycle:.0f} B/cyc",
                ]
            )
        return rows

    rows = run()
    benchmark(run)
    report(
        "ablation_noc_overhead",
        format_table(["Design", "PE grid", "NoC area mm2", "Share of die", "Bisection BW"], rows),
    )
    for row in rows:
        assert float(row[3].rstrip("%")) < 10.0


def test_ablation_quantization(benchmark):
    """Int8 halves DRAM traffic and never slows FAST-Large down."""
    graph = build_workload("efficientnet-b0", batch_size=FAST_LARGE.native_batch_size)
    simulator = Simulator(FAST_LARGE)

    def run():
        bf16 = simulator.simulate(graph)
        int8 = simulator.simulate(quantize_graph(graph))
        return bf16, int8

    bf16, int8 = benchmark(run)
    rows = [
        ["bfloat16", f"{bf16.qps:.0f}", f"{bf16.operational_intensity(post_fusion=False):.0f}",
         f"{bf16.dram_bytes_pre_fusion / 1e6:.0f} MB"],
        ["int8", f"{int8.qps:.0f}", f"{int8.operational_intensity(post_fusion=False):.0f}",
         f"{int8.dram_bytes_pre_fusion / 1e6:.0f} MB"],
    ]
    report(
        "ablation_quantization",
        format_table(["Datatype", "QPS", "Pre-fusion op intensity", "Pre-fusion DRAM traffic"], rows),
    )
    # Quantization halves the streamed bytes; once FAST fusion has already
    # removed the bandwidth bottleneck the QPS gain can be small, but int8
    # must never be slower than bf16 on the same datapath.
    assert int8.qps >= bf16.qps
    assert int8.dram_bytes_pre_fusion < bf16.dram_bytes_pre_fusion
