"""Figure 3: impact of op fusion and batch size on operational intensity."""

from conftest import format_table, report

from repro.analysis.intensity import intensity_report
from repro.workloads.registry import build_workload

_WORKLOADS = ["efficientnet-b0", "efficientnet-b7", "resnet50", "bert-seq128", "bert-seq1024"]
_BATCHES = [1, 8, 64]


def _sweep():
    reports = {}
    for name in _WORKLOADS:
        for batch in _BATCHES:
            reports[(name, batch)] = intensity_report(build_workload(name, batch_size=batch))
    return reports


def test_fig3_operational_intensity(benchmark):
    reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for (name, batch), rep in reports.items():
        rows.append(
            [
                name,
                batch,
                f"{rep['none']:.0f}",
                f"{rep['xla']:.0f}",
                f"{rep['block']:.0f}",
                f"{rep['ideal']:.0f}",
            ]
        )
    report(
        "fig3_op_intensity",
        format_table(
            ["Workload", "Batch", "No fusion", "XLA fusion", "Block fusion", "Ideal (weights pinned)"],
            rows,
        )
        + "\n(FLOPS/byte; TPU-v3 ridgepoint is 137, A100 is 208)",
    )

    # Shape assertions from Section 4.1 / Figure 3.
    b7_b1 = reports[("efficientnet-b7", 1)]
    assert b7_b1["none"] < 40  # unfused EfficientNet is far below the ridgepoint
    assert b7_b1["block"] > 150  # fusing whole MBConv blocks crosses ~200

    # Batching helps ResNet-50 and BERT-128 but not EfficientNet / BERT-1024.
    def batching_gain(name):
        return reports[(name, 64)]["xla"] / reports[(name, 1)]["xla"]

    assert batching_gain("resnet50") > 1.5
    assert batching_gain("bert-seq128") > 1.5
    assert batching_gain("efficientnet-b7") < batching_gain("resnet50")
    assert batching_gain("bert-seq1024") < batching_gain("bert-seq128")
