"""Figure 12: EfficientNet-B7 step time vs TDP and area Pareto frontiers."""

from conftest import bench_trials, format_table, report

from repro.core.designs import TPU_V3
from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.search.pareto import ParetoFront


def test_fig12_pareto_frontier(benchmark, baseline_results, area_power):
    from repro.core.designs import FAST_LARGE, FAST_SMALL

    trials = bench_trials()
    problem = SearchProblem(["efficientnet-b7"], ObjectiveKind.PERF_PER_TDP)

    def run():
        return FASTSearch(
            problem, optimizer="lcs", seed=2, seed_configs=[FAST_LARGE, FAST_SMALL]
        ).run(trials)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    tpu = baseline_results("efficientnet-b7")
    tpu_step_time = tpu.latency_ms / tpu.batch_size
    tpu_tdp = area_power.tdp_w(TPU_V3)
    tpu_area = area_power.area_mm2(TPU_V3)

    tdp_front, area_front = ParetoFront(), ParetoFront()
    for metrics in result.history:
        if not metrics.feasible:
            continue
        step_time = (
            metrics.per_workload_latency_ms["efficientnet-b7"]
            / metrics.config.native_batch_size
        )
        tdp_front.add((step_time / tpu_step_time, metrics.tdp_w / tpu_tdp))
        area_front.add((step_time / tpu_step_time, metrics.area_mm2 / tpu_area))

    rows = [
        [f"{p.objectives[0]:.3f}", f"{p.objectives[1]:.3f}"]
        for p in tdp_front.sorted_by(0)
    ]
    text = "Step time vs TDP frontier (relative to TPU-v3 at (1.0, 1.0)):\n"
    text += format_table(["step time (rel)", "TDP (rel)"], rows)
    rows = [
        [f"{p.objectives[0]:.3f}", f"{p.objectives[1]:.3f}"]
        for p in area_front.sorted_by(0)
    ]
    text += "\n\nStep time vs area frontier (relative to TPU-v3 at (1.0, 1.0)):\n"
    text += format_table(["step time (rel)", "area (rel)"], rows)
    report("fig12_pareto", text)

    # Shape: the search finds designs that dominate the TPU-v3 point (both
    # faster per image and lower TDP), i.e. points toward the lower-left.
    assert len(tdp_front) >= 1
    assert any(
        p.objectives[0] < 1.0 and p.objectives[1] < 1.0 for p in tdp_front.points
    )
