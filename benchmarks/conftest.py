"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section.  The regenerated rows/series are printed and also appended to
``benchmarks/results/<experiment>.txt`` so they survive pytest's output
capture; EXPERIMENTS.md records the paper-vs-measured comparison.

Trial budgets for the search-based experiments default to modest values so
the whole harness runs in minutes; set the ``REPRO_BENCH_TRIALS`` environment
variable to raise them (the paper uses 5000 Vizier trials per experiment).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.designs import FAST_LARGE, FAST_SMALL, TPU_V3
from repro.hardware.area_power import AreaPowerModel
from repro.simulator.engine import Simulator

RESULTS_DIR = Path(__file__).parent / "results"


def bench_trials(default: int = 120) -> int:
    """Search-trial budget for search-based benchmarks."""
    return int(os.environ.get("REPRO_BENCH_TRIALS", default))


def timing_asserts_enabled() -> bool:
    """Whether benchmarks should assert speedup ratios.

    CI smoke runs set ``REPRO_BENCH_NO_TIMING_ASSERTS=1`` so a benchmark
    fails on crashes and equivalence breaks but not on shared-runner timing
    noise.
    """
    return not os.environ.get("REPRO_BENCH_NO_TIMING_ASSERTS")


def report(experiment: str, text: str) -> None:
    """Print a regenerated table/figure and persist it under results/."""
    banner = f"\n===== {experiment} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")


def format_table(headers, rows) -> str:
    """Simple fixed-width table formatter."""
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


@pytest.fixture(scope="session")
def area_power():
    """Shared analytical area/power model."""
    return AreaPowerModel()


@pytest.fixture(scope="session")
def tpu_simulator():
    """Simulator for the modeled TPU-v3 baseline."""
    return Simulator(TPU_V3)


@pytest.fixture(scope="session")
def fast_large_simulator():
    """Simulator for the FAST-Large design."""
    return Simulator(FAST_LARGE)


@pytest.fixture(scope="session")
def fast_small_simulator():
    """Simulator for the FAST-Small design."""
    return Simulator(FAST_SMALL)


@pytest.fixture(scope="session")
def baseline_results(tpu_simulator):
    """TPU-v3 baseline simulation results, cached per workload."""
    cache = {}

    def get(workload: str):
        if workload not in cache:
            cache[workload] = tpu_simulator.simulate_workload(workload)
        return cache[workload]

    return get


def perf_per_tdp(result, config, area_power: AreaPowerModel) -> float:
    """QPS per TDP watt of a simulation result on a design."""
    return result.qps / area_power.tdp_w(config)


@pytest.fixture(scope="session")
def run_search():
    """Memoized FAST search runner shared by the Figure 9/10 benchmarks.

    Searches are warm-started from the named designs (TPU-v3-like datapath,
    FAST-Large, FAST-Small) so that the small trial budgets used here (the
    paper runs 5000 Vizier trials per experiment) still land on representative
    designs; the optimizer then refines them per workload.
    """
    from repro.core.fast import FASTSearch
    from repro.core.problem import ObjectiveKind, SearchProblem

    cache = {}
    seeds = [FAST_LARGE, FAST_SMALL, FAST_LARGE.evolve(native_batch_size=64),
             FAST_SMALL.evolve(l3_global_buffer_mib=128, enable_fast_fusion=True)]

    def run(workloads, objective: "ObjectiveKind", trials: int, seed: int = 0,
            optimizer: str = "lcs"):
        key = (tuple(workloads), objective, trials, seed, optimizer)
        if key not in cache:
            problem = SearchProblem(list(workloads), objective)
            cache[key] = FASTSearch(
                problem, optimizer=optimizer, seed=seed, seed_configs=seeds
            ).run(trials)
        return cache[key]

    return run
