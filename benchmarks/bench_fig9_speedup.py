"""Figure 9: modeled inference throughput (QPS) relative to TPU-v3.

Three configurations are compared against the simulated TPU-v3 baseline:

* *FAST scheduling/fusion* — the TPU-v3 datapath with FAST's scheduling and
  FAST fusion enabled (no datapath change).
* *FAST search, single workload* — a design searched for each workload.
* *FAST search, multi workload* — one design searched across the 5-workload
  suite and evaluated on each of its members.
"""

from conftest import bench_trials, format_table, perf_per_tdp, report

from repro.core.designs import TPU_V3
from repro.core.problem import ObjectiveKind, geometric_mean
from repro.core.trial import TrialEvaluator
from repro.core.problem import SearchProblem
from repro.simulator.engine import SimulationOptions, Simulator
from repro.workloads.registry import FULL_SUITE, MULTI_WORKLOAD_SUITE

_SEARCH_WORKLOADS = FULL_SUITE


def _tpu_with_fast_scheduling_and_fusion(workload):
    config = TPU_V3.evolve(enable_fast_fusion=True)
    return Simulator(config, SimulationOptions(enable_fast_fusion=True)).simulate_workload(workload)


def test_fig9_throughput_speedups(benchmark, baseline_results, run_search):
    trials = bench_trials()

    def run_all_searches():
        return {
            workload: run_search([workload], ObjectiveKind.THROUGHPUT, trials)
            for workload in _SEARCH_WORKLOADS
        }

    single = benchmark.pedantic(run_all_searches, rounds=1, iterations=1)
    multi = run_search(MULTI_WORKLOAD_SUITE, ObjectiveKind.THROUGHPUT, trials, seed=1)

    rows = []
    sched_speedups, single_speedups, multi_speedups = [], [], []
    for workload in _SEARCH_WORKLOADS:
        baseline_qps = baseline_results(workload).qps
        sched_qps = _tpu_with_fast_scheduling_and_fusion(workload).qps
        best = single[workload].best_metrics
        single_qps = best.per_workload_qps[workload] if best else 0.0
        sched_speedup = sched_qps / baseline_qps
        single_speedup = single_qps / baseline_qps
        sched_speedups.append(sched_speedup)
        single_speedups.append(single_speedup)
        row = [workload, f"{sched_speedup:.2f}x", f"{single_speedup:.2f}x"]
        if workload in MULTI_WORKLOAD_SUITE and multi.best_config is not None:
            evaluator = TrialEvaluator(SearchProblem([workload], ObjectiveKind.THROUGHPUT))
            multi_result = evaluator.simulate_design(multi.best_config, workload)
            multi_speedup = multi_result.qps / baseline_qps
            multi_speedups.append(multi_speedup)
            row.append(f"{multi_speedup:.2f}x")
        else:
            row.append("-")
        rows.append(row)

    rows.append(
        [
            "GeoMean",
            f"{geometric_mean(sched_speedups):.2f}x",
            f"{geometric_mean(single_speedups):.2f}x",
            f"{geometric_mean(multi_speedups):.2f}x" if multi_speedups else "-",
        ]
    )
    report(
        "fig9_speedup",
        format_table(
            ["Workload", "FAST sched/fusion", "FAST search (single)", "FAST search (multi)"],
            rows,
        )
        + f"\n(QPS relative to simulated TPU-v3; {trials} trials per search — paper uses 5000)"
        + "\n(paper: sched/fusion 1.7x avg, single-workload 3.8x avg, multi-workload 3.1x on the 5-suite)",
    )

    # Shape: searched designs beat the TPU-v3 baseline on average, and the
    # single-workload designs are at least as good as the multi-workload one.
    assert geometric_mean(single_speedups) > 0.9
    if multi_speedups:
        assert geometric_mean(single_speedups) >= 0.8 * geometric_mean(multi_speedups)
    # EfficientNet gains exceed the OCR gains (already TPU-efficient workloads).
    speedup_by_workload = dict(zip(_SEARCH_WORKLOADS, single_speedups))
    assert speedup_by_workload["efficientnet-b7"] > speedup_by_workload["ocr-rpn"]
    assert speedup_by_workload["efficientnet-b7"] > 1.2
