"""Figure 11: search convergence rate on EfficientNet-B7 for three optimizers."""

from conftest import bench_trials, format_table, report

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem

_OPTIMIZERS = ["bayesian", "random", "lcs"]


def _run_convergence(trials, seeds=(0, 1)):
    curves = {}
    for name in _OPTIMIZERS:
        per_seed = []
        for seed in seeds:
            problem = SearchProblem(["efficientnet-b7"], ObjectiveKind.PERF_PER_TDP)
            result = FASTSearch(problem, optimizer=name, seed=seed).run(trials)
            per_seed.append(result.best_score_curve)
        curves[name] = [
            sum(curve[i] for curve in per_seed) / len(per_seed) for i in range(trials)
        ]
    return curves


def test_fig11_search_convergence(benchmark):
    trials = bench_trials(default=100)
    curves = benchmark.pedantic(_run_convergence, args=(trials,), rounds=1, iterations=1)

    checkpoints = [t for t in (10, 25, 50, 75, trials) if t <= trials]
    rows = []
    for checkpoint in checkpoints:
        rows.append(
            [checkpoint]
            + [f"{curves[name][checkpoint - 1]:.3f}" for name in _OPTIMIZERS]
        )
    report(
        "fig11_convergence",
        format_table(["Trials"] + _OPTIMIZERS, rows)
        + "\n(best Perf/TDP score so far, mean of 2 seeds; paper runs 5 seeds x 5000 trials"
        + " and finds LCS ahead beyond ~2000 trials)",
    )

    # Every optimizer improves over its own early phase...
    for name in _OPTIMIZERS:
        assert curves[name][-1] >= curves[name][min(9, trials - 1)]
    # ...and the guided optimizers finish at least as well as random sampling.
    assert max(curves["lcs"][-1], curves["bayesian"][-1]) >= curves["random"][-1] * 0.95
