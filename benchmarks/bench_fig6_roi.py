"""Figure 6: accelerator ROI vs deployment volume for hypothetical Perf/TCO gains."""

from conftest import format_table, report

from repro.economics.roi import RoiModel

_SPEEDUPS = [1.5, 2.0, 4.0, 10.0, 100.0]
_VOLUMES = [500, 1000, 2000, 4000, 8000, 16000, 32000]


def _roi_table():
    model = RoiModel()
    return {s: model.roi_curve(_VOLUMES, s) for s in _SPEEDUPS}


def test_fig6_roi_vs_deployment_volume(benchmark):
    curves = benchmark(_roi_table)

    rows = []
    for volume_index, volume in enumerate(_VOLUMES):
        rows.append(
            [volume] + [f"{curves[s][volume_index]:.2f}" for s in _SPEEDUPS]
        )
    report(
        "fig6_roi",
        format_table(
            ["Deployed accelerators"] + [f"{s}x Perf/TCO" for s in _SPEEDUPS], rows
        )
        + "\n(ROI > 1 is profitable)",
    )

    model = RoiModel()
    # ROI grows with volume for every speedup.
    for s in _SPEEDUPS:
        assert curves[s] == sorted(curves[s])
    # All positive-speedup designs become profitable with sufficient volume.
    assert all(curves[s][-1] > 1.0 for s in _SPEEDUPS)
    # Diminishing returns: 8000 units at 1.5x beats 2000 units at 100x.
    assert model.roi(8000, 1.5) > model.roi(2000, 100.0)
    # Break-even volumes land in the low thousands for moderate speedups.
    assert 1000 < model.breakeven_volume(4.0) < 10000
