"""Runtime throughput: trials/sec for serial vs parallel executors, cold vs warm cache.

Measures the ``repro.runtime`` execution engine on a small EfficientNet-B0
search: the serial baseline, 2- and 4-worker process pools, and a persistent
trial cache first cold (every trial simulated and stored) then warm (every
trial served from disk).  Results are reported as a table and as JSON
(``benchmarks/results/runtime_throughput.json``) like the other benches.

Speedup assertions are gated on the available CPU count — a 4-worker pool
cannot beat serial on a single-core runner — while the warm-cache speedup is
hardware-independent and always asserted.
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR, bench_trials, format_table, report

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import clear_graph_cache
from repro.runtime import ParallelExecutor, SerialExecutor, TrialCache

_WORKLOAD = "efficientnet-b0"
_BATCH_SIZE = 8
_SEED = 0


def _run_search(trials: int, executor=None, cache=None) -> float:
    """Run one fixed-trajectory search; returns trials/sec."""
    problem = SearchProblem([_WORKLOAD], ObjectiveKind.PERF_PER_TDP)
    search = FASTSearch(
        problem, optimizer="lcs", seed=_SEED, executor=executor, cache=cache
    )
    started = time.monotonic()
    result = search.run(num_trials=trials, batch_size=_BATCH_SIZE)
    elapsed = time.monotonic() - started
    assert result.num_trials == trials
    return trials / elapsed if elapsed > 0 else float("inf")


def _measure(trials: int, cache_path) -> dict:
    rates = {}
    clear_graph_cache()
    rates["serial"] = _run_search(trials)
    for workers in (2, 4):
        with ParallelExecutor(num_workers=workers) as executor:
            rates[f"parallel-{workers}"] = _run_search(trials, executor=executor)
    # Cold cache: every trial simulated and appended to the store.
    rates["cache-cold"] = _run_search(trials, cache=TrialCache(cache_path))
    # Warm cache: a fresh process-equivalent cache over the same file; the
    # identical seed/batch trajectory means every trial is a disk hit.
    warm_cache = TrialCache(cache_path)
    rates["cache-warm"] = _run_search(trials, cache=warm_cache)
    assert warm_cache.stats.hits == trials, "warm re-run should be served entirely from cache"
    return rates


def test_runtime_throughput(benchmark, tmp_path):
    trials = bench_trials(default=48)
    cache_path = tmp_path / "trials.jsonl"
    rates = benchmark.pedantic(_measure, args=(trials, cache_path), rounds=1, iterations=1)

    serial = rates["serial"]
    rows = [
        [mode, f"{rate:.1f}", f"{rate / serial:.2f}x"] for mode, rate in rates.items()
    ]
    report(
        "runtime_throughput",
        format_table(["Mode", "Trials/sec", "vs serial"], rows)
        + f"\n({trials} trials, batch={_BATCH_SIZE}, {_WORKLOAD}, {os.cpu_count()} CPUs; "
        "identical search trajectory in every mode)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "runtime_throughput.json").write_text(
        json.dumps(
            {
                "workload": _WORKLOAD,
                "trials": trials,
                "batch_size": _BATCH_SIZE,
                "cpus": os.cpu_count(),
                "trials_per_second": rates,
                "speedup_vs_serial": {m: r / serial for m, r in rates.items()},
            },
            indent=2,
        )
    )

    # A warm cache skips the simulator entirely — hardware-independent win.
    assert rates["cache-warm"] >= 5.0 * serial
    # Parallel speedups need the cores to exist (and a margin for pool overhead).
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert rates["parallel-4"] >= 2.0 * serial
    if cpus >= 2:
        assert rates["parallel-2"] >= 1.2 * serial
