"""Runtime throughput: trials/sec for the evaluation fast path and executors.

Measures the ``repro.runtime`` execution engine on a small EfficientNet-B0
search, always with the same fixed-seed trajectory:

* ``scalar`` — the reference evaluator (scalar mapping engine, no caches),
* ``serial`` — the default fast path (graph-batched mapper + region cache +
  cross-trial op cache), starting cold,
* ``serial-warm`` — the same fast path in its steady state (region/op caches
  populated by the previous run), i.e. the regime of sweeps, shards, and
  repeated searches,
* ``serial-traced`` — the warm fast path with span tracing enabled
  (``--trace``): the telemetry layer must stay within 5% of the untraced
  steady state,
* ``parallel-2`` / ``parallel-4`` — process pools whose workers start warm
  (fork-inherited caches or the warm-start initializer),
* ``parallel-4-warm`` — a 4-worker pool over a *cold* parent that warm-loads
  a persistent op store from disk in each worker (the sweep-shard /
  multi-host regime; this is the mode that used to regress to 0.71x of
  scalar when workers started cold),
* a persistent trial cache first cold then warm.

Results are reported as a table and as JSON
(``benchmarks/results/runtime_throughput.json``); the numbers are also
recorded in the repo-root ``BENCH_mapper.json`` so future PRs have a
performance trajectory for the mapping engine.

Speedup assertions never depend on multi-core hardware: warm workers win by
skipping work (cache hits), not by overlapping it, so even a single-core
runner must show ``parallel-4-warm`` beating the cold serial path.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import RESULTS_DIR, bench_trials, format_table, report, timing_asserts_enabled

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialEvaluator, clear_graph_cache
from repro.runtime import ParallelExecutor, TrialCache, reset_op_caches
from repro.simulator.engine import SimulationOptions

_WORKLOAD = "efficientnet-b0"
_BATCH_SIZE = 8
_SEED = 0

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_mapper.json"


def record_bench(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into the repo-root BENCH_mapper.json."""
    data = {}
    if BENCH_FILE.exists():
        try:
            data = json.loads(BENCH_FILE.read_text())
        except json.JSONDecodeError:
            data = {}
    data[key] = payload
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")


def _evaluator(scalar: bool = False, op_cache_path=None):
    problem = SearchProblem([_WORKLOAD], ObjectiveKind.PERF_PER_TDP)
    options = SimulationOptions(
        fusion_solver="greedy",
        vectorized_mapper=not scalar,
        region_cache_enabled=not scalar,
        op_cache_enabled=not scalar,
        op_cache_path=str(op_cache_path) if op_cache_path else None,
    )
    return problem, TrialEvaluator(problem, simulation_options=options)


def _run_search(
    trials: int, executor=None, cache=None, scalar: bool = False, op_cache_path=None,
    fixture=None,
) -> float:
    """Run one fixed-trajectory search; returns trials/sec.

    ``fixture`` optionally supplies a shared ``(problem, evaluator, space)``
    triple so consecutive runs reuse one executor pool (the pool is keyed by
    evaluator/space identity).
    """
    if fixture is None:
        problem, evaluator = _evaluator(scalar=scalar, op_cache_path=op_cache_path)
        space = None
    else:
        problem, evaluator, space = fixture
    search = FASTSearch(
        problem, optimizer="lcs", space=space, seed=_SEED, evaluator=evaluator,
        executor=executor, cache=cache,
    )
    started = time.monotonic()
    result = search.run(num_trials=trials, batch_size=_BATCH_SIZE)
    elapsed = time.monotonic() - started
    assert result.num_trials == trials
    return trials / elapsed if elapsed > 0 else float("inf")


def _measure(trials: int, cache_path, op_store_path) -> dict:
    rates = {}
    clear_graph_cache()
    reset_op_caches()
    # Warm-up pass: builds the workload graphs and compiled regions every
    # mode shares, so no timed mode is charged for one-time setup.
    _run_search(trials)

    reset_op_caches()
    rates["scalar"] = _run_search(trials, scalar=True)
    reset_op_caches()
    rates["serial"] = _run_search(trials)
    # Same fast path with the region/op caches left populated by the previous
    # run: the steady state of sweeps, shards, and repeated searches.
    rates["serial-warm"] = _run_search(trials)
    # Tracing on over the same warm caches, interleaved with untraced runs
    # and best-of-N on both sides, so scheduler noise on a loaded runner
    # cannot dominate the traced-vs-untraced comparison.  The end-to-end
    # rates feed the report; the <5% overhead assert uses the modeled
    # overhead below (spans/trial x cost/span), because differencing two
    # wall-clock rates cannot resolve a few-percent effect under shared-CPU
    # noise that routinely exceeds 10%.
    from repro.runtime.telemetry import Tracer, configure_tracer, get_tracer, set_tracer

    untraced = [rates["serial-warm"]]
    traced = []
    spans_per_trial = 0.0
    try:
        for _ in range(5):
            set_tracer(Tracer(enabled=False))
            untraced.append(_run_search(trials))
            configure_tracer(enabled=True, seed=_SEED)
            traced.append(_run_search(trials))
            spans_per_trial = get_tracer().total_recorded / trials
    finally:
        set_tracer(Tracer(enabled=False))
    rates["serial-warm"] = max(untraced)
    rates["serial-traced"] = max(traced)
    # Per-span cost: a tight in-process loop is CPU-bound and best-of-N
    # stable, unlike the end-to-end difference.
    bench_tracer = Tracer(enabled=True)
    span_cost = float("inf")
    for _ in range(3):
        reps = 20000
        started = time.perf_counter()
        for _ in range(reps):
            with bench_tracer.span("overhead-probe", category="bench"):
                pass
        span_cost = min(span_cost, (time.perf_counter() - started) / reps)
    extras = {
        "span_cost_us": span_cost * 1e6,
        "spans_per_trial": spans_per_trial,
        # Fraction of a warm trial spent on span bookkeeping: the modeled
        # tracing overhead the timing assert enforces (<5%).
        "tracing_overhead": spans_per_trial * span_cost * rates["serial-warm"],
    }
    # Parallel pools over the warm parent: fork-started workers inherit the
    # warm caches outright; spawn-started ones rebuild via the warm-start
    # initializer.
    for workers in (2, 4):
        with ParallelExecutor(num_workers=workers) as executor:
            rates[f"parallel-{workers}"] = _run_search(trials, executor=executor)
    # Populate a persistent op store (unmeasured, from cold caches — warm
    # region caches would satisfy trials before the mapper ever computes,
    # and puts, the op costs this store exists to hold)...
    reset_op_caches()
    _run_search(trials, op_cache_path=op_store_path)
    # ...then measure a 4-worker pool over a COLD parent: every worker
    # warm-loads the store from disk.  Two unmeasured passes pay the pool
    # start + store load and fill the per-worker region caches; the measured
    # pass is the steady state a sweep shard runs in.  This is the regime
    # that regressed to 0.71x of scalar when workers started cold with
    # nothing to load.
    reset_op_caches()
    from repro.hardware.search_space import DatapathSearchSpace

    problem, evaluator = _evaluator(op_cache_path=op_store_path)
    fixture = (problem, evaluator, DatapathSearchSpace())
    with ParallelExecutor(num_workers=4) as executor:
        _run_search(trials, executor=executor, fixture=fixture)
        _run_search(trials, executor=executor, fixture=fixture)
        rates["parallel-4-warm"] = _run_search(trials, executor=executor, fixture=fixture)
    # Cold cache: every trial simulated and appended to the store.
    reset_op_caches()
    rates["cache-cold"] = _run_search(trials, cache=TrialCache(cache_path))
    # Warm cache: a fresh process-equivalent cache over the same file; the
    # identical seed/batch trajectory means every trial is a disk hit.
    warm_cache = TrialCache(cache_path)
    rates["cache-warm"] = _run_search(trials, cache=warm_cache)
    assert warm_cache.stats.hits == trials, "warm re-run should be served entirely from cache"
    return rates, extras


def test_runtime_throughput(benchmark, tmp_path):
    trials = bench_trials(default=48)
    cache_path = tmp_path / "trials.jsonl"
    op_store_path = tmp_path / "op-store.jsonl"
    rates, extras = benchmark.pedantic(
        _measure, args=(trials, cache_path, op_store_path), rounds=1, iterations=1
    )

    scalar = rates["scalar"]
    rows = [
        [mode, f"{rate:.1f}", f"{rate / scalar:.2f}x"] for mode, rate in rates.items()
    ]
    report(
        "runtime_throughput",
        format_table(["Mode", "Trials/sec", "vs scalar"], rows)
        + f"\n({trials} trials, batch={_BATCH_SIZE}, {_WORKLOAD}, {os.cpu_count()} CPUs; "
        "identical search trajectory in every mode)\n"
        f"tracing: {extras['spans_per_trial']:.1f} spans/trial x "
        f"{extras['span_cost_us']:.2f} us/span = "
        f"{extras['tracing_overhead'] * 100:.2f}% of a warm trial",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "workload": _WORKLOAD,
        "trials": trials,
        "batch_size": _BATCH_SIZE,
        "cpus": os.cpu_count(),
        "trials_per_second": rates,
        "speedup_vs_scalar": {m: r / scalar for m, r in rates.items()},
        "tracing": extras,
    }
    (RESULTS_DIR / "runtime_throughput.json").write_text(json.dumps(payload, indent=2))
    record_bench("runtime_throughput", payload)

    if not timing_asserts_enabled():
        return
    # The evaluation fast path (serial, 1 worker): the steady-state caches
    # must deliver at least 3x the scalar reference's trials/sec, and even a
    # cold start must beat scalar outright.  Hardware-independent.
    assert rates["serial-warm"] >= 3.0 * scalar
    assert rates["serial"] >= 1.2 * scalar
    # Span tracing is observational: <5% overhead on the warm steady state.
    # The primary check is the modeled overhead (spans/trial x cost/span as
    # a fraction of a warm trial), which a shared-CPU runner measures
    # stably; the end-to-end ratio only guards against catastrophic
    # regressions (e.g. tracing accidentally defeating a cache), since
    # run-to-run noise on a loaded runner routinely exceeds 10%.
    assert extras["tracing_overhead"] < 0.05
    assert rates["serial-traced"] >= 0.75 * rates["serial-warm"]
    # A warm trial cache skips the evaluator entirely.
    assert rates["cache-warm"] >= 3.0 * rates["serial"]
    # Warm workers win by skipping work (cache hits), not by overlapping it,
    # so these hold on any core count.  parallel-4-warm warms through the
    # persistent op store plus the pool initializer, which works under any
    # start method; the plain parallel modes owe their warmth to
    # fork-inherited caches, so their asserts only apply where fork is the
    # start method (spawn-started workers begin cold).
    assert rates["parallel-4-warm"] >= 2.0 * scalar
    import multiprocessing

    if multiprocessing.get_start_method() == "fork":
        # parallel-4 must beat the cold serial path (it was 0.71x of scalar
        # before workers started warm), and no warm pool may regress below
        # the scalar reference.
        assert rates["parallel-4"] >= rates["serial"]
        assert rates["parallel-4"] >= 2.0 * scalar
        assert rates["parallel-2"] >= scalar
