"""Runtime throughput: trials/sec for the evaluation fast path and executors.

Measures the ``repro.runtime`` execution engine on a small EfficientNet-B0
search, always with the same fixed-seed trajectory:

* ``scalar`` — the reference evaluator (scalar mapping engine, op cache off),
* ``serial`` — the default fast path (vectorized mapper + cross-trial op
  cache), starting from a cold op cache,
* ``serial-warm-opcache`` — the same fast path in its steady state (op cache
  populated by the previous run), i.e. the regime of sweeps, shards, and
  repeated searches,
* 2- and 4-worker process pools, and a persistent trial cache first cold
  then warm.

Results are reported as a table and as JSON
(``benchmarks/results/runtime_throughput.json``); the serial-vs-scalar
numbers are also recorded in the repo-root ``BENCH_mapper.json`` so future
PRs have a performance trajectory for the mapping engine.

Speedup assertions are gated on the available CPU count — a 4-worker pool
cannot beat serial on a single-core runner — while the evaluation-fast-path
and warm-cache speedups are hardware-independent and always asserted.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import RESULTS_DIR, bench_trials, format_table, report, timing_asserts_enabled

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialEvaluator, clear_graph_cache
from repro.runtime import ParallelExecutor, TrialCache, reset_op_caches
from repro.simulator.engine import SimulationOptions

_WORKLOAD = "efficientnet-b0"
_BATCH_SIZE = 8
_SEED = 0

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_mapper.json"


def record_bench(key: str, payload: dict) -> None:
    """Merge one benchmark's numbers into the repo-root BENCH_mapper.json."""
    data = {}
    if BENCH_FILE.exists():
        try:
            data = json.loads(BENCH_FILE.read_text())
        except json.JSONDecodeError:
            data = {}
    data[key] = payload
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")


def _evaluator(scalar: bool = False):
    problem = SearchProblem([_WORKLOAD], ObjectiveKind.PERF_PER_TDP)
    options = SimulationOptions(
        fusion_solver="greedy",
        vectorized_mapper=not scalar,
        op_cache_enabled=not scalar,
    )
    return problem, TrialEvaluator(problem, simulation_options=options)


def _run_search(trials: int, executor=None, cache=None, scalar: bool = False) -> float:
    """Run one fixed-trajectory search; returns trials/sec."""
    problem, evaluator = _evaluator(scalar=scalar)
    search = FASTSearch(
        problem, optimizer="lcs", seed=_SEED, evaluator=evaluator,
        executor=executor, cache=cache,
    )
    started = time.monotonic()
    result = search.run(num_trials=trials, batch_size=_BATCH_SIZE)
    elapsed = time.monotonic() - started
    assert result.num_trials == trials
    return trials / elapsed if elapsed > 0 else float("inf")


def _measure(trials: int, cache_path) -> dict:
    rates = {}
    clear_graph_cache()
    reset_op_caches()
    # Warm-up pass: builds the workload graphs and compiled regions every
    # mode shares, so no timed mode is charged for one-time setup.
    _run_search(trials)

    reset_op_caches()
    rates["scalar"] = _run_search(trials, scalar=True)
    reset_op_caches()
    rates["serial"] = _run_search(trials)
    # Same fast path with the op cache left populated by the previous run:
    # the steady state of sweeps, shards, and repeated searches.
    rates["serial-warm-opcache"] = _run_search(trials)
    for workers in (2, 4):
        with ParallelExecutor(num_workers=workers) as executor:
            rates[f"parallel-{workers}"] = _run_search(trials, executor=executor)
    # Cold cache: every trial simulated and appended to the store.
    rates["cache-cold"] = _run_search(trials, cache=TrialCache(cache_path))
    # Warm cache: a fresh process-equivalent cache over the same file; the
    # identical seed/batch trajectory means every trial is a disk hit.
    warm_cache = TrialCache(cache_path)
    rates["cache-warm"] = _run_search(trials, cache=warm_cache)
    assert warm_cache.stats.hits == trials, "warm re-run should be served entirely from cache"
    return rates


def test_runtime_throughput(benchmark, tmp_path):
    trials = bench_trials(default=48)
    cache_path = tmp_path / "trials.jsonl"
    rates = benchmark.pedantic(_measure, args=(trials, cache_path), rounds=1, iterations=1)

    scalar = rates["scalar"]
    rows = [
        [mode, f"{rate:.1f}", f"{rate / scalar:.2f}x"] for mode, rate in rates.items()
    ]
    report(
        "runtime_throughput",
        format_table(["Mode", "Trials/sec", "vs scalar"], rows)
        + f"\n({trials} trials, batch={_BATCH_SIZE}, {_WORKLOAD}, {os.cpu_count()} CPUs; "
        "identical search trajectory in every mode)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "workload": _WORKLOAD,
        "trials": trials,
        "batch_size": _BATCH_SIZE,
        "cpus": os.cpu_count(),
        "trials_per_second": rates,
        "speedup_vs_scalar": {m: r / scalar for m, r in rates.items()},
    }
    (RESULTS_DIR / "runtime_throughput.json").write_text(json.dumps(payload, indent=2))
    record_bench("runtime_throughput", payload)

    if not timing_asserts_enabled():
        return
    # The evaluation fast path (serial, 1 worker): the steady-state op cache
    # must deliver at least 3x the scalar reference's trials/sec, and even a
    # cold op cache must beat scalar outright.  Hardware-independent.
    assert rates["serial-warm-opcache"] >= 3.0 * scalar
    assert rates["serial"] >= 1.2 * scalar
    # A warm trial cache skips the evaluator entirely.
    assert rates["cache-warm"] >= 3.0 * rates["serial"]
    # Parallel speedups need the cores to exist (and a margin for pool overhead).
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert rates["parallel-4"] >= 1.5 * scalar
    if cpus >= 2:
        assert rates["parallel-2"] >= 1.2 * scalar
