"""Figure 13: post-fusion operational intensity, sweeping Global Memory and batch size."""

from conftest import format_table, report

from repro.core.designs import FAST_LARGE
from repro.simulator.engine import Simulator

_GLOBAL_MEMORIES_MIB = [16, 32, 64, 128, 256]
_BATCH_SIZES = [1, 8, 64]
_MODELS = ["efficientnet-b0", "efficientnet-b7"]


def _sweep():
    table = {}
    for model in _MODELS:
        for batch in _BATCH_SIZES:
            for gm in _GLOBAL_MEMORIES_MIB:
                config = FAST_LARGE.evolve(l3_global_buffer_mib=gm, native_batch_size=batch)
                result = Simulator(config).simulate_workload(model)
                table[(model, batch, gm)] = result.operational_intensity(post_fusion=True)
    return table


def test_fig13_fusion_sweep(benchmark):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    text_blocks = []
    for model in _MODELS:
        rows = []
        for batch in _BATCH_SIZES:
            rows.append(
                [batch] + [f"{table[(model, batch, gm)]:.0f}" for gm in _GLOBAL_MEMORIES_MIB]
            )
        text_blocks.append(
            f"{model} (post-fusion FLOPS/byte; FAST-Large ridgepoint "
            f"{FAST_LARGE.operational_intensity_ridgepoint:.0f}):\n"
            + format_table(
                ["Batch \\ GM (MiB)"] + [str(g) for g in _GLOBAL_MEMORIES_MIB], rows
            )
        )
    report("fig13_fusion_sweep", "\n\n".join(text_blocks))

    ridge = FAST_LARGE.operational_intensity_ridgepoint
    # Larger Global Memory increases post-fusion intensity at a fixed batch.
    for model in _MODELS:
        for batch in _BATCH_SIZES:
            series = [table[(model, batch, gm)] for gm in _GLOBAL_MEMORIES_MIB]
            assert series[-1] >= series[0]
    # Smaller batch sizes reach higher intensity (more tensors fit on chip).
    for model in _MODELS:
        assert table[(model, 1, 128)] >= table[(model, 64, 128)]
    # EfficientNet-B0 easily exceeds the ridgepoint at 128 MiB; B7 is the
    # worst case for fusion and needs small batches to approach it.
    assert table[("efficientnet-b0", 8, 128)] > ridge
    assert table[("efficientnet-b7", 1, 256)] > table[("efficientnet-b7", 64, 16)]
