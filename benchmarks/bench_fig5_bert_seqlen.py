"""Figure 5: BERT per-component runtime share on TPU-v3 vs sequence length."""

from conftest import format_table, report

from repro.analysis.bottleneck import bert_component_breakdown
from repro.core.designs import TPU_V3

_SEQ_LENGTHS = [128, 256, 512, 1024, 2048]


def test_fig5_bert_component_breakdown(benchmark):
    breakdown = benchmark.pedantic(
        bert_component_breakdown, args=(TPU_V3, _SEQ_LENGTHS), kwargs={"batch_size": 8},
        rounds=1, iterations=1,
    )

    components = ["qkv_projection", "feed_forward", "self_attention", "softmax", "other"]
    rows = []
    for seq_len in _SEQ_LENGTHS:
        shares = breakdown[seq_len]
        rows.append([seq_len] + [f"{shares.get(c, 0.0):.2%}" for c in components])
    report(
        "fig5_bert_seqlen",
        format_table(["Seq length"] + components, rows),
    )

    short = breakdown[128]
    long = breakdown[2048]
    # At short sequence lengths the efficient QKV/feed-forward ops dominate.
    assert short["feed_forward"] + short["qkv_projection"] > 0.6
    # At long sequence lengths softmax + self-attention dominate (O(N^2) scaling).
    assert long.get("softmax", 0) + long.get("self_attention", 0) > 0.5
    # The attention share grows monotonically with sequence length.
    attention_shares = [
        breakdown[s].get("softmax", 0) + breakdown[s].get("self_attention", 0)
        for s in _SEQ_LENGTHS
    ]
    assert attention_shares == sorted(attention_shares)
