"""Table 4: deployment volume required to reach ROI targets for FAST designs."""

from conftest import bench_trials, format_table, report

from repro.core.designs import TPU_V3
from repro.core.problem import ObjectiveKind
from repro.economics.roi import RoiModel
from repro.workloads.registry import MULTI_WORKLOAD_SUITE

_ROI_TARGETS = [1, 2, 4, 8]
# Per-workload Perf/TCO speedups reported in Table 4 of the paper; the second
# column reports volumes recomputed from our own measured speedups.
_PAPER_SPEEDUPS = {
    "efficientnet-b7": 3.91,
    "resnet50": 2.65,
    "ocr-rpn": 2.34,
    "ocr-recognizer": 2.72,
    "bert-seq128": 1.84,
    "bert-seq1024": 2.70,
    "multi-workload": 2.82,
}


def test_table4_roi_deployment_volumes(benchmark, baseline_results, area_power, run_search):
    model = RoiModel()
    trials = bench_trials()
    tpu_tdp = area_power.tdp_w(TPU_V3)

    def measured_speedups():
        speedups = {}
        for workload in ["efficientnet-b7", "resnet50", "bert-seq1024"]:
            search = run_search([workload], ObjectiveKind.PERF_PER_TDP, trials)
            baseline = baseline_results(workload).qps / tpu_tdp
            best = search.best_metrics
            speedups[workload] = best.perf_per_tdp(workload) / baseline if best else 0.0
        return speedups

    measured = benchmark.pedantic(measured_speedups, rounds=1, iterations=1)

    rows = []
    for target, paper_speedup in _PAPER_SPEEDUPS.items():
        volumes = [model.deployment_volume_for_roi(r, paper_speedup) for r in _ROI_TARGETS]
        rows.append([target, f"{paper_speedup:.2f}x (paper)"] + [f"{v:,}" for v in volumes])
    for workload, speedup in measured.items():
        if speedup <= 1.0:
            continue
        volumes = [model.deployment_volume_for_roi(r, speedup) for r in _ROI_TARGETS]
        rows.append([workload, f"{speedup:.2f}x (measured)"] + [f"{v:,}" for v in volumes])

    report(
        "table4_roi_volume",
        format_table(
            ["Target workload", "Perf/TCO speedup"] + [f"{r}x ROI" for r in _ROI_TARGETS],
            rows,
        ),
    )

    # Shape: break-even volumes for the paper's speedups land between ~2,000
    # and ~4,000 accelerators, and scale linearly with the ROI target.
    b7_volumes = [model.deployment_volume_for_roi(r, 3.91) for r in _ROI_TARGETS]
    assert 1800 < b7_volumes[0] < 2800
    assert b7_volumes[3] > 7.5 * b7_volumes[0]
    bert_volume = model.breakeven_volume(1.84)
    assert bert_volume > b7_volumes[0]
