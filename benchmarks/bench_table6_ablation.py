"""Table 6: FAST-Large ablation study (revert one component at a time to TPU-v3's)."""

from conftest import format_table, report

from repro.core.designs import FAST_LARGE, TPU_V3
from repro.simulator.engine import SimulationOptions, Simulator

_WORKLOADS = ["efficientnet-b7", "resnet50", "bert-seq1024"]

_ABLATIONS = {
    "FAST-Large": (FAST_LARGE, True),
    "With 16MB Global Mem": (FAST_LARGE.evolve(l3_global_buffer_mib=16), True),
    "Without FAST fusion": (FAST_LARGE, False),
    "With 128x128 systolic arrays": (
        FAST_LARGE.evolve(pes_x_dim=2, pes_y_dim=2, systolic_array_x=128, systolic_array_y=128),
        True,
    ),
    "With 32KB L1 scratchpads": (
        FAST_LARGE.evolve(
            l1_input_buffer_kib=16, l1_weight_buffer_kib=8, l1_output_buffer_kib=8
        ),
        True,
    ),
}


def _run_ablation(area_power, baseline_scores):
    table = {}
    for name, (config, fusion) in _ABLATIONS.items():
        tdp = area_power.tdp_w(config)
        simulator = Simulator(config, SimulationOptions(enable_fast_fusion=fusion))
        for workload in _WORKLOADS:
            result = simulator.simulate_workload(workload)
            table[(name, workload)] = (result.qps / tdp) / baseline_scores[workload]
    return table


def test_table6_fast_large_ablation(benchmark, baseline_results, area_power):
    tpu_tdp = area_power.tdp_w(TPU_V3)
    baseline_scores = {w: baseline_results(w).qps / tpu_tdp for w in _WORKLOADS}

    table = benchmark.pedantic(
        _run_ablation, args=(area_power, baseline_scores), rounds=1, iterations=1
    )

    rows = []
    for name in _ABLATIONS:
        row = [name]
        for workload in _WORKLOADS:
            gain = table[(name, workload)]
            relative = gain / table[("FAST-Large", workload)]
            row.append(f"{gain:.2f}x ({relative:.2f})")
        rows.append(row)
    report(
        "table6_ablation",
        format_table(["Configuration"] + _WORKLOADS, rows)
        + "\n(Perf/TDP vs die-shrunk TPU-v3; parentheses show the value relative to full FAST-Large)",
    )

    # Every ablation should hurt EfficientNet-B7 Perf/TDP relative to the full design.
    full_b7 = table[("FAST-Large", "efficientnet-b7")]
    for name in _ABLATIONS:
        if name == "FAST-Large":
            continue
        assert table[(name, "efficientnet-b7")] <= full_b7 * 1.02
    # The Global Memory and fusion ablations are the most damaging on B7.
    assert table[("Without FAST fusion", "efficientnet-b7")] < 0.85 * full_b7
    assert table[("With 16MB Global Mem", "efficientnet-b7")] < 0.9 * full_b7
    # Large systolic arrays hurt EfficientNet more than they hurt ResNet/BERT.
    big_array_loss_b7 = table[("With 128x128 systolic arrays", "efficientnet-b7")] / full_b7
    big_array_loss_resnet = (
        table[("With 128x128 systolic arrays", "resnet50")] / table[("FAST-Large", "resnet50")]
    )
    assert big_array_loss_b7 < big_array_loss_resnet + 0.15
