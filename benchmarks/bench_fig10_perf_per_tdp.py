"""Figure 10: modeled Perf/TDP relative to TPU-v3 (same process technology)."""

from conftest import bench_trials, format_table, report

from repro.core.designs import TPU_V3
from repro.core.problem import ObjectiveKind, SearchProblem, geometric_mean
from repro.core.trial import TrialEvaluator
from repro.workloads.registry import FULL_SUITE, MULTI_WORKLOAD_SUITE


def test_fig10_perf_per_tdp_speedups(benchmark, baseline_results, area_power, run_search):
    trials = bench_trials()
    tpu_tdp = area_power.tdp_w(TPU_V3)

    def run_all_searches():
        return {
            workload: run_search([workload], ObjectiveKind.PERF_PER_TDP, trials)
            for workload in FULL_SUITE
        }

    single = benchmark.pedantic(run_all_searches, rounds=1, iterations=1)
    multi = run_search(MULTI_WORKLOAD_SUITE, ObjectiveKind.PERF_PER_TDP, trials, seed=1)

    rows = []
    single_gains, multi_gains, efficientnet_gains = [], [], []
    for workload in FULL_SUITE:
        baseline_score = baseline_results(workload).qps / tpu_tdp
        best = single[workload].best_metrics
        single_gain = (best.perf_per_tdp(workload) / baseline_score) if best else 0.0
        single_gains.append(single_gain)
        if workload.startswith("efficientnet"):
            efficientnet_gains.append(single_gain)
        row = [workload, f"{single_gain:.2f}x"]
        if workload in MULTI_WORKLOAD_SUITE and multi.best_config is not None:
            evaluator = TrialEvaluator(SearchProblem([workload], ObjectiveKind.PERF_PER_TDP))
            result = evaluator.simulate_design(multi.best_config, workload)
            multi_gain = (result.qps / area_power.tdp_w(multi.best_config)) / baseline_score
            multi_gains.append(multi_gain)
            row.append(f"{multi_gain:.2f}x")
        else:
            row.append("-")
        rows.append(row)

    rows.append(
        [
            "GeoMean",
            f"{geometric_mean(single_gains):.2f}x",
            f"{geometric_mean(multi_gains):.2f}x" if multi_gains else "-",
        ]
    )
    report(
        "fig10_perf_per_tdp",
        format_table(["Workload", "FAST single-workload", "FAST multi-workload"], rows)
        + f"\n(Perf/TDP relative to TPU-v3; {trials} trials per search — paper uses 5000)"
        + "\n(paper: 3.7x average single-workload incl. 6.4x EfficientNet / 2.7x BERT; 2.4x multi-workload)",
    )

    # Shape assertions: FAST improves Perf/TDP on average; EfficientNet
    # benefits more than the already-efficient OCR workloads; the
    # multi-workload design trails the specialized ones.
    gains = dict(zip(FULL_SUITE, single_gains))
    assert geometric_mean(single_gains) > 1.0
    assert geometric_mean(efficientnet_gains) > gains["ocr-rpn"]
    assert gains["efficientnet-b7"] > 1.5
    if multi_gains:
        assert geometric_mean(multi_gains) > 0.8
        assert geometric_mean(single_gains) >= 0.8 * geometric_mean(multi_gains)
