"""Figure 15: additive performance breakdown of FAST-Large's components.

The paper compares a single TPU-v3 core against a halved FAST-Large (32 PEs)
and attributes the speedup to scheduling, datapath, and fusion.  Our baseline
simulator already schedules with the Timeloop-style mapper, so the breakdown
here isolates the two components we can toggle independently: the datapath
change (32x32 arrays + 128 MiB Global Memory, fusion off) and FAST fusion.
"""

from conftest import format_table, report

from repro.core.designs import FAST_LARGE, TPU_V3_SINGLE_CORE
from repro.simulator.engine import SimulationOptions, Simulator

_HALF_FAST_LARGE = FAST_LARGE.evolve(pes_x_dim=8, pes_y_dim=4)  # 32 PEs, half the chip


def _breakdown():
    steps = {}
    steps["tpu_v3_single_core"] = Simulator(TPU_V3_SINGLE_CORE).simulate_workload(
        "efficientnet-b7"
    )
    steps["plus_datapath"] = Simulator(
        _HALF_FAST_LARGE, SimulationOptions(enable_fast_fusion=False)
    ).simulate_workload("efficientnet-b7")
    steps["plus_fast_fusion"] = Simulator(
        _HALF_FAST_LARGE, SimulationOptions(enable_fast_fusion=True)
    ).simulate_workload("efficientnet-b7")
    return steps


def test_fig15_component_breakdown(benchmark):
    steps = benchmark.pedantic(_breakdown, rounds=1, iterations=1)

    baseline_qps = steps["tpu_v3_single_core"].qps
    rows = []
    for name, result in steps.items():
        rows.append(
            [
                name,
                f"{result.qps:.0f}",
                f"{result.qps / baseline_qps:.2f}x",
                f"{result.memory_stall_fraction():.0%}",
                f"{result.compute_utilization:.2f}",
            ]
        )
    report(
        "fig15_breakdown",
        format_table(
            ["Configuration", "QPS", "Speedup vs TPU-v3 core", "Mem stall", "Utilization"],
            rows,
        )
        + "\n(paper: datapath-only gains are limited by bandwidth; fusion unlocks them)",
    )

    # Additivity shape: each component adds performance, and the datapath
    # change alone is bandwidth-limited (its gain is small relative to the
    # gain once fusion is enabled).
    datapath_gain = steps["plus_datapath"].qps / baseline_qps
    full_gain = steps["plus_fast_fusion"].qps / baseline_qps
    assert full_gain > datapath_gain
    assert full_gain > 1.2
    assert steps["plus_fast_fusion"].memory_stall_fraction() < steps[
        "plus_datapath"
    ].memory_stall_fraction()
