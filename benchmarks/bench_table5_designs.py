"""Table 5: TPU-v3 vs FAST-Large vs FAST-Small on EfficientNet-B7."""

from conftest import format_table, perf_per_tdp, report

from repro.core.designs import FAST_LARGE, FAST_SMALL, TPU_V3
from repro.hardware.tpu import default_constraints
from repro.simulator.engine import Simulator


def _characterize(config, area_power, constraints):
    result = Simulator(config).simulate_workload("efficientnet-b7")
    breakdown = area_power.evaluate(config)
    return {
        "config": config,
        "result": result,
        "tdp_norm": constraints.normalized_tdp(breakdown.total_tdp_w),
        "area_norm": constraints.normalized_area(breakdown.total_area_mm2),
        "perf_per_tdp": result.qps / breakdown.total_tdp_w,
    }


def test_table5_example_designs(benchmark, area_power):
    constraints = default_constraints(area_power)

    def run():
        return {
            name: _characterize(config, area_power, constraints)
            for name, config in (
                ("TPU-v3", TPU_V3),
                ("FAST-Large", FAST_LARGE),
                ("FAST-Small", FAST_SMALL),
            )
        }

    designs = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    metrics = [
        ("Normalized TDP", lambda d: f"{d['tdp_norm']:.2f}x"),
        ("Normalized area", lambda d: f"{d['area_norm']:.2f}x"),
        ("Peak compute (TFLOPS)", lambda d: f"{d['config'].peak_matrix_flops / 1e12:.0f}"),
        ("Peak bandwidth (GB/s)", lambda d: f"{d['config'].dram_bandwidth_bytes_per_s / 1e9:.0f}"),
        ("Batch size", lambda d: d["config"].native_batch_size * d["config"].num_cores),
        ("Num PEs", lambda d: d["config"].num_pes * d["config"].num_cores),
        ("Systolic array dims", lambda d: f"{d['config'].systolic_array_x}x{d['config'].systolic_array_y}"),
        ("PE vector width", lambda d: d["config"].vpu_lanes_per_pe),
        ("Global buffer (MiB)", lambda d: d["config"].l3_global_buffer_mib * d["config"].num_cores),
        ("Compute utilization", lambda d: f"{d['result'].compute_utilization:.2f}"),
        ("Pre-fusion mem stall", lambda d: f"{d['result'].memory_stall_fraction(post_fusion=False):.0%}"),
        ("Fusion efficiency", lambda d: f"{d['result'].fusion_efficiency:.0%}"),
        ("OpInt ridgepoint", lambda d: f"{d['config'].operational_intensity_ridgepoint:.0f}"),
        ("Fused model OpInt", lambda d: f"{d['result'].operational_intensity(post_fusion=True):.0f}"),
        ("B7 QPS", lambda d: f"{d['result'].qps:.0f}"),
        ("B7 latency (ms)", lambda d: f"{d['result'].latency_ms:.0f}"),
    ]
    for label, getter in metrics:
        rows.append([label] + [getter(designs[name]) for name in ("TPU-v3", "FAST-Large", "FAST-Small")])
    tpu_score = designs["TPU-v3"]["perf_per_tdp"]
    rows.append(
        ["Normalized Perf/TDP"]
        + [f"{designs[name]['perf_per_tdp'] / tpu_score:.1f}" for name in ("TPU-v3", "FAST-Large", "FAST-Small")]
    )
    report("table5_designs", format_table(["Metric", "TPU-v3", "FAST-Large", "FAST-Small"], rows))

    tpu, large, small = (designs[n] for n in ("TPU-v3", "FAST-Large", "FAST-Small"))
    # Both FAST designs improve Perf/TDP over the baseline.
    assert large["perf_per_tdp"] > 1.5 * tpu_score
    assert small["perf_per_tdp"] > 1.2 * tpu_score
    # FAST designs achieve higher compute utilization than TPU-v3 on B7.
    assert large["result"].compute_utilization > tpu["result"].compute_utilization
    assert small["result"].compute_utilization > tpu["result"].compute_utilization
    # FAST-Large relies on fusion; FAST-Small barely benefits from it.
    assert large["result"].fusion_efficiency > 0.3
    # FAST-Large meets a latency-sensitive budget; FAST-Small does not.
    assert large["result"].latency_ms < 30
    assert small["result"].latency_ms > 100
    # Both stay within the area/TDP budget (normalized <= 1).
    for design in (large, small):
        assert design["tdp_norm"] <= 1.0
        assert design["area_norm"] <= 1.0
