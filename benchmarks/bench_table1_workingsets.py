"""Table 1: EfficientNet on-chip storage requirements (bfloat16, batch 1)."""

from conftest import format_table, report

from repro.analysis.footprint import storage_requirements_table
from repro.workloads.efficientnet import EFFICIENTNET_VARIANTS


def test_table1_efficientnet_storage_requirements(benchmark):
    table = benchmark(storage_requirements_table, list(EFFICIENTNET_VARIANTS), 1)

    rows = []
    for name in EFFICIENTNET_VARIANTS:
        req = table[name]
        rows.append(
            [name, f"{req.max_working_set_mib:.2f} MiB", f"{req.weight_mib:.1f} MiB"]
        )
    report(
        "table1_workingsets",
        format_table(["Model", "Max Working Set", "Weights"], rows),
    )

    # Shape assertions mirroring Table 1: monotone growth, and the larger
    # variants exceed typical on-chip capacities (tens of MiB).
    working_sets = [table[f"efficientnet-b{i}"].max_working_set_bytes for i in range(8)]
    weights = [table[f"efficientnet-b{i}"].weight_bytes for i in range(8)]
    assert weights == sorted(weights)
    assert working_sets[7] > 8 * working_sets[0]
    assert table["efficientnet-b7"].max_working_set_mib > 32
    assert table["efficientnet-b0"].max_working_set_mib < 8
