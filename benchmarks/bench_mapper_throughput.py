"""Mapper throughput: per-op vs graph-batched sweeps and the cache stack.

Two layers of measurement:

* **Op level** — unique matrix problems of EfficientNet-B0 mapped repeatedly
  through ``Mapper._map_problem`` (scalar reference loop vs the per-op NumPy
  engine) and through ``Mapper.map_ops_batch`` (one stacked candidate sweep
  for all problems at once), verifying bit-for-bit equal costs along the
  way.
* **Trial level** — ``repro.runtime.profiling.profile_search`` on a
  fixed-seed search: trials/sec, per-stage times, and cache hit rates for
  the scalar, per-op vectorized, graph-batched,
  graph-batched+region-cache, graph-batched+op-cache, trial-batched
  (including the cupy / torch backend rows, recorded as skipped when the
  library is absent), parallel-2, and parallel-2+shared-cache (workers
  attach the parent-published shared-memory cache segment instead of
  re-warming privately) modes, with cache-enabled and parallel modes timed
  in their warm steady state (the sweep / repeated-search regime).

Results land in ``benchmarks/results/mapper_throughput.json`` and the
repo-root ``BENCH_mapper.json`` (key ``mapper_profile``), seeding the
performance trajectory for future PRs.
"""

from __future__ import annotations

import json
import os
import time

from bench_runtime_throughput import record_bench
from conftest import RESULTS_DIR, bench_trials, format_table, report, timing_asserts_enabled

from repro.core.trial import clear_graph_cache
from repro.hardware.datapath import DatapathConfig
from repro.mapping.mapper import Mapper, MapperOptions
from repro.mapping.loopnest import extract_problem
from repro.runtime.profiling import profile_search
from repro.workloads.ops import is_matrix_op
from repro.workloads.registry import build_workload

_WORKLOAD = "efficientnet-b0"


def _unique_problems(graph, config):
    probe = Mapper(config)
    problems, seen = [], set()
    for op in graph.ops:
        if not is_matrix_op(op.op_type):
            continue
        problem = extract_problem(op, graph.tensors)
        key = probe._problem_key(problem)
        if key not in seen:
            seen.add(key)
            problems.append((op, problem))
    return problems


def _map_rate(mapper, problems, repeats: int) -> float:
    started = time.perf_counter()
    for _ in range(repeats):
        for op, problem in problems:
            mapper._map_problem(op, problem)
    elapsed = time.perf_counter() - started
    return repeats * len(problems) / elapsed if elapsed > 0 else float("inf")


def _batch_rate(config, graph, ops, repeats: int) -> float:
    """Problems/sec through one stacked sweep per repeat (fresh per-trial memo)."""
    started = time.perf_counter()
    for _ in range(repeats):
        Mapper(config).map_ops_batch(ops, graph.tensors)
    elapsed = time.perf_counter() - started
    return repeats * len(ops) / elapsed if elapsed > 0 else float("inf")


def _measure(trials: int) -> dict:
    clear_graph_cache()
    config = DatapathConfig()
    graph = build_workload(_WORKLOAD, batch_size=4)
    problems = _unique_problems(graph, config)
    unique_ops = [op for op, _ in problems]

    scalar_mapper = Mapper(config, options=MapperOptions(vectorize=False))
    vector_mapper = Mapper(config, options=MapperOptions(vectorize=True))
    batched = Mapper(config).map_ops_batch(unique_ops, graph.tensors)
    mismatches = sum(
        scalar_mapper._map_problem(op, problem) != vector_mapper._map_problem(op, problem)
        or batched[op.name] != scalar_mapper._map_problem(op, problem)
        for op, problem in problems
    )
    repeats = max(1, 2000 // len(problems))
    op_level = {
        "problems": len(problems),
        "mismatches": mismatches,
        "problems_per_second": {
            "scalar": _map_rate(scalar_mapper, problems, repeats),
            "vectorized": _map_rate(vector_mapper, problems, repeats),
            "graph-batched": _batch_rate(config, graph, unique_ops, repeats),
        },
    }

    profile = profile_search([_WORKLOAD], trials=trials, warm_op_cache=True)
    return {"op_level": op_level, "profile": profile}


def test_mapper_throughput(benchmark):
    trials = bench_trials(default=48)
    measured = benchmark.pedantic(_measure, args=(trials,), rounds=1, iterations=1)
    op_level = measured["op_level"]
    profile = measured["profile"]

    op_rates = op_level["problems_per_second"]
    rows = [
        ["op-level scalar", f"{op_rates['scalar']:.0f} problems/s", "1.00x"],
        [
            "op-level vectorized",
            f"{op_rates['vectorized']:.0f} problems/s",
            f"{op_rates['vectorized'] / op_rates['scalar']:.2f}x",
        ],
        [
            "op-level graph-batched",
            f"{op_rates['graph-batched']:.0f} problems/s",
            f"{op_rates['graph-batched'] / op_rates['scalar']:.2f}x",
        ],
    ]
    for record in profile.records:
        if record.skipped:
            rows.append([f"trial-level {record.mode}", "skipped", "-"])
            continue
        rows.append([
            f"trial-level {record.mode}",
            f"{record.trials_per_second:.1f} trials/s",
            f"{profile.speedup(record.mode):.2f}x",
        ])
    report(
        "mapper_throughput",
        format_table(["Layer / mode", "Rate", "vs scalar"], rows)
        + f"\n({op_level['problems']} unique problems; {trials} trials, "
        f"{_WORKLOAD}, {os.cpu_count()} CPUs; op-cache mode timed warm)",
    )

    payload = {
        "workload": _WORKLOAD,
        "cpus": os.cpu_count(),
        "op_level": op_level,
        "trial_level": profile.to_dict(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "mapper_throughput.json").write_text(json.dumps(payload, indent=2))
    record_bench("mapper_profile", payload)

    # Bit-for-bit equivalence of the three engines, op by op — always asserted.
    assert op_level["mismatches"] == 0
    assert profile.histories_match
    if timing_asserts_enabled():
        # The vectorized sweep must beat the scalar loop on raw (uncached)
        # maps, and batching the whole op set into one stacked sweep must
        # beat per-op vectorization in turn.
        assert op_rates["vectorized"] >= 1.2 * op_rates["scalar"]
        assert op_rates["graph-batched"] >= op_rates["vectorized"]
        # Trial level: graph-batched must clear 2.5x scalar from a cold
        # start (no caches), the cache stack 3x warm, and the warm parallel
        # pool must never regress below scalar (it ran at 0.71x of scalar
        # before workers started warm).
        assert profile.speedup("graph-batched") >= 2.5
        assert profile.speedup("graph-batched+op-cache") >= 3.0
        # Stacking a whole proposal batch into one mapping pass must never
        # be slower than mapping trial by trial.
        assert profile.speedup("trial-batched") >= profile.speedup("graph-batched")
        assert profile.speedup("parallel-2") >= 1.0
        # Attaching the parent-published shared-memory segment replaces each
        # worker's private re-warm; the shared warm pool must never be slower
        # than the private warm pool.
        assert profile.speedup("parallel-2+shared-cache") >= profile.speedup("parallel-2")
