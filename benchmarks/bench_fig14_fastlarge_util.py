"""Figure 14: FAST-Large EfficientNet-B7 per-layer utilization (with and without fusion)."""

from conftest import report

from repro.core.designs import FAST_LARGE, TPU_V3
from repro.simulator.engine import SimulationOptions, Simulator


def _per_layer(config, fusion=True):
    options = SimulationOptions(enable_fast_fusion=fusion)
    result = Simulator(config, options).simulate_workload("efficientnet-b7")
    return result.per_layer_utilization(), result


def test_fig14_fast_large_per_layer_utilization(benchmark):
    fused_values, fused_result = benchmark.pedantic(
        _per_layer, args=(FAST_LARGE, True), rounds=1, iterations=1
    )
    unfused_values, _ = _per_layer(FAST_LARGE, fusion=False)
    tpu_values, _ = _per_layer(TPU_V3)

    lines = ["layer  tpu_v3  fast_large_no_fusion  fast_large_fused"]
    for i, fused in enumerate(fused_values):
        tpu = tpu_values[i] if i < len(tpu_values) else float("nan")
        unfused = unfused_values[i] if i < len(unfused_values) else float("nan")
        lines.append(f"{i:5d}  {tpu:.3f}   {unfused:.3f}                 {fused:.3f}")
    mean = lambda xs: sum(xs) / len(xs)
    lines.append(
        f"means: tpu={mean(tpu_values):.3f} no_fusion={mean(unfused_values):.3f} "
        f"fused={mean(fused_values):.3f} (paper: 0.148 -> 0.61 overall)"
    )
    report("fig14_fastlarge_util", "\n".join(lines))

    # Figure 14 shape: the 32x32 arrays improve utilization over TPU-v3, but
    # the full gain only materializes once FAST fusion removes the memory
    # bottleneck.
    assert mean(fused_values) > mean(tpu_values)
    assert mean(fused_values) >= mean(unfused_values)
    assert fused_result.compute_utilization > 0.3
