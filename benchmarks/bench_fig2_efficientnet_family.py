"""Figure 2: EfficientNet family inference step time, FAST-Large vs TPU-v3."""

from conftest import format_table, report

from repro.core.designs import FAST_LARGE, TPU_V3
from repro.workloads.efficientnet import EFFICIENTNET_TOP1_ACCURACY, EFFICIENTNET_VARIANTS


def _family_step_times(simulator):
    return {
        name: simulator.simulate_workload(name).latency_ms / simulator.config.native_batch_size
        for name in EFFICIENTNET_VARIANTS
    }


def test_fig2_efficientnet_family_step_time(benchmark, tpu_simulator, fast_large_simulator):
    fast_times = benchmark(_family_step_times, fast_large_simulator)
    tpu_times = _family_step_times(tpu_simulator)

    rows = []
    for name in EFFICIENTNET_VARIANTS:
        rows.append(
            [
                name,
                f"{EFFICIENTNET_TOP1_ACCURACY[name]:.1f}%",
                f"{tpu_times[name]:.2f} ms",
                f"{fast_times[name]:.2f} ms",
                f"{tpu_times[name] / fast_times[name]:.2f}x",
            ]
        )
    report(
        "fig2_efficientnet_family",
        format_table(
            ["Model", "ImageNet top-1", "TPU-v3 step time", "FAST-Large step time", "speedup"],
            rows,
        ),
    )

    # Figure 2 shape: FAST-Large runs every variant faster per image, and step
    # time grows with model size (so a faster accelerator buys accuracy at a
    # fixed latency budget).
    for name in EFFICIENTNET_VARIANTS:
        assert fast_times[name] < tpu_times[name]
    family = [fast_times[f"efficientnet-b{i}"] for i in range(8)]
    assert family[-1] > family[0]
