"""Table 2: EfficientNet-B7 per-op-type FLOP vs runtime share on TPU-v3."""

from conftest import format_table, report

from repro.analysis.bottleneck import characterize_op_types
from repro.core.designs import TPU_V3
from repro.workloads.ops import OpType


def test_table2_efficientnet_b7_op_runtime(benchmark):
    rows = benchmark(characterize_op_types, "efficientnet-b7", TPU_V3)

    by_type = {row.op_type: row for row in rows}
    table_rows = []
    for op_type in (OpType.DEPTHWISE_CONV2D, OpType.CONV2D):
        row = by_type[op_type]
        table_rows.append(
            [op_type.value, f"{row.flop_fraction:.2%}", f"{row.runtime_fraction:.2%}"]
        )
    other_flops = 1.0 - sum(by_type[t].flop_fraction for t in (OpType.DEPTHWISE_CONV2D, OpType.CONV2D))
    other_runtime = 1.0 - sum(by_type[t].runtime_fraction for t in (OpType.DEPTHWISE_CONV2D, OpType.CONV2D))
    table_rows.append(["other", f"{other_flops:.2%}", f"{other_runtime:.2%}"])
    report(
        "table2_op_runtime",
        format_table(["Op Type", "FLOP %", "Runtime %"], table_rows)
        + "\n(paper: depthwise 5.0% FLOPs / 65.3% runtime, Conv2D 94.7% / 34.2%)",
    )

    dw = by_type[OpType.DEPTHWISE_CONV2D]
    conv = by_type[OpType.CONV2D]
    assert dw.flop_fraction < 0.10
    assert conv.flop_fraction > 0.80
    # Depthwise convolutions consume far more runtime than their FLOP share.
    assert dw.runtime_fraction > 5 * dw.flop_fraction
    assert dw.runtime_fraction > 0.3
